//! Lifecycle properties of the persistent shard worker pool (ISSUE 10).
//!
//! The pool replaces the per-batch `thread::scope` fan-out: workers are
//! spawned lazily at the first sharded batch, keep their search scratches
//! warm across batches, and are joined when the owning `Simulation` drops.
//! None of that may be visible in the results: reports stay bit-identical
//! to the sequential engine across pool sizes, across a pool reused for
//! consecutive run calls, and across a checkpoint/restore that straddles
//! sharded batches (the restored run respawns its own pool).  The tentpole
//! accounting claim — sharded planning does strictly useful search work —
//! is pinned here too: a profiled sharded run reports exactly the
//! sequential engine's `ring_searches`.

use p2p_exchange::sim::{SimConfig, SimReport, SimTime, Simulation};

/// An exhaustive comparable fingerprint of one run, down to the ring-cache
/// counters (which only match if the merge replays the exact sequential
/// order of lookups, stores and invalidations).
fn fingerprint(report: &SimReport) -> impl PartialEq + std::fmt::Debug {
    (
        report.completed_downloads(),
        report.total_sessions(),
        report.session_end_counts().clone(),
        report.total_rings(),
        report.preemptions(),
        report.ring_cache_stats(),
    )
}

/// A configuration busy enough that batches actually reach the fan-out
/// threshold (several same-timestamp TrySchedule events per lookup).
fn busy_config() -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = 40;
    config.sim_duration_s = 2_000.0;
    config
}

fn run_with_shards(mut config: SimConfig, shards: usize, seed: u64) -> SimReport {
    config.shards = shards;
    Simulation::new(config, seed).run()
}

#[test]
fn reports_are_bit_identical_across_pool_sizes() {
    for seed in [3, 23] {
        let sequential = run_with_shards(busy_config(), 1, seed);
        for shards in [2, 8] {
            let pooled = run_with_shards(busy_config(), shards, seed);
            assert_eq!(
                fingerprint(&pooled),
                fingerprint(&sequential),
                "pool size {shards}, seed {seed}"
            );
        }
    }
}

/// The same pool instance serves every batch of `run_until(T/2)` and then
/// every batch of the finishing `run()` — worker scratches carry state
/// across the boundary, which must stay invisible in the report.
#[test]
fn a_pool_reused_across_consecutive_run_calls_changes_nothing() {
    let seed = 7;
    let straight = run_with_shards(busy_config(), 4, seed);

    let mut config = busy_config();
    config.shards = 4;
    let mut split = Simulation::new(config.clone(), seed);
    split.run_until(SimTime::from_secs_f64(config.sim_duration_s / 2.0));
    let resumed = split.run();
    assert_eq!(fingerprint(&resumed), fingerprint(&straight));
}

/// A checkpoint taken mid-run under sharding restores into a simulation
/// with *no* pool (the pool is never serialized); the restored run spawns a
/// fresh one at its first batch and must still finish bit-identically.
#[test]
fn checkpoint_restore_straddling_sharded_batches_is_bit_identical() {
    let seed = 11;
    let mut config = busy_config();
    config.shards = 4;
    let straight = Simulation::new(config.clone(), seed).run();

    let mut live = Simulation::new(config.clone(), seed);
    live.run_until(SimTime::from_secs_f64(config.sim_duration_s / 2.0));
    let mut bytes = Vec::new();
    live.checkpoint(&mut bytes)
        .expect("serializing into a Vec cannot fail");
    drop(live); // the first pool joins here; the restored run gets its own
    let resumed = Simulation::restore(&mut &bytes[..], &config)
        .expect("a fresh checkpoint restores")
        .run();
    assert_eq!(fingerprint(&resumed), fingerprint(&straight));
}

/// The tentpole accounting bar: the sharded engine counts (and times) only
/// the planned searches the merge actually consumed, so `ring_searches`
/// equals the sequential engine's exactly — speculation shows up only in
/// the `planned_searches`/`planned_consumed` breakdown.
#[test]
fn sharded_ring_searches_equal_sequential() {
    let seed = 5;
    let mut config = busy_config();
    config.shards = 4;
    let (sharded, sharded_profile) = Simulation::new(config.clone(), seed).run_profiled();
    config.shards = 1;
    let (sequential, sequential_profile) = Simulation::new(config, seed).run_profiled();
    assert_eq!(fingerprint(&sharded), fingerprint(&sequential));
    assert_eq!(
        sharded_profile.ring_searches, sequential_profile.ring_searches,
        "sharded planning must do strictly the searches the merge consumes"
    );
    assert!(
        sharded_profile.planned_searches > 0,
        "the workload must actually fan batches out to the pool"
    );
    assert!(
        sharded_profile.planned_consumed <= sharded_profile.planned_searches,
        "consumed plans are a subset of planned searches"
    );
    assert_eq!(
        sequential_profile.planned_searches, 0,
        "sequential runs never plan ahead"
    );
}

/// No worker thread outlives the `Simulation` that spawned it: the census
/// the workers maintain drains back to zero once the run consumes the
/// simulation (the pool's drop joins every worker).
#[cfg(feature = "audit")]
#[test]
fn no_worker_thread_outlives_the_simulation() {
    use std::sync::atomic::Ordering;

    let mut config = busy_config();
    config.shards = 4;
    let mut sim = Simulation::new(config, 7);
    let census = sim.shard_worker_census();
    assert_eq!(
        census.load(Ordering::SeqCst),
        0,
        "the pool spawns lazily — no workers before the first sharded batch"
    );
    while census.load(Ordering::SeqCst) == 0 {
        assert!(
            sim.step().is_some(),
            "the workload must reach a sharded batch before the horizon"
        );
    }
    assert_eq!(
        census.load(Ordering::SeqCst),
        4,
        "one worker per configured shard"
    );
    let report = sim.run(); // consumes (and drops) the simulation
    assert!(report.total_sessions() > 0);
    assert_eq!(
        census.load(Ordering::SeqCst),
        0,
        "every worker thread must be joined when the simulation drops"
    );
}
