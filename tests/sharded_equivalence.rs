//! Sharded scheduling must be invisible in the results: for every shard
//! count, cache granularity, behavior mix, protection and scheduler, a
//! sharded run's report — ring-cache hit/miss/invalidation counters
//! included — is bit-identical to the sequential engine on the same seed.
//! The shards knob buys wall-clock on multi-core hosts, never accuracy.

use p2p_exchange::exchange::ExchangePolicy;
use p2p_exchange::sim::{
    BehaviorKind, BehaviorMix, CacheGranularity, CapacityClass, CatastropheConfig, ChurnConfig,
    ClassMix, FlashCrowdConfig, PeerClass, Protection, SchedulerKind, SessionKind, SimConfig,
    SimReport, Simulation,
};

/// An exhaustive comparable fingerprint of one run, down to the cache
/// counters (which only match if the merge replays the exact sequential
/// order of lookups, stores and invalidations).
fn fingerprint(report: &SimReport) -> impl PartialEq + std::fmt::Debug {
    (
        (
            report.completed_downloads(),
            report.total_sessions(),
            report.session_counts().clone(),
            report.session_end_counts().clone(),
            report.observed_kinds(),
        ),
        (
            report.total_rings(),
            report.rings_formed().clone(),
            report.token_declines(),
            report.rings_dissolved_at_activation(),
            report.preemptions(),
            report.ring_cache_stats(),
        ),
        (
            report.mean_download_time_min(PeerClass::Sharing),
            report.mean_download_time_min(PeerClass::NonSharing),
            report.mean_volume_per_peer_mb(PeerClass::Sharing),
            report.mean_volume_per_peer_mb(PeerClass::NonSharing),
            report.mean_waiting_secs(SessionKind::NonExchange),
            report.mean_session_bytes(SessionKind::NonExchange),
        ),
    )
}

fn run_with_shards(mut config: SimConfig, shards: usize, seed: u64) -> SimReport {
    config.shards = shards;
    Simulation::new(config, seed).run()
}

/// A configuration busy enough that batches actually reach the fan-out
/// threshold (several same-timestamp TrySchedule events per lookup).
fn busy_config() -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = 40;
    config.sim_duration_s = 2_000.0;
    config
}

#[test]
fn sharded_runs_are_bit_identical_across_shard_counts() {
    for seed in [1, 17] {
        let sequential = run_with_shards(busy_config(), 1, seed);
        for shards in [2, 3, 8] {
            let sharded = run_with_shards(busy_config(), shards, seed);
            assert_eq!(
                fingerprint(&sharded),
                fingerprint(&sequential),
                "shards={shards} seed={seed}"
            );
        }
    }
}

#[test]
fn sharded_equivalence_holds_at_every_cache_granularity_and_uncached() {
    for granularity in [CacheGranularity::Provider, CacheGranularity::Entry] {
        let mut config = busy_config();
        config.ring_cache_granularity = granularity;
        let sequential = run_with_shards(config.clone(), 1, 5);
        let sharded = run_with_shards(config, 4, 5);
        assert_eq!(
            fingerprint(&sharded),
            fingerprint(&sequential),
            "{granularity:?}"
        );
        assert!(
            sharded.ring_cache_stats().hits > 0,
            "{granularity:?}: the sharded run must actually exercise the cache"
        );
    }
    let mut config = busy_config();
    config.ring_candidate_cache = false;
    let sequential = run_with_shards(config.clone(), 1, 5);
    let sharded = run_with_shards(config, 4, 5);
    assert_eq!(fingerprint(&sharded), fingerprint(&sequential), "uncached");
}

#[test]
fn sharded_equivalence_holds_under_adversarial_mixes_and_protections() {
    let adversarial = BehaviorMix::weighted([
        (BehaviorKind::Honest, 0.4),
        (BehaviorKind::FreeRider, 0.2),
        (BehaviorKind::JunkSender, 0.15),
        (BehaviorKind::ParticipationCheater, 0.1),
        (BehaviorKind::Middleman, 0.15),
    ]);
    for protection in [
        Protection::None,
        Protection::Windowed { max_window: 4 },
        Protection::Mediated,
    ] {
        let mut config = busy_config();
        config.behaviors = adversarial.clone();
        config.protection = protection;
        let sequential = run_with_shards(config.clone(), 1, 9);
        let sharded = run_with_shards(config, 3, 9);
        assert_eq!(
            fingerprint(&sharded),
            fingerprint(&sequential),
            "{protection:?}"
        );
    }
}

#[test]
fn sharded_equivalence_holds_under_every_scheduler_and_discipline() {
    for kind in SchedulerKind::all() {
        let mut config = busy_config();
        config.sim_duration_s = 1_200.0;
        config.scheduler = kind;
        let sequential = run_with_shards(config.clone(), 1, 11);
        let sharded = run_with_shards(config, 2, 11);
        assert_eq!(
            fingerprint(&sharded),
            fingerprint(&sequential),
            "{}",
            kind.label()
        );
    }
    for discipline in [
        ExchangePolicy::NoExchange,
        ExchangePolicy::Pairwise,
        ExchangePolicy::five_two_way(),
    ] {
        let mut config = busy_config();
        config.sim_duration_s = 1_200.0;
        config.discipline = discipline;
        let sequential = run_with_shards(config.clone(), 1, 13);
        let sharded = run_with_shards(config, 4, 13);
        assert_eq!(
            fingerprint(&sharded),
            fingerprint(&sequential),
            "{}",
            discipline.label()
        );
    }
}

/// The busy configuration under full population dynamics: churn departures
/// and rejoins land mid-batch, a catastrophe rips out the top uploaders, a
/// flash crowd releases a new object, and the peers span all three capacity
/// classes.
fn churny_config() -> SimConfig {
    let mut config = busy_config();
    config.churn = Some(ChurnConfig {
        mean_session_s: 400.0,
        mean_downtime_s: 150.0,
    });
    config.catastrophe = Some(CatastropheConfig {
        at_s: 800.0,
        top_k: 4,
    });
    config.flash_crowd = Some(FlashCrowdConfig {
        at_s: 1_000.0,
        requesters: 12,
        seed_holders: 2,
    });
    config.classes = ClassMix::weighted([
        (CapacityClass::Fast, 0.25),
        (CapacityClass::Medium, 0.5),
        (CapacityClass::Slow, 0.25),
    ]);
    config
}

#[test]
fn sharded_runs_are_bit_identical_under_population_dynamics() {
    // Mid-batch departures must split batches exactly where the sequential
    // engine would: the fingerprint includes the ring-cache counters, which
    // only match if every departure's invalidations replay in order.
    for seed in [1, 17] {
        let sequential = run_with_shards(churny_config(), 1, seed);
        assert!(
            sequential
                .session_end_counts()
                .keys()
                .any(|end| { format!("{end:?}").contains("PeerDeparted") }),
            "seed {seed}: churn must actually cut sessions for this test to bite"
        );
        for shards in [4, 8] {
            let sharded = run_with_shards(churny_config(), shards, seed);
            assert_eq!(
                fingerprint(&sharded),
                fingerprint(&sequential),
                "shards={shards} seed={seed}"
            );
        }
    }
}

#[test]
fn population_scenarios_report_per_class_fairness_cdfs() {
    // Catastrophe-only and flash-crowd-only scenarios must each surface the
    // per-capacity-class download-time CDFs of paper Figures 7–8.
    let mut catastrophe = churny_config();
    catastrophe.churn = None;
    catastrophe.flash_crowd = None;
    let mut flash = churny_config();
    flash.churn = None;
    flash.catastrophe = None;
    for (name, config) in [("catastrophe", catastrophe), ("flash-crowd", flash)] {
        let report = run_with_shards(config, 1, 3);
        let classes = report.observed_capacity_classes();
        assert!(
            classes.len() >= 2,
            "{name}: a mixed-class run must finish downloads in 2+ classes, got {classes:?}"
        );
        for class in classes {
            let cdf = report
                .capacity_fairness_cdf(class)
                .unwrap_or_else(|| panic!("{name}: class {class:?} observed but has no CDF"));
            assert!(!cdf.is_empty(), "{name}: empty CDF for {class:?}");
            assert!(
                report.capacity_download_percentile(class, 0.5).is_some(),
                "{name}: no median for {class:?}"
            );
        }
    }
}

#[test]
fn sharded_profiled_runs_report_identical_results() {
    let mut config = busy_config();
    config.shards = 3;
    let (report, profile) = Simulation::new(config.clone(), 21).run_profiled();
    config.shards = 1;
    let (sequential, _) = Simulation::new(config, 21).run_profiled();
    assert_eq!(fingerprint(&report), fingerprint(&sequential));
    assert!(profile.events > 0);
    assert!(
        profile.shard_planning > std::time::Duration::ZERO,
        "batches above the fan-out threshold must exist in this workload"
    );
}
