//! Golden snapshot tests for the PR-3 `SweepGrid` export format.
//!
//! The JSON/CSV writers are hand-rolled (the workspace's serde is an offline
//! stub), so nothing type-checks their output shape; these exact-string
//! fixtures pin the column set, key names, nesting and number formatting.
//! A legitimate format change regenerates them with
//! `UPDATE_SNAPSHOTS=1 cargo test --test sweep_grid_golden`.

use std::path::PathBuf;

use p2p_exchange::sim::{Axis, CapacityClass, ClassMix, Scenario, SimConfig};

/// The fixed grid behind both snapshots: small, fast and fully
/// deterministic (the simulator is seeded; the scenario engine's row order
/// is independent of thread scheduling).  The class-mix axis pins the
/// per-capacity fairness columns (PR 8) alongside the original metrics.
fn golden_grid() -> p2p_exchange::sim::SweepGrid {
    let mut config = SimConfig::quick_test();
    config.num_peers = 12;
    config.sim_duration_s = 900.0;
    Scenario::from(config)
        .vary(Axis::UploadKbps(vec![60.0, 100.0]))
        .classes([
            ClassMix::uniform(),
            ClassMix::weighted([(CapacityClass::Fast, 0.5), (CapacityClass::Slow, 0.5)]),
        ])
        .seeds(0..2)
        .run()
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn assert_matches_fixture(actual: &str, name: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}\nregenerate with UPDATE_SNAPSHOTS=1 \
             cargo test --test sweep_grid_golden",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its checked-in snapshot; if the change is \
         intentional, regenerate with UPDATE_SNAPSHOTS=1 cargo test --test \
         sweep_grid_golden"
    );
}

#[test]
fn json_export_matches_the_checked_in_snapshot() {
    assert_matches_fixture(&golden_grid().to_json_string(), "sweep_grid.json");
}

#[test]
fn csv_export_matches_the_checked_in_snapshot() {
    assert_matches_fixture(&golden_grid().to_csv_string(), "sweep_grid.csv");
}
