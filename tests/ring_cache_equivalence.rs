//! The incremental ring-search engine must be a pure memoisation: a
//! cache-backed query answers exactly what a fresh `RingSearch::find` would,
//! across arbitrary graph and holdings deltas, and a full simulation run
//! produces an identical report with the cache on or off.

use std::collections::{BTreeMap, BTreeSet};

use p2p_exchange::exchange::{
    ExchangePolicy, RequestGraph, RingPreference, RingSearch, SearchPolicy,
};
use p2p_exchange::sim::{
    PeerClass, RingCandidateCache, SchedulerKind, SessionKind, SimConfig, SimReport, Simulation,
};
use p2p_exchange::workload::{ObjectId, PeerId};
use proptest::prelude::*;

// ---- property: cache-backed queries equal fresh searches --------------------

/// One mutable world the deltas act on: the request graph plus the provision
/// state (who shares, who stores what) that backs the `provides` oracle.
struct World {
    graph: RequestGraph<PeerId, ObjectId>,
    sharing: Vec<bool>,
    owned: BTreeMap<PeerId, BTreeSet<ObjectId>>,
}

impl World {
    fn new(peers: usize) -> Self {
        World {
            graph: RequestGraph::new(),
            sharing: vec![true; peers],
            owned: BTreeMap::new(),
        }
    }

    fn provides(&self) -> impl Fn(&PeerId, &ObjectId) -> bool + '_ {
        |peer, object| {
            self.sharing[peer.as_usize()]
                && self
                    .owned
                    .get(peer)
                    .is_some_and(|objs| objs.contains(object))
        }
    }
}

/// A delta drawn by the property: (op, peer a, (peer b, object)).
type Delta = (u8, u8, (u8, u8));

/// Applies one delta, reporting provision changes to the cache exactly the
/// way the simulation does (graph changes flow through the dirty set).
fn apply_delta(world: &mut World, cache: &mut RingCandidateCache, delta: Delta) {
    let (op, a, (b, o)) = delta;
    let (pa, pb) = (PeerId::new(u32::from(a)), PeerId::new(u32::from(b)));
    let object = ObjectId::new(u32::from(o));
    match op % 4 {
        0 => {
            if pa != pb {
                world.graph.add_request(pa, pb, object);
            }
        }
        1 => {
            world.graph.remove_request(pa, pb, object);
        }
        2 => {
            world.sharing[pa.as_usize()] = !world.sharing[pa.as_usize()];
            cache.invalidate_peer(pa);
        }
        _ => {
            let objs = world.owned.entry(pa).or_default();
            if !objs.insert(object) {
                objs.remove(&object);
            }
            cache.invalidate_peer(pa);
        }
    }
}

proptest! {
    #[test]
    fn cached_queries_equal_fresh_searches_under_random_deltas(
        deltas in proptest::collection::vec((0u8..4, 0u8..8, (0u8..8, 0u8..6)), 1..40),
        max_ring in 2usize..5,
        longer in proptest::bool::ANY,
    ) {
        const PEERS: usize = 8;
        let preference = if longer { RingPreference::LongerFirst } else { RingPreference::ShorterFirst };
        let search = RingSearch::new(SearchPolicy::new(max_ring, preference));
        // Every peer permanently wants two objects; the cache must key
        // entries so this never goes stale.
        let wants: Vec<Vec<ObjectId>> = (0..PEERS as u32)
            .map(|p| vec![ObjectId::new(p % 6), ObjectId::new((p + 3) % 6)])
            .collect();

        let mut world = World::new(PEERS);
        let mut cache = RingCandidateCache::new();
        for delta in deltas {
            apply_delta(&mut world, &mut cache, delta);
            // Query every root after every delta, exactly like a scheduling
            // round: drain deltas, consult the cache, verify against a fresh
            // search, store on miss.
            cache.apply_graph_deltas(&mut world.graph);
            for root in 0..PEERS as u32 {
                let root = PeerId::new(root);
                let want = &wants[root.as_usize()];
                let cached = cache.lookup(root, want).map(<[_]>::to_vec);
                let trace = search.find_traced(&world.graph, root, want, world.provides());
                match cached {
                    Some(rings) => prop_assert_eq!(rings, trace.rings),
                    None => cache.store(root, want.clone(), trace),
                }
            }
        }
        // The property is only meaningful if entries actually get reused.
        prop_assert!(cache.stats().hits > 0, "no cache hit in the whole sequence");
    }
}

// ---- determinism: identical reports with the cache on and off ---------------

/// An exhaustive comparable fingerprint of one run.
fn fingerprint(report: &SimReport) -> impl PartialEq + std::fmt::Debug {
    (
        (
            report.completed_downloads(),
            report.total_sessions(),
            report.session_counts().clone(),
            report.observed_kinds(),
        ),
        (
            report.total_rings(),
            report.rings_formed().clone(),
            report.token_declines(),
            report.rings_dissolved_at_activation(),
            report.preemptions(),
        ),
        (
            report.mean_download_time_min(PeerClass::Sharing),
            report.mean_download_time_min(PeerClass::NonSharing),
            report.mean_volume_per_peer_mb(PeerClass::Sharing),
            report.mean_volume_per_peer_mb(PeerClass::NonSharing),
            report.mean_waiting_secs(SessionKind::NonExchange),
            report.mean_session_bytes(SessionKind::NonExchange),
        ),
    )
}

fn run(mut config: SimConfig, cached: bool, seed: u64) -> SimReport {
    config.ring_candidate_cache = cached;
    Simulation::new(config, seed).run()
}

#[test]
fn cached_and_uncached_runs_produce_identical_reports() {
    for discipline in [
        ExchangePolicy::two_five_way(),
        ExchangePolicy::five_two_way(),
        ExchangePolicy::Pairwise,
    ] {
        for seed in [7, 21] {
            let mut config = SimConfig::quick_test();
            config.discipline = discipline;
            let with_cache = run(config.clone(), true, seed);
            let without_cache = run(config, false, seed);
            assert_eq!(
                fingerprint(&with_cache),
                fingerprint(&without_cache),
                "cache must not change the run ({} seed {seed})",
                discipline.label()
            );
            assert!(
                with_cache.ring_cache_stats().hits > 0,
                "the cached run must actually reuse entries ({} seed {seed})",
                discipline.label()
            );
            assert_eq!(
                without_cache.ring_cache_stats().hits,
                0,
                "the uncached run must never consult the cache"
            );
        }
    }
}

#[test]
fn cache_equivalence_holds_for_reciprocal_schedulers_too() {
    // ExchangePriority exercises the reciprocal flag in the serve queue, the
    // other code path the scheduling loop reuses across iterations.
    let mut config = SimConfig::quick_test();
    config.scheduler = SchedulerKind::ExchangePriority;
    let with_cache = run(config.clone(), true, 13);
    let without_cache = run(config, false, 13);
    assert_eq!(fingerprint(&with_cache), fingerprint(&without_cache));
}

#[test]
fn ring_attempts_knob_changes_behaviour_only_when_lowered() {
    // The default (8) must reproduce the former hard-coded constant; a
    // drastically lower setting throttles ring formation.
    let mut config = SimConfig::quick_test();
    config.discipline = ExchangePolicy::two_five_way();
    assert_eq!(config.ring_attempts_per_schedule, 8);
    let default_run = Simulation::new(config.clone(), 5).run();
    config.ring_attempts_per_schedule = 1;
    let throttled = Simulation::new(config, 5).run();
    assert!(default_run.total_rings() >= throttled.total_rings());
}
