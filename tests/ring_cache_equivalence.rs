//! The incremental ring-search engine must be a pure memoisation: a
//! cache-backed query answers exactly what a fresh `RingSearch::find` would,
//! across arbitrary graph and holdings deltas, at *both* invalidation
//! granularities — and entry-level invalidation must additionally be
//! strictly lazier than provider-level on the same delta trace.  A full
//! simulation run produces an identical report with the cache on or off.

use std::collections::{BTreeMap, BTreeSet};

use p2p_exchange::exchange::{
    ExchangePolicy, RequestGraph, RingPreference, RingSearch, SearchPolicy,
};
use p2p_exchange::sim::{
    CacheGranularity, PeerClass, RingCandidateCache, SchedulerKind, SessionKind, SimConfig,
    SimReport, Simulation,
};
use p2p_exchange::workload::{ObjectId, PeerId};
use proptest::prelude::*;

// ---- property: cache-backed queries equal fresh searches --------------------

/// One mutable world the deltas act on: the provision state (who shares, who
/// stores what) backing the `provides` oracle, plus one request graph **per
/// cache under test** — each cache drains its own graph's dirty log, so the
/// graphs are mutated identically but tracked separately.
struct World {
    graphs: Vec<RequestGraph<PeerId, ObjectId>>,
    sharing: Vec<bool>,
    owned: BTreeMap<PeerId, BTreeSet<ObjectId>>,
}

impl World {
    fn new(peers: usize, caches: usize) -> Self {
        World {
            graphs: (0..caches).map(|_| RequestGraph::new()).collect(),
            sharing: vec![true; peers],
            owned: BTreeMap::new(),
        }
    }

    fn provides(&self) -> impl Fn(&PeerId, &ObjectId) -> bool + '_ {
        |peer, object| {
            self.sharing[peer.as_usize()]
                && self
                    .owned
                    .get(peer)
                    .is_some_and(|objs| objs.contains(object))
        }
    }
}

/// A delta drawn by the property: (op, peer a, (peer b, object)).
type Delta = (u8, u8, (u8, u8));

/// Applies one delta, reporting provision changes to every cache exactly the
/// way the simulation does: graph changes flow through each graph's dirty
/// log, sharing toggles through the coarse `invalidate_peer`, and per-object
/// holdings changes through `invalidate_holding`.
fn apply_delta(world: &mut World, caches: &mut [RingCandidateCache], delta: Delta) {
    let (op, a, (b, o)) = delta;
    let (pa, pb) = (PeerId::new(u32::from(a)), PeerId::new(u32::from(b)));
    let object = ObjectId::new(u32::from(o));
    match op % 4 {
        0 => {
            if pa != pb {
                for graph in &mut world.graphs {
                    graph.add_request(pa, pb, object);
                }
            }
        }
        1 => {
            for graph in &mut world.graphs {
                graph.remove_request(pa, pb, object);
            }
        }
        2 => {
            world.sharing[pa.as_usize()] = !world.sharing[pa.as_usize()];
            for cache in caches {
                cache.invalidate_peer(pa);
            }
        }
        _ => {
            let objs = world.owned.entry(pa).or_default();
            if !objs.insert(object) {
                objs.remove(&object);
            }
            for cache in caches {
                cache.invalidate_holding(pa, object);
            }
        }
    }
}

proptest! {
    #[test]
    fn cached_queries_equal_fresh_searches_under_random_deltas(
        deltas in proptest::collection::vec((0u8..4, 0u8..8, (0u8..8, 0u8..6)), 1..40),
        max_ring in 2usize..5,
        longer in proptest::bool::ANY,
    ) {
        const PEERS: usize = 8;
        let preference = if longer { RingPreference::LongerFirst } else { RingPreference::ShorterFirst };
        let search = RingSearch::new(SearchPolicy::new(max_ring, preference));
        // Every peer permanently wants two objects; the cache must key
        // entries so this never goes stale.
        let wants: Vec<Vec<ObjectId>> = (0..PEERS as u32)
            .map(|p| vec![ObjectId::new(p % 6), ObjectId::new((p + 3) % 6)])
            .collect();

        // Both granularities replay the identical delta and query stream.
        let mut caches = [
            RingCandidateCache::with_granularity(CacheGranularity::Provider),
            RingCandidateCache::with_granularity(CacheGranularity::Entry),
        ];
        let mut world = World::new(PEERS, caches.len());
        for delta in deltas {
            apply_delta(&mut world, &mut caches, delta);
            // Query every root after every delta, exactly like a scheduling
            // round: drain deltas, consult the cache, verify against a fresh
            // search, store on miss.
            for (index, cache) in caches.iter_mut().enumerate() {
                cache.apply_graph_deltas(&mut world.graphs[index]);
            }
            for root in 0..PEERS as u32 {
                let root = PeerId::new(root);
                let want = &wants[root.as_usize()];
                let trace = search.find_traced(&world.graphs[0], root, want, world.provides());
                for cache in &mut caches {
                    let cached = cache.lookup(root, want).map(<[_]>::to_vec);
                    match cached {
                        Some(rings) => prop_assert_eq!(rings, trace.rings.clone()),
                        None => cache.store(root, want.clone(), trace.clone()),
                    }
                }
            }
        }
        let provider = caches[0].stats();
        let entry = caches[1].stats();
        // The property is only meaningful if entries actually get reused.
        prop_assert!(provider.hits > 0, "no cache hit in the whole sequence");
        // Entry-level invalidation is *strictly lazier*: on the identical
        // trace it drops no more entries, and therefore misses no more often,
        // than provider granularity.
        prop_assert!(
            entry.invalidations <= provider.invalidations,
            "entry granularity dropped more entries ({} vs {})",
            entry.invalidations,
            provider.invalidations
        );
        prop_assert!(
            entry.misses <= provider.misses,
            "entry granularity missed more often ({} vs {})",
            entry.misses,
            provider.misses
        );
        prop_assert!(entry.hits >= provider.hits);
    }
}

// ---- determinism: identical reports with the cache on and off ---------------

/// An exhaustive comparable fingerprint of one run.
fn fingerprint(report: &SimReport) -> impl PartialEq + std::fmt::Debug {
    (
        (
            report.completed_downloads(),
            report.total_sessions(),
            report.session_counts().clone(),
            report.observed_kinds(),
        ),
        (
            report.total_rings(),
            report.rings_formed().clone(),
            report.token_declines(),
            report.rings_dissolved_at_activation(),
            report.preemptions(),
        ),
        (
            report.mean_download_time_min(PeerClass::Sharing),
            report.mean_download_time_min(PeerClass::NonSharing),
            report.mean_volume_per_peer_mb(PeerClass::Sharing),
            report.mean_volume_per_peer_mb(PeerClass::NonSharing),
            report.mean_waiting_secs(SessionKind::NonExchange),
            report.mean_session_bytes(SessionKind::NonExchange),
        ),
    )
}

fn run(mut config: SimConfig, cached: bool, seed: u64) -> SimReport {
    config.ring_candidate_cache = cached;
    Simulation::new(config, seed).run()
}

#[test]
fn cached_and_uncached_runs_produce_identical_reports_at_both_granularities() {
    for discipline in [
        ExchangePolicy::two_five_way(),
        ExchangePolicy::five_two_way(),
        ExchangePolicy::Pairwise,
    ] {
        for seed in [7, 21] {
            let mut config = SimConfig::quick_test();
            config.discipline = discipline;
            let mut uncached_config = config.clone();
            uncached_config.ring_candidate_cache = false;
            let without_cache = run(uncached_config, false, seed);
            for granularity in [CacheGranularity::Provider, CacheGranularity::Entry] {
                let mut cached_config = config.clone();
                cached_config.ring_cache_granularity = granularity;
                let with_cache = run(cached_config, true, seed);
                assert_eq!(
                    fingerprint(&with_cache),
                    fingerprint(&without_cache),
                    "cache must not change the run ({} seed {seed} {granularity:?})",
                    discipline.label()
                );
                assert!(
                    with_cache.ring_cache_stats().hits > 0,
                    "the cached run must actually reuse entries ({} seed {seed} {granularity:?})",
                    discipline.label()
                );
            }
            assert_eq!(
                without_cache.ring_cache_stats().hits,
                0,
                "the uncached run must never consult the cache"
            );
        }
    }
}

#[test]
fn sharded_cached_runs_still_equal_uncached_runs() {
    // The three-way identity behind the sharded engine: a sharded cached run
    // equals a sequential cached run equals an uncached run — at both
    // granularities the shard planner has to predict hits for, with the
    // merge replaying the lookups.
    for granularity in [CacheGranularity::Provider, CacheGranularity::Entry] {
        let mut config = SimConfig::quick_test();
        config.discipline = ExchangePolicy::two_five_way();
        config.ring_cache_granularity = granularity;
        let mut uncached_config = config.clone();
        uncached_config.ring_candidate_cache = false;
        let without_cache = run(uncached_config, false, 31);
        let mut sharded_config = config;
        sharded_config.shards = 4;
        let sharded_cached = run(sharded_config, true, 31);
        assert_eq!(
            fingerprint(&sharded_cached),
            fingerprint(&without_cache),
            "sharded cached run diverged from the uncached baseline ({granularity:?})"
        );
        assert!(
            sharded_cached.ring_cache_stats().hits > 0,
            "the sharded run must actually reuse entries ({granularity:?})"
        );
    }
}

#[test]
fn entry_invalidation_is_lazier_across_whole_runs() {
    // Same simulation, same seed: the entry-granularity run must drop fewer
    // entries and hit at least as often as the provider-granularity run.
    for seed in [3, 9] {
        let mut provider_config = SimConfig::quick_test();
        provider_config.ring_cache_granularity = CacheGranularity::Provider;
        let mut entry_config = SimConfig::quick_test();
        entry_config.ring_cache_granularity = CacheGranularity::Entry;
        let provider = run(provider_config, true, seed).ring_cache_stats();
        let entry = run(entry_config, true, seed).ring_cache_stats();
        assert!(
            entry.invalidations <= provider.invalidations,
            "seed {seed}: entry {} vs provider {} invalidations",
            entry.invalidations,
            provider.invalidations
        );
        assert!(
            entry.hits >= provider.hits,
            "seed {seed}: entry {} vs provider {} hits",
            entry.hits,
            provider.hits
        );
    }
}

#[test]
fn cache_equivalence_holds_for_reciprocal_schedulers_too() {
    // ExchangePriority exercises the reciprocal flag in the serve queue, the
    // other code path the scheduling loop reuses across iterations.
    let mut config = SimConfig::quick_test();
    config.scheduler = SchedulerKind::ExchangePriority;
    let with_cache = run(config.clone(), true, 13);
    let without_cache = run(config, false, 13);
    assert_eq!(fingerprint(&with_cache), fingerprint(&without_cache));
}

#[test]
fn ring_attempts_knob_changes_behaviour_only_when_lowered() {
    // The default (8) must reproduce the former hard-coded constant; a
    // drastically lower setting throttles ring formation.
    let mut config = SimConfig::quick_test();
    config.discipline = ExchangePolicy::two_five_way();
    assert_eq!(config.ring_attempts_per_schedule, 8);
    let default_run = Simulation::new(config.clone(), 5).run();
    config.ring_attempts_per_schedule = 1;
    let throttled = Simulation::new(config, 5).run();
    assert!(default_run.total_rings() >= throttled.total_rings());
}
