//! Determinism guarantees of the unified `UploadScheduler` API: the same
//! seed must reproduce the same run for every scheduler, distinct RNG
//! streams must stay independent of the scheduler choice, and scheduler
//! state must not leak between runs.

use p2p_exchange::sim::{PeerClass, Scenario, SchedulerKind, SimConfig, SimReport, Simulation};

fn quick_config(kind: SchedulerKind) -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = 24;
    config.sim_duration_s = 1_500.0;
    config.scheduler = kind;
    config
}

/// The comparable fingerprint of one run.
fn fingerprint(report: &SimReport) -> (u64, u64, u64, Option<f64>, Option<f64>) {
    (
        report.completed_downloads(),
        report.total_sessions(),
        report.total_rings(),
        report.mean_download_time_min(PeerClass::Sharing),
        report.mean_download_time_min(PeerClass::NonSharing),
    )
}

#[test]
fn same_seed_is_identical_for_every_scheduler() {
    for kind in SchedulerKind::all() {
        let a = Simulation::new(quick_config(kind), 77).run();
        let b = Simulation::new(quick_config(kind), 77).run();
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "scheduler {} must be deterministic under a fixed seed",
            kind.label()
        );
    }
}

#[test]
fn scheduler_state_does_not_leak_across_runs_in_a_sweep() {
    // Running the same point twice inside one grid must equal standalone
    // runs: each run builds a fresh trait object.
    for kind in [
        SchedulerKind::EmuleCredit,
        SchedulerKind::ParticipationLevel,
    ] {
        let grid = Scenario::from(quick_config(kind)).seeds([5, 5]).run();
        let standalone = Simulation::new(quick_config(kind), 5).run();
        for row in grid.rows() {
            assert_eq!(
                fingerprint(&row.report),
                fingerprint(&standalone),
                "history-based scheduler {} must start each run fresh",
                kind.label()
            );
        }
    }
}

#[test]
fn setup_streams_are_independent_of_the_scheduler_choice() {
    // The catalog, interests and initial placement draw from the setup
    // streams; the scheduler must not consume from them.  Identical peers
    // across scheduler kinds prove the streams stay decorrelated under the
    // trait object.
    let reference: Vec<(bool, Vec<_>)> = Simulation::new(quick_config(SchedulerKind::Fifo), 99)
        .peers()
        .iter()
        .map(|p| (p.sharing, p.storage.iter().collect()))
        .collect();
    for kind in SchedulerKind::all() {
        let peers: Vec<(bool, Vec<_>)> = Simulation::new(quick_config(kind), 99)
            .peers()
            .iter()
            .map(|p| (p.sharing, p.storage.iter().collect()))
            .collect();
        assert_eq!(
            peers,
            reference,
            "initial placement must not depend on scheduler {}",
            kind.label()
        );
    }
}

#[test]
fn schedulers_actually_differentiate_runs() {
    // The trait object must really dispatch to different mechanisms: with
    // exchange rings disabled the queue order is the only lever, so at
    // least one scheduler must diverge from FIFO.
    let run = |kind: SchedulerKind| {
        let mut config = quick_config(kind);
        config.discipline = p2p_exchange::exchange::ExchangePolicy::NoExchange;
        config.link.upload_kbps = 40.0; // contended queues make order matter
        Simulation::new(config, 31).run()
    };
    let fifo = fingerprint(&run(SchedulerKind::Fifo));
    let divergent = SchedulerKind::all()
        .into_iter()
        .filter(|k| *k != SchedulerKind::Fifo)
        .any(|kind| fingerprint(&run(kind)) != fifo);
    assert!(
        divergent,
        "every non-FIFO scheduler reproduced the FIFO run exactly; the trait \
         object is likely not dispatching"
    );
}

#[test]
fn distinct_seeds_remain_distinct_under_every_scheduler() {
    for kind in SchedulerKind::all() {
        let a = Simulation::new(quick_config(kind), 1).run();
        let b = Simulation::new(quick_config(kind), 2).run();
        assert_ne!(
            fingerprint(&a),
            fingerprint(&b),
            "seeds 1 and 2 should not collide under scheduler {}",
            kind.label()
        );
    }
}
