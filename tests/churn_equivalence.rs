//! Population dynamics must be invisible to the caching and sharding
//! machinery: for arbitrary churn processes (random mean session/downtime,
//! i.e. random join/leave traces), a cache-backed run is bit-identical to an
//! uncached run, at both invalidation granularities, and a sharded run is
//! bit-identical to the sequential engine — departures mid-batch included.

use p2p_exchange::sim::{
    CacheGranularity, CapacityClass, ChurnConfig, ClassMix, PeerClass, SessionKind, SimConfig,
    SimReport, Simulation,
};
use proptest::prelude::*;

/// An exhaustive comparable fingerprint of one run, down to the ring-cache
/// counters (which only match when every lookup, store and invalidation
/// replays in the sequential order).
fn fingerprint(report: &SimReport) -> impl PartialEq + std::fmt::Debug {
    (
        (
            report.completed_downloads(),
            report.total_sessions(),
            report.session_counts().clone(),
            report.session_end_counts().clone(),
            report.observed_kinds(),
        ),
        (
            report.total_rings(),
            report.rings_formed().clone(),
            report.token_declines(),
            report.rings_dissolved_at_activation(),
            report.preemptions(),
        ),
        (
            report.mean_download_time_min(PeerClass::Sharing),
            report.mean_download_time_min(PeerClass::NonSharing),
            report.mean_waiting_secs(SessionKind::NonExchange),
            report.mean_session_bytes(SessionKind::NonExchange),
        ),
    )
}

fn churny_config(mean_session_s: f64, mean_downtime_s: f64) -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = 14;
    config.sim_duration_s = 900.0;
    config.churn = Some(ChurnConfig {
        mean_session_s,
        mean_downtime_s,
    });
    config.classes = ClassMix::weighted([
        (CapacityClass::Fast, 0.25),
        (CapacityClass::Medium, 0.5),
        (CapacityClass::Slow, 0.25),
    ]);
    config
}

proptest! {
    /// Cached == fresh across random join/leave traces: the churn process
    /// (drawn from random means) drives arbitrary departures and rejoins,
    /// and the ring-candidate cache must stay a pure memoisation through
    /// every teardown and re-index.
    #[test]
    fn cached_runs_equal_uncached_runs_across_random_churn_traces(
        session_scale in 1u32..40,
        downtime_scale in 1u32..20,
        seed in 0u64..1_000,
    ) {
        let mean_session_s = f64::from(session_scale) * 25.0;
        let mean_downtime_s = f64::from(downtime_scale) * 15.0;
        let config = churny_config(mean_session_s, mean_downtime_s);

        let mut uncached = config.clone();
        uncached.ring_candidate_cache = false;
        let fresh = Simulation::new(uncached, seed).run();
        for granularity in [CacheGranularity::Provider, CacheGranularity::Entry] {
            let mut cached = config.clone();
            cached.ring_cache_granularity = granularity;
            let memoised = Simulation::new(cached, seed).run();
            // The stub's prop_assert_eq! takes no context message; the
            // deterministic case seeding makes failures reproducible anyway.
            prop_assert_eq!(fingerprint(&memoised), fingerprint(&fresh));
        }
    }

    /// Shard counts are equally invisible under random churn traces.
    #[test]
    fn sharded_runs_equal_sequential_runs_across_random_churn_traces(
        session_scale in 1u32..40,
        shards in 2usize..6,
        seed in 0u64..1_000,
    ) {
        let config = churny_config(f64::from(session_scale) * 25.0, 90.0);
        let sequential = Simulation::new(config.clone(), seed).run();
        let mut sharded_config = config;
        sharded_config.shards = shards;
        let sharded = Simulation::new(sharded_config, seed).run();
        prop_assert_eq!(fingerprint(&sharded), fingerprint(&sequential));
    }
}
