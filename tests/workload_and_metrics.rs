//! Integration tests of the workload model and metric plumbing as used by
//! the simulator: catalog statistics, storage behaviour under the simulated
//! maintenance policy, and report/CDF consistency.

use p2p_exchange::des::DetRng;
use p2p_exchange::sim::{PeerClass, SessionKind, SimConfig, Simulation};
use p2p_exchange::workload::{Catalog, PeerInterests, RequestGenerator, WorkloadConfig};

#[test]
fn paper_catalog_has_the_expected_scale() {
    let config = WorkloadConfig::paper_defaults();
    let catalog = Catalog::generate(&config, &mut DetRng::seed_from(1));
    assert_eq!(catalog.num_categories(), 300);
    // Expected objects: 300 categories × uniform(1,300) ≈ 45k on average.
    assert!(catalog.num_objects() > 20_000);
    assert!(catalog.num_objects() < 80_000);
    assert!(catalog.iter().all(|o| o.size_bytes == 20 * 1024 * 1024));
}

#[test]
fn request_stream_respects_interests_and_popularity_direction() {
    let mut config = WorkloadConfig::paper_defaults();
    config.object_popularity_factor = 1.0;
    config.category_popularity_factor = 1.0;
    let mut rng = DetRng::seed_from(2);
    let catalog = Catalog::generate(&config, &mut rng);
    let interests = PeerInterests::generate(&catalog, &config, &mut rng);
    let generator = RequestGenerator::new(&config);

    let mut rank_sum = 0u64;
    let mut samples = 0u64;
    for _ in 0..2_000 {
        let object = generator
            .next_request(&catalog, &interests, &mut rng, |_| false)
            .unwrap();
        let info = catalog.object(object);
        assert!(interests.is_interested_in(info.category));
        rank_sum += u64::from(info.rank_in_category);
        samples += 1;
    }
    let mean_rank = rank_sum as f64 / samples as f64;
    // With a Zipf-like factor, requests concentrate on the top ranks; the
    // average category holds ~150 objects, so the mean requested rank should
    // sit well below the middle.
    assert!(
        mean_rank < 60.0,
        "mean requested rank {mean_rank:.1} is not concentrated on popular objects"
    );
}

#[test]
fn report_distributions_are_consistent_with_counters() {
    let mut config = SimConfig::quick_test();
    config.num_peers = 40;
    config.sim_duration_s = 5_000.0;
    let report = Simulation::new(config, 3).run();

    // Every observed session kind must expose a CDF whose sample count
    // matches the session counter for that kind.
    for kind in report.observed_kinds() {
        let count = report.session_counts()[&kind];
        let cdf = report.session_bytes_cdf(kind).expect("kind was observed");
        assert_eq!(cdf.len() as u64, count);
        assert!(report.mean_session_bytes(kind).unwrap() > 0.0);
    }
    // Exchange fraction is consistent with the counters.
    let exchange: u64 = report
        .session_counts()
        .iter()
        .filter(|(k, _)| k.is_exchange())
        .map(|(_, c)| *c)
        .sum();
    let expected = exchange as f64 / report.total_sessions() as f64;
    assert!((report.exchange_session_fraction() - expected).abs() < 1e-12);
}

#[test]
fn per_peer_volume_accounts_for_every_class_present() {
    let mut config = SimConfig::quick_test();
    config.num_peers = 30;
    config.behaviors = p2p_exchange::sim::BehaviorMix::with_freeriders(0.5);
    let report = Simulation::new(config, 4).run();
    // Volumes are recorded for every peer at the end of the run, so both
    // classes must be present (even if some peers downloaded nothing).
    assert!(report.mean_volume_per_peer_mb(PeerClass::Sharing).is_some());
    assert!(report
        .mean_volume_per_peer_mb(PeerClass::NonSharing)
        .is_some());
}

#[test]
fn waiting_time_cdfs_are_nonnegative_and_bounded_by_run_length() {
    let mut config = SimConfig::quick_test();
    config.num_peers = 40;
    config.sim_duration_s = 4_000.0;
    let duration = config.sim_duration_s;
    let report = Simulation::new(config, 5).run();
    for kind in [
        SessionKind::NonExchange,
        SessionKind::Exchange { ring_size: 2 },
        SessionKind::Exchange { ring_size: 3 },
    ] {
        if let Some(cdf) = report.waiting_cdf(kind) {
            assert!(cdf.percentile(0.0) >= 0.0);
            assert!(cdf.percentile(1.0) <= duration);
        }
    }
}
