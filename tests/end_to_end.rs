//! Cross-crate integration tests: whole simulations run end to end and the
//! headline properties of the paper hold qualitatively.

use p2p_exchange::exchange::ExchangePolicy;
use p2p_exchange::sim::{PeerClass, SessionKind, SimConfig, Simulation};

/// A moderately loaded configuration where the exchange incentive should be
/// clearly visible: more outstanding demand than upload slots.
fn loaded_config() -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = 60;
    config.max_pending_objects = 6;
    config.link.upload_kbps = 40.0;
    config.sim_duration_s = 8_000.0;
    config
}

fn run(policy: ExchangePolicy, seed: u64) -> p2p_exchange::sim::SimReport {
    let mut config = loaded_config();
    config.discipline = policy;
    Simulation::new(config, seed).run()
}

#[test]
fn downloads_complete_under_every_discipline() {
    for policy in ExchangePolicy::paper_set() {
        let report = run(policy, 1);
        assert!(
            report.completed_downloads() > 50,
            "{} should complete a healthy number of downloads, got {}",
            policy.label(),
            report.completed_downloads()
        );
    }
}

#[test]
fn exchange_disciplines_reward_sharing_peers() {
    let report = run(ExchangePolicy::two_five_way(), 2);
    let sharing = report
        .mean_download_time_min(PeerClass::Sharing)
        .expect("sharing downloads completed");
    let non_sharing = report
        .mean_download_time_min(PeerClass::NonSharing)
        .expect("non-sharing downloads completed");
    assert!(
        non_sharing > sharing,
        "free-riders should wait longer (sharing {sharing:.1} min vs non-sharing {non_sharing:.1} min)"
    );
}

#[test]
fn no_exchange_baseline_treats_classes_roughly_equally() {
    let report = run(ExchangePolicy::NoExchange, 3);
    let ratio = report
        .download_time_ratio()
        .expect("both classes completed");
    assert!(
        (0.8..1.25).contains(&ratio),
        "without exchanges the class ratio should be near 1, got {ratio:.2}"
    );
    assert_eq!(report.exchange_session_fraction(), 0.0);
}

#[test]
fn exchange_discipline_beats_no_exchange_for_sharers() {
    let baseline = run(ExchangePolicy::NoExchange, 4);
    let exchange = run(ExchangePolicy::two_five_way(), 4);
    let baseline_sharing = baseline.mean_download_time_min(PeerClass::Sharing).unwrap();
    let exchange_sharing = exchange.mean_download_time_min(PeerClass::Sharing).unwrap();
    assert!(
        exchange_sharing < baseline_sharing * 1.05,
        "sharers should not be worse off with exchanges \
         (no-exchange {baseline_sharing:.1} min, 2-5-way {exchange_sharing:.1} min)"
    );
}

#[test]
fn ring_size_bound_is_respected_and_pairwise_only_uses_two_way() {
    let pairwise = run(ExchangePolicy::Pairwise, 5);
    for kind in pairwise.observed_kinds() {
        if let SessionKind::Exchange { ring_size } = kind {
            assert_eq!(ring_size, 2);
        }
    }
    let bounded = run(ExchangePolicy::PreferShorter { max_ring: 3 }, 5);
    for size in bounded.rings_formed().keys() {
        assert!(
            *size <= 3,
            "ring of size {size} exceeds the configured bound"
        );
    }
}

#[test]
fn exchange_fraction_grows_with_load() {
    let mut light = loaded_config();
    light.link.upload_kbps = 140.0;
    light.discipline = ExchangePolicy::two_five_way();
    let light_report = Simulation::new(light, 6).run();

    let mut heavy = loaded_config();
    heavy.link.upload_kbps = 40.0;
    heavy.discipline = ExchangePolicy::two_five_way();
    let heavy_report = Simulation::new(heavy, 6).run();

    assert!(
        heavy_report.exchange_session_fraction() >= light_report.exchange_session_fraction(),
        "a more loaded system should devote at least as large a share of sessions to exchanges \
         (heavy {:.2} vs light {:.2})",
        heavy_report.exchange_session_fraction(),
        light_report.exchange_session_fraction()
    );
}

#[test]
fn non_exchange_sessions_wait_longer_than_exchange_sessions() {
    let report = run(ExchangePolicy::two_five_way(), 7);
    let non_exchange = report.mean_waiting_secs(SessionKind::NonExchange);
    let pairwise = report.mean_waiting_secs(SessionKind::Exchange { ring_size: 2 });
    if let (Some(ne), Some(pw)) = (non_exchange, pairwise) {
        assert!(
            ne >= pw,
            "non-exchange sessions should not wait less than exchange sessions \
             (non-exchange {ne:.0}s vs pairwise {pw:.0}s)"
        );
    }
}

#[test]
fn runs_are_deterministic_across_identical_configs() {
    let a = run(ExchangePolicy::five_two_way(), 8);
    let b = run(ExchangePolicy::five_two_way(), 8);
    assert_eq!(a.completed_downloads(), b.completed_downloads());
    assert_eq!(a.total_sessions(), b.total_sessions());
    assert_eq!(a.total_rings(), b.total_rings());
    assert_eq!(
        a.mean_download_time_min(PeerClass::NonSharing),
        b.mean_download_time_min(PeerClass::NonSharing)
    );
}

/// With `--features audit`, one loaded end-to-end run is driven through the
/// between-events invariant checker: every event must leave slot accounting,
/// transfer provision, ring structure, byte conservation and the ring-cache
/// entries consistent, and the final report must balance.
#[cfg(feature = "audit")]
#[test]
fn loaded_run_survives_the_invariant_audit() {
    let mut config = loaded_config();
    config.num_peers = 24;
    config.sim_duration_s = 1_200.0;
    config.discipline = ExchangePolicy::two_five_way();
    let report = Simulation::new(config, 11).run_audited();
    assert!(report.completed_downloads() > 0);
}

#[test]
fn all_sharing_population_still_functions() {
    let mut config = loaded_config();
    config.behaviors = p2p_exchange::sim::BehaviorMix::honest();
    config.discipline = ExchangePolicy::two_five_way();
    let report = Simulation::new(config, 9).run();
    assert!(report.completed_downloads() > 0);
    assert!(report
        .mean_download_time_min(PeerClass::NonSharing)
        .is_none());
}
