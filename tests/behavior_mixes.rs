//! End-to-end tests of the behavior-mix API: the Section III-B adversaries
//! against the selectable countermeasures, determinism across mixes, and
//! ring-cache equivalence under every behavior.

use p2p_exchange::exchange::ExchangePolicy;
use p2p_exchange::sim::{
    BehaviorKind, BehaviorMix, Protection, SchedulerKind, SessionEnd, SimConfig, SimReport,
    Simulation,
};

/// A loaded system with every strategic population present, under exchange
/// priority (the setting Section III-B attacks).
fn adversarial_config() -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = 40;
    config.sim_duration_s = 6_000.0;
    config.discipline = ExchangePolicy::two_five_way();
    config.scheduler = SchedulerKind::ExchangePriority;
    config.behaviors = BehaviorMix::weighted([
        (BehaviorKind::Honest, 0.5),
        (BehaviorKind::FreeRider, 0.15),
        (BehaviorKind::JunkSender, 0.1),
        (BehaviorKind::ParticipationCheater, 0.1),
        (BehaviorKind::Middleman, 0.15),
    ]);
    config
}

fn run_with(protection: Protection, seed: u64) -> SimReport {
    let mut config = adversarial_config();
    config.protection = protection;
    Simulation::new(config, seed).run()
}

fn usable_mb(report: &SimReport, kind: BehaviorKind) -> f64 {
    report.mean_usable_mb_per_peer(kind).unwrap_or(0.0)
}

#[test]
fn unprotected_cheaters_out_gain_honest_freeriders() {
    // Section III-B, no countermeasures: both active attacks grant priority
    // service the passive free-rider never gets.
    let report = run_with(Protection::None, 11);
    let freerider = usable_mb(&report, BehaviorKind::FreeRider);
    let middleman = usable_mb(&report, BehaviorKind::Middleman);
    let junk = usable_mb(&report, BehaviorKind::JunkSender);
    assert!(
        freerider > 0.0,
        "free-riders still get low-priority service"
    );
    assert!(
        middleman > freerider * 1.5,
        "relaying must buy the middleman priority well above a passive \
         free-rider (middleman {middleman:.1} MB/peer, free-rider {freerider:.1} MB/peer)"
    );
    assert!(
        junk > freerider,
        "junk uploads must buy exchange priority above a passive free-rider \
         (junk {junk:.1} MB/peer, free-rider {freerider:.1} MB/peer)"
    );
    // The junk sender spends no real content: its uploads are garbage, yet
    // substantial — that is the attack.
    let junk_stats = report.behavior_stats(BehaviorKind::JunkSender).unwrap();
    assert!(junk_stats.uploaded_bytes > 0);
    // Victims received that garbage.
    let honest_stats = report.behavior_stats(BehaviorKind::Honest).unwrap();
    assert!(honest_stats.junk_bytes > 0, "honest peers ate junk blocks");
}

#[test]
fn mediation_strips_the_middleman_to_ciphertext() {
    // The acceptance bar of the issue: with Protection::None the attack
    // gains bytes; with Protection::Mediated the middleman's usable bytes
    // drop to exactly zero — everything it receives stays encrypted for
    // peers the true origins named.
    let unprotected = run_with(Protection::None, 11);
    assert!(usable_mb(&unprotected, BehaviorKind::Middleman) > 0.0);

    let mediated = run_with(Protection::Mediated, 11);
    let stats = mediated.behavior_stats(BehaviorKind::Middleman).unwrap();
    assert_eq!(
        stats.usable_bytes(),
        0,
        "a mediated middleman can never decrypt what it relays"
    );
    assert!(
        stats.ciphertext_bytes > 0,
        "the middleman still hauls (useless) encrypted bytes"
    );
    assert!(stats.ciphertext_downloads > 0);
    assert_eq!(
        stats.completed_downloads, 0,
        "no usable completion is credited to a mediated middleman"
    );
    // Honest peers are unaffected by the mediator.
    assert!(usable_mb(&mediated, BehaviorKind::Honest) > 0.0);
}

#[test]
fn windowed_validation_catches_junk_early() {
    // Unprotected, junk is only spotted after a full object's worth of
    // garbage; the synchronous window catches the first junk block of every
    // exchange, so detections multiply and the junk sender's edge collapses.
    let unprotected = run_with(Protection::None, 11);
    let windowed = run_with(Protection::Windowed { max_window: 8 }, 11);

    assert!(windowed.cheat_detections() > unprotected.cheat_detections() * 5);
    assert!(
        windowed.session_end_counts()[&SessionEnd::CheatDetected] > 0,
        "junk terminations are counted under their own SessionEnd variant"
    );
    let junk_unprotected = usable_mb(&unprotected, BehaviorKind::JunkSender);
    let junk_windowed = usable_mb(&windowed, BehaviorKind::JunkSender);
    assert!(
        junk_windowed < junk_unprotected,
        "validation must cut the junk sender's gain \
         ({junk_windowed:.1} vs {junk_unprotected:.1} MB/peer)"
    );
    // And the bounded-exposure claim: caught junk sessions carried at most
    // the validation window's worth of bytes each, so the per-detection junk
    // haul under the window is far below the unprotected full-object rate.
    let junk_bytes_per_detection = |r: &SimReport| {
        let junk: u64 = r
            .behavior_breakdown()
            .values()
            .map(|s| s.junk_bytes)
            .sum::<u64>();
        junk as f64 / r.cheat_detections().max(1) as f64
    };
    assert!(junk_bytes_per_detection(&windowed) < junk_bytes_per_detection(&unprotected) / 10.0);
}

#[test]
fn participation_cheater_jumps_kazaa_queues() {
    // The inflated self-report only pays off under the participation-level
    // scheduler — and there it beats the honest free-rider soundly.
    let mut config = adversarial_config();
    config.discipline = ExchangePolicy::NoExchange;
    config.scheduler = SchedulerKind::ParticipationLevel;
    let report = Simulation::new(config, 13).run();
    let cheater = usable_mb(&report, BehaviorKind::ParticipationCheater);
    let freerider = usable_mb(&report, BehaviorKind::FreeRider);
    assert!(
        cheater > freerider,
        "an inflated participation report must buy priority \
         (cheater {cheater:.1} MB/peer, free-rider {freerider:.1} MB/peer)"
    );
}

#[test]
fn reports_are_deterministic_across_behavior_mixes() {
    for protection in Protection::all_basic() {
        let a = run_with(protection, 21);
        let b = run_with(protection, 21);
        assert_eq!(a.completed_downloads(), b.completed_downloads());
        assert_eq!(a.total_sessions(), b.total_sessions());
        assert_eq!(a.total_rings(), b.total_rings());
        assert_eq!(a.cheat_detections(), b.cheat_detections());
        assert_eq!(a.session_end_counts(), b.session_end_counts());
        assert_eq!(a.behavior_breakdown(), b.behavior_breakdown());
    }
}

#[test]
fn ring_cache_equivalence_holds_under_every_behavior_mix() {
    // The incremental ring-search cache must stay exact when middlemen
    // advertise beyond their storage and junk sessions dissolve rings.
    for protection in [
        Protection::None,
        Protection::Windowed { max_window: 4 },
        Protection::Mediated,
    ] {
        let mut cached = adversarial_config();
        cached.protection = protection;
        cached.sim_duration_s = 3_000.0;
        let mut fresh = cached.clone();
        fresh.ring_candidate_cache = false;

        let cached_report = Simulation::new(cached, 31).run();
        let fresh_report = Simulation::new(fresh, 31).run();
        assert_eq!(
            cached_report.completed_downloads(),
            fresh_report.completed_downloads(),
            "protection {}",
            protection.label()
        );
        assert_eq!(
            cached_report.total_sessions(),
            fresh_report.total_sessions()
        );
        assert_eq!(cached_report.total_rings(), fresh_report.total_rings());
        assert_eq!(
            cached_report.behavior_breakdown(),
            fresh_report.behavior_breakdown()
        );
        assert_eq!(
            cached_report.session_end_counts(),
            fresh_report.session_end_counts()
        );
        assert!(cached_report.ring_cache_stats().hits > 0);
        assert_eq!(fresh_report.ring_cache_stats().hits, 0);
    }
}

#[test]
fn every_behavior_mix_remains_schedulable_under_every_scheduler() {
    // Smoke coverage of the full scheduler × adversarial-mix product: the
    // run must complete downloads and stay internally consistent.
    for kind in SchedulerKind::all() {
        let mut config = adversarial_config();
        config.sim_duration_s = 2_000.0;
        config.scheduler = kind;
        let report = Simulation::new(config, 5).run();
        assert!(
            report.completed_downloads() > 0,
            "downloads complete under {}",
            kind.label()
        );
        assert_eq!(
            report.total_sessions(),
            report.session_counts().values().sum::<u64>()
        );
        let behavior_downloads: u64 = report
            .behavior_breakdown()
            .values()
            .map(|s| s.completed_downloads)
            .sum();
        assert_eq!(behavior_downloads, report.completed_downloads());
    }
}

#[test]
fn windowed_rate_cap_slows_exchanges_when_rtt_dominates() {
    // The countermeasure's cost side: with a pathological RTT, synchronous
    // validation throttles exchange sessions, so honest throughput drops
    // versus the unprotected run.
    let mut slow = adversarial_config();
    slow.behaviors = BehaviorMix::with_freeriders(0.25);
    slow.sim_duration_s = 3_000.0;
    slow.protection = Protection::Windowed { max_window: 1 };
    slow.rtt_s = 200.0; // seconds per validated block round-trip
    let mut free = slow.clone();
    free.protection = Protection::None;

    let slow_report = Simulation::new(slow, 17).run();
    let free_report = Simulation::new(free, 17).run();
    let slow_honest = usable_mb(&slow_report, BehaviorKind::Honest);
    let free_honest = usable_mb(&free_report, BehaviorKind::Honest);
    assert!(
        slow_honest < free_honest,
        "a huge RTT under a 1-block window must throttle honest exchanges \
         ({slow_honest:.1} vs {free_honest:.1} MB/peer)"
    );
}
