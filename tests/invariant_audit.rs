//! Between-events invariant audits of whole simulation runs
//! (`cargo test --features audit --test invariant_audit`).
//!
//! Every run here goes through `Simulation::run_audited`, which re-checks the
//! simulator's structural invariants after every single event — slot
//! accounting, transfer provision, ring cycle structure, byte conservation,
//! and the exactness of every live ring-cache entry against a fresh traced
//! search — and the report-level accounting identities after finalisation.
#![cfg(feature = "audit")]

use p2p_exchange::exchange::ExchangePolicy;
use p2p_exchange::sim::{
    audit, BehaviorKind, BehaviorMix, CacheGranularity, CapacityClass, CatastropheConfig,
    ChurnConfig, ClassMix, FlashCrowdConfig, Protection, SchedulerKind, SimConfig, Simulation,
};

/// A small but busy configuration: enough contention for exchanges, rings,
/// preemption and evictions to all occur, small enough that per-event audits
/// (which re-run every cached search) stay fast.
fn audit_config() -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = 14;
    config.sim_duration_s = 600.0;
    config.discipline = ExchangePolicy::two_five_way();
    config
}

#[test]
fn audited_run_passes_and_matches_the_unaudited_run() {
    let mut config = audit_config();
    config.sim_duration_s = 1_000.0;
    let audited = Simulation::new(config.clone(), 1).run_audited();
    let plain = Simulation::new(config, 1).run();
    assert_eq!(audited.completed_downloads(), plain.completed_downloads());
    assert_eq!(audited.total_sessions(), plain.total_sessions());
    assert_eq!(audited.total_rings(), plain.total_rings());
    assert!(
        audited.completed_downloads() > 0,
        "the run must do something"
    );
}

#[test]
fn audit_passes_under_every_behavior_mix() {
    let mixes = [
        BehaviorMix::honest(),
        BehaviorMix::with_freeriders(0.5),
        BehaviorMix::honest().and(BehaviorKind::JunkSender, 0.25),
        BehaviorMix::honest().and(BehaviorKind::Middleman, 0.25),
        BehaviorMix::honest().and(BehaviorKind::ParticipationCheater, 0.25),
        BehaviorMix::weighted([
            (BehaviorKind::Honest, 0.4),
            (BehaviorKind::FreeRider, 0.2),
            (BehaviorKind::JunkSender, 0.1),
            (BehaviorKind::ParticipationCheater, 0.1),
            (BehaviorKind::Middleman, 0.2),
        ]),
    ];
    for (index, mix) in mixes.into_iter().enumerate() {
        let mut config = audit_config();
        config.behaviors = mix;
        let report = Simulation::new(config, 40 + index as u64).run_audited();
        assert!(report.total_sessions() > 0, "mix {index} must move data");
    }
}

#[test]
fn audit_passes_under_every_protection_mode() {
    for (index, protection) in Protection::all_basic().into_iter().enumerate() {
        let mut config = audit_config();
        config.behaviors = BehaviorMix::honest()
            .and(BehaviorKind::JunkSender, 0.2)
            .and(BehaviorKind::Middleman, 0.2);
        config.protection = protection;
        let report = Simulation::new(config, 50 + index as u64).run_audited();
        assert!(report.total_sessions() > 0);
    }
}

#[test]
fn audit_passes_at_both_cache_granularities_and_uncached() {
    for granularity in [CacheGranularity::Provider, CacheGranularity::Entry] {
        let mut config = audit_config();
        config.ring_cache_granularity = granularity;
        let _ = Simulation::new(config, 7).run_audited();
    }
    let mut config = audit_config();
    config.ring_candidate_cache = false;
    let _ = Simulation::new(config, 7).run_audited();
}

#[test]
fn audit_passes_under_every_scheduler() {
    for (index, kind) in SchedulerKind::all().into_iter().enumerate() {
        let mut config = audit_config();
        config.sim_duration_s = 400.0;
        config.scheduler = kind;
        let _ = Simulation::new(config, 60 + index as u64).run_audited();
    }
}

#[test]
fn audit_passes_for_sharded_runs_and_matches_sequential() {
    // The audited sharded loop re-checks every invariant after each merged
    // event — including cache-vs-fresh exactness right after a precomputed
    // trace was substituted, and the maintenance-wheel capacity invariant.
    let mut config = audit_config();
    config.num_peers = 24;
    config.shards = 3;
    let sharded = Simulation::new(config.clone(), 4).run_audited();
    config.shards = 1;
    let sequential = Simulation::new(config, 4).run_audited();
    assert_eq!(
        sharded.completed_downloads(),
        sequential.completed_downloads()
    );
    assert_eq!(sharded.total_sessions(), sequential.total_sessions());
    assert_eq!(sharded.total_rings(), sequential.total_rings());
    assert_eq!(sharded.ring_cache_stats(), sequential.ring_cache_stats());
    assert!(sharded.total_sessions() > 0);
}

/// `audit_config` plus the full population dynamics: churn, a mid-run
/// catastrophe, a flash crowd, and a heterogeneous class mix.  The audit
/// re-checks every invariant after every event — including the new offline
/// invariants (departed peers hold no slots, transfers, wants, graph edges,
/// holders entries or live cache references) and byte conservation across
/// the departure teardowns.
fn churny_audit_config() -> SimConfig {
    let mut config = audit_config();
    config.churn = Some(ChurnConfig {
        mean_session_s: 200.0,
        mean_downtime_s: 80.0,
    });
    config.catastrophe = Some(CatastropheConfig {
        at_s: 250.0,
        top_k: 2,
    });
    config.flash_crowd = Some(FlashCrowdConfig {
        at_s: 350.0,
        requesters: 6,
        seed_holders: 2,
    });
    config.classes = ClassMix::weighted([
        (CapacityClass::Fast, 0.25),
        (CapacityClass::Medium, 0.5),
        (CapacityClass::Slow, 0.25),
    ]);
    config
}

#[test]
fn audit_passes_under_population_dynamics_and_matches_the_unaudited_run() {
    // Milder churn on a longer horizon than `churny_audit_config`: in the
    // 14-peer quick-test workload a download outlasts a short churn session,
    // so this variant is tuned to both *complete* downloads (for the
    // per-class fairness assertion) and *cut* sessions (for the teardown
    // paths) — the heavy-churn configs below stress teardown alone.
    let mut config = churny_audit_config();
    config.sim_duration_s = 1_000.0;
    config.churn = Some(ChurnConfig {
        mean_session_s: 2_000.0,
        mean_downtime_s: 100.0,
    });
    config.catastrophe = Some(CatastropheConfig {
        at_s: 700.0,
        top_k: 2,
    });
    config.flash_crowd = Some(FlashCrowdConfig {
        at_s: 800.0,
        requesters: 6,
        seed_holders: 2,
    });
    let audited = Simulation::new(config.clone(), 1).run_audited();
    let plain = Simulation::new(config, 1).run();
    assert_eq!(audited.completed_downloads(), plain.completed_downloads());
    assert_eq!(audited.total_sessions(), plain.total_sessions());
    assert_eq!(audited.total_rings(), plain.total_rings());
    assert!(
        audited.completed_downloads() > 0,
        "the run must do something"
    );
    assert!(
        !audited.observed_capacity_classes().is_empty(),
        "a mixed-class run must record per-class fairness samples"
    );
}

#[test]
fn audit_passes_under_churn_with_adversarial_mixes_and_protections() {
    for (index, protection) in Protection::all_basic().into_iter().enumerate() {
        let mut config = churny_audit_config();
        config.behaviors = BehaviorMix::honest()
            .and(BehaviorKind::FreeRider, 0.2)
            .and(BehaviorKind::JunkSender, 0.15)
            .and(BehaviorKind::Middleman, 0.15);
        config.protection = protection;
        let report = Simulation::new(config, 70 + index as u64).run_audited();
        assert!(report.total_sessions() > 0);
    }
}

#[test]
fn audit_passes_under_churn_at_every_granularity_and_scheduler() {
    for granularity in [CacheGranularity::Provider, CacheGranularity::Entry] {
        let mut config = churny_audit_config();
        config.ring_cache_granularity = granularity;
        let _ = Simulation::new(config, 8).run_audited();
    }
    let mut uncached = churny_audit_config();
    uncached.ring_candidate_cache = false;
    let _ = Simulation::new(uncached, 8).run_audited();
    for (index, kind) in SchedulerKind::all().into_iter().enumerate() {
        let mut config = churny_audit_config();
        config.sim_duration_s = 400.0;
        config.scheduler = kind;
        let _ = Simulation::new(config, 80 + index as u64).run_audited();
    }
}

#[test]
fn audit_passes_for_sharded_churny_runs_and_matches_sequential() {
    let mut config = churny_audit_config();
    config.num_peers = 24;
    config.catastrophe = Some(CatastropheConfig {
        at_s: 250.0,
        top_k: 3,
    });
    config.shards = 3;
    let sharded = Simulation::new(config.clone(), 4).run_audited();
    config.shards = 1;
    let sequential = Simulation::new(config, 4).run_audited();
    assert_eq!(
        sharded.completed_downloads(),
        sequential.completed_downloads()
    );
    assert_eq!(sharded.total_sessions(), sequential.total_sessions());
    assert_eq!(sharded.total_rings(), sequential.total_rings());
    assert_eq!(sharded.ring_cache_stats(), sequential.ring_cache_stats());
}

#[test]
fn check_report_validates_finished_runs() {
    let report = Simulation::new(audit_config(), 2).run();
    audit::check_report(&report).expect("a finished run's report must balance");
}
