//! End-to-end tests of the builder-style scenario engine through the
//! public facade: grid shape, parallel multi-seed execution, aggregation.

use p2p_exchange::exchange::ExchangePolicy;
use p2p_exchange::sim::experiment::capacity_scenario;
use p2p_exchange::sim::{Axis, PeerClass, Scenario, SimConfig, Simulation};

fn tiny_base() -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = 20;
    config.sim_duration_s = 1_000.0;
    config
}

#[test]
fn figure_4_and_5_capacity_sweep_in_one_builder_call() {
    // The acceptance scenario of the API redesign: the Figure 4/5 sweep,
    // three seeds per point, run in parallel, aggregated per point.
    let capacities = [60.0, 100.0];
    let policies = [ExchangePolicy::NoExchange, ExchangePolicy::two_five_way()];
    let grid = capacity_scenario(&tiny_base(), &policies, &capacities)
        .seeds(0..3)
        .run();

    assert_eq!(grid.points().len(), 4);
    assert_eq!(grid.rows().len(), 12, "4 grid points x 3 seeds");
    assert_eq!(grid.seeds(), &[0, 1, 2]);

    for point in grid.points() {
        let downloads = grid
            .aggregate(point.index, |r| Some(r.completed_downloads() as f64))
            .expect("every run reports download counts");
        assert_eq!(
            downloads.n, 3,
            "all three seeds aggregate at {}",
            point.label
        );
        assert!(
            downloads.mean > 0.0,
            "downloads complete at {}",
            point.label
        );

        let fraction = grid
            .aggregate(point.index, |r| Some(r.exchange_session_fraction()))
            .unwrap();
        if point.value("discipline") == Some("no-exchange") {
            assert_eq!(fraction.mean, 0.0);
        }
    }

    // Figure 5's headline: a loaded system exchanges at least as much.
    let loaded = grid
        .aggregate_where(&[("upload_kbps", "60"), ("discipline", "2-5-way")], |r| {
            Some(r.exchange_session_fraction())
        })
        .unwrap();
    let light = grid
        .aggregate_where(&[("upload_kbps", "100"), ("discipline", "2-5-way")], |r| {
            Some(r.exchange_session_fraction())
        })
        .unwrap();
    assert!(
        loaded.mean >= light.mean * 0.5,
        "exchange fraction should not collapse under load (loaded {:.3}, light {:.3})",
        loaded.mean,
        light.mean
    );
}

#[test]
fn grid_rows_match_standalone_runs_exactly() {
    let grid = Scenario::from(tiny_base())
        .vary(Axis::UploadKbps(vec![50.0, 90.0]))
        .seeds([3, 4])
        .run();
    for row in grid.rows() {
        let standalone = Simulation::new(grid.point(row.point).config.clone(), row.seed).run();
        assert_eq!(
            row.report.completed_downloads(),
            standalone.completed_downloads()
        );
        assert_eq!(row.report.total_sessions(), standalone.total_sessions());
        assert_eq!(row.report.total_rings(), standalone.total_rings());
        assert_eq!(
            row.report.mean_download_time_min(PeerClass::Sharing),
            standalone.mean_download_time_min(PeerClass::Sharing)
        );
    }
}

#[test]
fn multi_axis_grids_compose_with_custom_axes() {
    let grid = Scenario::from(tiny_base())
        .vary(Axis::FreeriderFraction(vec![0.25, 0.5]))
        .vary(
            Axis::custom("preemption")
                .with_variant("on", |c: &mut SimConfig| c.preemption = true)
                .with_variant("off", |c: &mut SimConfig| c.preemption = false),
        )
        .seeds([8])
        .run();
    assert_eq!(grid.points().len(), 4);
    let off = grid
        .find_point(&[("freerider_fraction", "0.5"), ("preemption", "off")])
        .expect("the cross product contains every combination");
    assert!(!off.config.preemption);
    assert_eq!(
        off.config.behaviors,
        p2p_exchange::sim::BehaviorMix::with_freeriders(0.5)
    );
}
