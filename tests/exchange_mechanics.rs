//! Integration tests of the exchange mechanism itself across crates:
//! ring search against the request graph, Bloom summaries vs exact trees,
//! the token protocol, and the Section III-B countermeasures.

use p2p_exchange::bloom::BloomParams;
use p2p_exchange::des::DetRng;
use p2p_exchange::exchange::{
    find_rings, BloomRingIndex, ExchangeRing, RequestGraph, RequestTree, RingPreference, RingToken,
    SearchPolicy,
};

/// Builds a reproducible random request graph over `peers` peers.
fn random_graph(peers: u32, edges: usize, seed: u64) -> RequestGraph<u32, u32> {
    let mut rng = DetRng::seed_from(seed);
    let mut graph = RequestGraph::new();
    while graph.len() < edges {
        let requester = rng.gen_range(0..peers);
        let provider = rng.gen_range(0..peers);
        if requester == provider {
            continue;
        }
        graph.add_request(requester, provider, rng.gen_range(0u32..300));
    }
    graph
}

/// Ownership oracle used across the tests: peer `p` owns object `o` iff
/// `(p + o)` is divisible by 7 — arbitrary but deterministic and sparse.
fn owns(p: &u32, o: &u32) -> bool {
    (p + o) % 7 == 0
}

#[test]
fn every_ring_found_is_internally_consistent_with_the_graph() {
    let graph = random_graph(40, 400, 1);
    let wants: Vec<u32> = (0..12).collect();
    for preference in [RingPreference::ShorterFirst, RingPreference::LongerFirst] {
        let policy = SearchPolicy::new(5, preference);
        for root in 0..40u32 {
            for ring in find_rings(&graph, root, &wants, owns, policy) {
                assert!(ring.contains(&root));
                assert!(ring.len() >= 2 && ring.len() <= 5);
                // Every edge except the closing one is a registered request.
                let closing = ring.download_of(&root).unwrap();
                assert!(owns(&closing.uploader, &closing.object));
                for edge in ring.edges() {
                    if edge.downloader != root {
                        assert!(graph.has_request(edge.downloader, edge.uploader, edge.object));
                    }
                }
            }
        }
    }
}

#[test]
fn bloom_summary_never_misses_a_peer_the_exact_tree_contains() {
    let graph = random_graph(60, 600, 2);
    for root in 0..60u32 {
        let tree = RequestTree::build(&graph, root, 4);
        let index =
            BloomRingIndex::build_with_params(&graph, root, 4, BloomParams::optimal(512, 0.01));
        for node in tree.nodes() {
            assert!(
                index.may_contain(&node.peer),
                "peer {} at depth {} missing from the Bloom summary of root {root}",
                node.peer,
                node.depth
            );
            let hint = index
                .ring_size_hint(&node.peer)
                .expect("summarised peer must have a ring-size hint");
            // A false positive at a shallower level may under-estimate, but
            // the hint can never be larger than what the exact tree implies.
            assert!(hint <= node.depth + 1 + 1);
        }
    }
}

#[test]
fn token_circulation_visits_every_member_of_search_results() {
    let graph = random_graph(30, 300, 3);
    let wants: Vec<u32> = (0..30).collect();
    let policy = SearchPolicy::new(4, RingPreference::ShorterFirst);
    let mut circulated = 0;
    for root in 0..30u32 {
        for ring in find_rings(&graph, root, &wants, owns, policy) {
            let mut asked = Vec::new();
            let outcome = RingToken::new(root).circulate(&ring, |peer, edge| {
                assert_eq!(edge.uploader, *peer);
                asked.push(*peer);
                true
            });
            assert!(outcome.is_confirmed());
            let mut members = ring.members();
            members.sort_unstable();
            asked.sort_unstable();
            assert_eq!(members, asked);
            circulated += 1;
        }
    }
    assert!(circulated > 0, "the random graph should contain some rings");
}

#[test]
fn declined_member_blocks_activation_and_reports_position() {
    let graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 1, 20)].into_iter().collect();
    let rings = find_rings(
        &graph,
        0,
        &[99],
        |p, o| *p == 2 && *o == 99,
        SearchPolicy::new(5, RingPreference::ShorterFirst),
    );
    assert_eq!(rings.len(), 1);
    let ring: &ExchangeRing<u32, u32> = &rings[0];
    let outcome = RingToken::new(0).circulate(ring, |peer, _| *peer != 1);
    match outcome {
        p2p_exchange::exchange::TokenOutcome::Declined {
            peer,
            confirmed_before,
        } => {
            assert_eq!(peer, 1);
            assert_eq!(confirmed_before, 0);
        }
        p2p_exchange::exchange::TokenOutcome::Confirmed => panic!("peer 1 should have declined"),
    }
}

#[test]
fn windowed_validation_and_mediator_compose() {
    use p2p_exchange::exchange::cheat::{EncryptedBlock, Mediator, WindowedExchange};

    // Two peers exchange with windowed validation; every round is clean, so
    // the window opens up and the mediator releases keys to both.
    let mut a_side = WindowedExchange::new(64 * 1024, 4);
    let mut b_side = WindowedExchange::new(64 * 1024, 4);
    for _ in 0..3 {
        a_side.on_round_validated();
        b_side.on_round_validated();
    }
    assert_eq!(a_side.window(), 4);
    assert_eq!(b_side.window(), 4);

    let a_blocks: Vec<EncryptedBlock<u32>> = (0..4)
        .map(|_| EncryptedBlock {
            origin: 1,
            intended_recipient: 2,
            valid: true,
        })
        .collect();
    let b_blocks: Vec<EncryptedBlock<u32>> = (0..4)
        .map(|_| EncryptedBlock {
            origin: 2,
            intended_recipient: 1,
            valid: true,
        })
        .collect();
    let outcome = Mediator::new(2).mediate(&a_blocks, &b_blocks);
    assert!(outcome.can_decrypt(&1));
    assert!(outcome.can_decrypt(&2));
    assert!(!outcome.can_decrypt(&3));
    assert!(!outcome.cheating_detected);
}
