//! Self-test suite: every rule fires exactly where the fixtures say it
//! should, suppressions with reasons suppress, reason-less suppressions
//! error, and rule scoping (crate lists, file lists, `#[cfg(test)]`
//! exemption) behaves.
//!
//! Each fixture line that must produce a finding carries a trailing
//! `// … <- RULE [RULE…]` marker; the harness collects `(rule, line)`
//! pairs from the markers and asserts the lint output matches them
//! **exactly** — no missing findings, no extras.

use exchange_lint::{lint_source, Diagnostic, Severity};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Collects the expected `(rule, line)` pairs from `<- RULE` markers.
fn expected_findings(source: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let Some(at) = line.find("<- ") else { continue };
        for word in line[at + 3..].split_whitespace() {
            let is_rule_id = word.len() == 4
                && word.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && word[1..].chars().all(|c| c.is_ascii_digit());
            if is_rule_id {
                out.push((word.to_string(), i as u32 + 1));
            }
        }
    }
    out.sort();
    out
}

fn actual_findings(diagnostics: &[Diagnostic]) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = diagnostics
        .iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect();
    out.sort();
    out
}

/// Lints `fixture_name` under `path_hint` and asserts findings == markers.
fn check(fixture_name: &str, path_hint: &str) {
    let source = fixture(fixture_name);
    let diagnostics = lint_source(path_hint, &source);
    assert_eq!(
        actual_findings(&diagnostics),
        expected_findings(&source),
        "fixture {fixture_name} linted as {path_hint}: findings diverge from `<- RULE` markers\n\
         diagnostics:\n{}",
        diagnostics
            .iter()
            .map(|d| format!("  {d}\n"))
            .collect::<String>()
    );
}

#[test]
fn d001_fires_and_suppresses() {
    check("d001.rs", "crates/sim/src/fixture.rs");
}

#[test]
fn d001_scoped_to_sim_state_crates() {
    // The same iterations in the bench crate are not findings (the only
    // residue is the now-stale allow, reported as W001).
    let diagnostics = lint_source("crates/bench/src/fixture.rs", &fixture("d001.rs"));
    assert!(
        diagnostics.iter().all(|d| d.rule == "W001"),
        "unexpected: {diagnostics:?}"
    );
}

#[test]
fn d002_fires_and_suppresses() {
    check("d002.rs", "crates/des/src/fixture.rs");
}

#[test]
fn d002_allowed_in_bench_crate() {
    let diagnostics = lint_source("crates/bench/src/fixture.rs", &fixture("d002.rs"));
    assert!(
        diagnostics.iter().all(|d| d.rule == "W001"),
        "unexpected: {diagnostics:?}"
    );
}

#[test]
fn d003_fires_and_suppresses() {
    check("d003.rs", "crates/credit/src/fixture.rs");
}

#[test]
fn d003_allowed_in_pool_and_scenario() {
    for path in [
        "crates/sim/src/simulation/pool.rs",
        "crates/sim/src/scenario.rs",
    ] {
        let diagnostics = lint_source(path, &fixture("d003.rs"));
        assert!(
            diagnostics.iter().all(|d| d.rule != "D003"),
            "D003 fired in sanctioned file {path}: {diagnostics:?}"
        );
    }
}

#[test]
fn d004_fires_alongside_d001_and_suppresses() {
    check("d004.rs", "crates/workload/src/fixture.rs");
}

#[test]
fn u001_fires_and_safety_comment_or_allow_suppresses() {
    check("u001.rs", "crates/netsim/src/fixture.rs");
}

#[test]
fn h001_fires_and_suppresses() {
    check("h001.rs", "crates/sim/src/simulation/events.rs");
}

#[test]
fn h001_covers_the_population_module() {
    // PR 8's population dynamics are event-loop code: same panic policy.
    check("h001.rs", "crates/sim/src/simulation/population.rs");
}

#[test]
fn h001_covers_the_snapshot_module() {
    // PR 9's checkpoint codec restores untrusted bytes: it must return
    // `SnapshotError`s, never panic, so it inherits the panic policy.
    check("h001.rs", "crates/sim/src/simulation/snapshot.rs");
}

#[test]
fn h001_scoped_to_event_loop_modules() {
    let diagnostics = lint_source("crates/sim/src/peer.rs", &fixture("h001.rs"));
    assert!(
        diagnostics.iter().all(|d| d.rule != "H001"),
        "H001 fired outside the event-loop modules: {diagnostics:?}"
    );
}

#[test]
fn reasonless_allow_errors_and_does_not_suppress() {
    check("bad_allow.rs", "crates/des/src/fixture.rs");
    // Belt and braces: the E001s are errors, and the D002s they failed to
    // suppress are present.
    let diagnostics = lint_source("crates/des/src/fixture.rs", &fixture("bad_allow.rs"));
    assert_eq!(
        diagnostics.iter().filter(|d| d.rule == "E001").count(),
        3,
        "{diagnostics:?}"
    );
    assert_eq!(
        diagnostics.iter().filter(|d| d.rule == "D002").count(),
        2,
        "{diagnostics:?}"
    );
    assert!(diagnostics
        .iter()
        .filter(|d| d.rule == "E001")
        .all(|d| d.severity == Severity::Error));
}

#[test]
fn stale_allow_warns() {
    check("w001.rs", "crates/des/src/fixture.rs");
    let diagnostics = lint_source("crates/des/src/fixture.rs", &fixture("w001.rs"));
    assert!(diagnostics
        .iter()
        .all(|d| d.rule == "W001" && d.severity == Severity::Warning));
}

/// The lint's whole value is the workspace staying clean: run the real
/// walk over the real tree. (CI runs the binary too; this makes a plain
/// `cargo test` catch regressions without the extra step.)
#[test]
fn workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    let diagnostics = exchange_lint::lint_workspace(&root).expect("workspace walk");
    assert!(
        diagnostics.is_empty(),
        "the workspace has lint findings:\n{}",
        diagnostics
            .iter()
            .map(|d| format!("  {d}\n"))
            .collect::<String>()
    );
}
