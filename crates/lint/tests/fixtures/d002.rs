//! D002 fixture: wall-clock reads outside the bench crate.
//! Linted under the synthetic path `crates/des/src/fixture.rs`.
use std::time::{Instant, SystemTime};

pub fn violation_instant() -> Instant {
    Instant::now() // <- D002
}

pub fn violation_system_time() -> SystemTime {
    std::time::SystemTime::now() // <- D002
}

pub fn suppressed() -> Instant {
    // exchange-lint: allow(D002, reason = "fixture: profiling-only read, never feeds sim state")
    Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = std::time::Instant::now();
    }
}
