//! U001 fixture: `unsafe` must carry a `// SAFETY:` comment.
//! Linted under the synthetic path `crates/netsim/src/fixture.rs`.

pub unsafe fn violation(ptr: *const u8) -> u8 { // <- U001
    *ptr
}

// SAFETY: the caller guarantees `ptr` is valid for reads of one byte.
pub unsafe fn documented(ptr: *const u8) -> u8 {
    *ptr
}

pub fn block_violation() {
    let xs = [1u8, 2];
    let _ = unsafe { *xs.as_ptr() }; // <- U001
}

pub fn block_documented() {
    let xs = [1u8, 2];
    // SAFETY: the array has two elements, so its base pointer is readable.
    let _ = unsafe { *xs.as_ptr() };
}

pub fn suppressed() {
    let xs = [1u8, 2];
    // exchange-lint: allow(U001, reason = "fixture: proves the allow mechanism covers U001")
    let _ = unsafe { *xs.as_ptr() };
}
