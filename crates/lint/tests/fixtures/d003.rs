//! D003 fixture: thread creation outside the sanctioned files.
//! Linted under the synthetic path `crates/credit/src/fixture.rs`; the same
//! content linted as `crates/sim/src/simulation/pool.rs` must be clean.
use std::thread;

pub fn violation_spawn() {
    thread::spawn(|| {}); // <- D003
}

pub fn violation_scope() {
    std::thread::scope(|_scope| {}); // <- D003
}

pub fn suppressed() {
    // exchange-lint: allow(D003, reason = "fixture: sanctioned one-off helper")
    thread::spawn(|| {});
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        std::thread::scope(|_scope| {});
    }
}
