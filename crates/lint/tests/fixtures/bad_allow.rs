//! E001 fixture: a reason-less allow is an error AND does not suppress.
//! Linted under the synthetic path `crates/des/src/fixture.rs`.
use std::time::Instant;

pub fn violation() -> Instant {
    // exchange-lint: allow(D002) <- E001
    Instant::now() // <- D002
}

pub fn empty_reason() -> Instant {
    // exchange-lint: allow(D002, reason = "") <- E001
    Instant::now() // <- D002
}

pub fn malformed() {
    // exchange-lint: please ignore this file <- E001
}
