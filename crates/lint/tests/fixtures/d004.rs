//! D004 fixture: float accumulation chained onto an unordered iterator.
//! Linted under the synthetic path `crates/workload/src/fixture.rs`.
use std::collections::HashMap;

pub fn violation_sum(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum::<f64>() // <- D001 D004
}

pub fn violation_fold(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().fold(0.0, |acc, w| acc + w) // <- D001 D004
}

pub fn integer_sum_is_d001_only(counts: &HashMap<u32, u64>) -> u64 {
    counts.values().sum::<u64>() // <- D001
}

pub fn suppressed(weights: &HashMap<u32, f64>) -> f64 {
    // exchange-lint: allow(D001, reason = "fixture: order-insensitive Kahan pass") allow(D004, reason = "fixture: compensated summation")
    weights.values().sum::<f64>()
}
