//! H001 fixture: panicking accessors in the event-loop modules.
//! Linted under the synthetic path `crates/sim/src/simulation/events.rs`;
//! the same content linted as `crates/sim/src/events.rs` must be clean.

pub fn violation_unwrap(xs: &[u64]) -> u64 {
    *xs.first().unwrap() // <- H001
}

pub fn violation_empty_expect(xs: &[u64]) -> u64 {
    xs.get(1).copied().expect("") // <- H001
}

pub fn violation_indexing(xs: &[u64], i: usize) -> u64 {
    xs[i] // <- H001
}

pub struct PeerId(u32);
impl PeerId {
    pub fn as_usize(&self) -> usize {
        self.0 as usize
    }
}

pub fn dense_id_idiom_is_fine(per_peer: &[u64], peer: PeerId) -> u64 {
    per_peer[peer.as_usize()]
}

pub fn full_range_is_fine(xs: &[u64]) -> &[u64] {
    &xs[..]
}

pub fn expect_with_invariant_is_fine(xs: &[u64]) -> u64 {
    *xs.first().expect("the caller registered at least one peer")
}

pub fn suppressed(xs: &[u64], i: usize) -> u64 {
    // exchange-lint: allow(H001, reason = "fixture: index produced by enumerate over this slice")
    xs[i]
}
