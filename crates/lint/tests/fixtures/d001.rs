//! D001 fixture: HashMap/HashSet iteration in a sim-state crate.
//! Linted under the synthetic path `crates/sim/src/fixture.rs`.
use std::collections::{HashMap, HashSet};

pub struct State {
    pub by_peer: HashMap<u32, u64>,
}

pub fn violation_for_loop(state: &State) -> u64 {
    let mut total = 0;
    for (_peer, bytes) in &state.by_peer { // <- D001
        total += bytes;
    }
    total
}

pub fn violation_method(seen: &HashSet<u32>) -> usize {
    seen.iter().count() // <- D001
}

pub fn violation_ctor() -> Vec<u32> {
    let mut scratch = HashMap::new();
    scratch.insert(1u32, 2u32);
    scratch.into_keys().collect() // <- D001
}

pub fn membership_is_fine(state: &State) -> bool {
    state.by_peer.contains_key(&7) && state.by_peer.get(&7).is_some()
}

pub fn suppressed(state: &State) -> Vec<u32> {
    let mut keys: Vec<u32> = state
        .by_peer
        // exchange-lint: allow(D001, reason = "sorted on the line below before use")
        .keys()
        .copied()
        .collect();
    keys.sort_unstable();
    keys
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let map: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for _ in map.iter() {}
    }
}
