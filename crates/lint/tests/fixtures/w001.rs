//! W001 fixture: an allow (with reason) that suppresses nothing is stale.
//! Linted under the synthetic path `crates/des/src/fixture.rs`.

// exchange-lint: allow(D002, reason = "nothing below reads a clock, so this is stale") <- W001
pub fn nothing_to_suppress() -> u32 {
    7
}
