//! A small Rust lexer: just enough to walk this workspace's sources without
//! being fooled by comments, string/char literals, or lifetimes.
//!
//! The lint rules match on token shapes, so correctness here means two
//! things: (1) nothing inside a comment or literal ever becomes a code
//! token, and (2) comments are preserved (with line numbers) because the
//! suppression mechanism and the `// SAFETY:` rule read them.
//!
//! This is deliberately not a full Rust lexer — no float-suffix pedantry, no
//! shebang handling — but it understands the constructs that actually occur
//! in the workspace: nested block comments, raw strings with `#` fences,
//! byte/C strings, char literals (including escapes), and the `'a` vs `'a'`
//! lifetime/char ambiguity.

/// What a token is; the text is carried alongside in [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `in`, `unsafe`, `HashMap`, ...).
    Ident,
    /// Integer or float literal (value never matters to the rules).
    Number,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Character or byte-character literal: `'x'`, `b'\n'`.
    Char,
    /// Lifetime: `'a`, `'static`, `'_`.
    Lifetime,
    /// Any single punctuation character (`.`, `:`, `[`, `&`, ...).
    Punct,
}

/// One code token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes()[0] as char == ch
    }

    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// One comment (line or block) with the line its first character is on.
/// Line comments keep the `//`; block comments keep the `/* */` fences.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Lexed file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // String-prefix check: is `word` a valid literal prefix (b, r, c, br, cr)?
    fn is_string_prefix(word: &str) -> bool {
        matches!(word, "b" | "r" | "c" | "br" | "cr" | "rb" | "rc")
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b if b.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: source[start..i].to_string(),
                    line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: source[start..i].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let (text, consumed, newlines) = scan_string(&source[i..]);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                });
                line += newlines;
                i += consumed;
            }
            b'\'' => {
                // Lifetime vs char literal. A char literal is `'` followed by
                // either an escape, or exactly one char then `'`. Everything
                // else (`'a`, `'static`, `'_`) is a lifetime.
                let rest = &source[i + 1..];
                let mut chars = rest.chars();
                let first = chars.next();
                let second = chars.next();
                let is_char = match first {
                    Some('\\') => true,
                    Some(_) => second == Some('\''),
                    None => false,
                };
                if is_char {
                    let (text, consumed, newlines) = scan_char(&source[i..]);
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text,
                        line,
                    });
                    line += newlines;
                    i += consumed;
                } else {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                    {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[start..i].to_string(),
                        line,
                    });
                }
            }
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let word = &source[start..i];
                // `r"..."`, `b"..."`, `r#"..."#`, `br#"..."#`, `c"..."` —
                // the "identifier" is actually a string-literal prefix.
                let next = bytes.get(i).copied();
                if is_string_prefix(word) && (next == Some(b'"') || next == Some(b'#')) {
                    let raw = word.contains('r');
                    if raw || next == Some(b'"') {
                        let (text, consumed, newlines) = if raw {
                            scan_raw_string(&source[i..])
                        } else {
                            let (t, c, n) = scan_string(&source[i..]);
                            (t, c, n)
                        };
                        // `b#` with no string would consume nothing; fall
                        // through to ident in that case.
                        if consumed > 0 {
                            out.tokens.push(Token {
                                kind: TokenKind::Str,
                                text: format!("{word}{text}"),
                                line,
                            });
                            line += newlines;
                            i += consumed;
                            continue;
                        }
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: word.to_string(),
                    line,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c == b'_' || c.is_ascii_alphanumeric() {
                        i += 1;
                    } else if c == b'.'
                        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                        && bytes.get(i.wrapping_sub(1)) != Some(&b'.')
                    {
                        // `1.5` continues the number; `1..n` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scans a `"..."` string starting at the opening quote. Returns the literal
/// text, bytes consumed, and newlines crossed.
fn scan_string(src: &str) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[0], b'"');
    let mut i = 1usize;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                return (src[..i].to_string(), i, newlines);
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (src.to_string(), bytes.len(), newlines)
}

/// Scans a raw string starting at the `#` fence or opening quote (the `r`
/// prefix has already been consumed): `#*"..."#*`.
fn scan_raw_string(src: &str) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    let mut hashes = 0usize;
    while bytes.get(hashes) == Some(&b'#') {
        hashes += 1;
    }
    if bytes.get(hashes) != Some(&b'"') {
        return (String::new(), 0, 0);
    }
    let mut i = hashes + 1;
    let mut newlines = 0u32;
    let closing: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while i < bytes.len() {
        if bytes[i] == b'"' && bytes[i..].starts_with(&closing) {
            let end = i + closing.len();
            return (src[..end].to_string(), end, newlines);
        }
        if bytes[i] == b'\n' {
            newlines += 1;
        }
        i += 1;
    }
    (src.to_string(), bytes.len(), newlines)
}

/// Scans a `'x'` char literal starting at the opening quote.
fn scan_char(src: &str) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[0], b'\'');
    let mut i = 1usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => {
                i += 1;
                return (src[..i].to_string(), i, 0);
            }
            _ => i += 1,
        }
    }
    (src.to_string(), bytes.len(), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_never_become_tokens() {
        let lexed = lex("let a = 1; // HashMap::iter()\n/* for x in map */ let b = 2;");
        assert!(lexed.tokens.iter().all(|t| t.text != "HashMap"));
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ fn x() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("inner")));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "HashMap.iter() // not a comment";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k == TokenKind::Str || t != "HashMap"));
        let lexed = lex(r#"let s = "a // b";"#);
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r###"let s = r#"quote " inside"#; let b = b"bytes";"###);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        // The identifier before `=` survives; `r`/`b` never appear as idents.
        assert!(toks.iter().any(|(_, t)| t == "s"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'x'"));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let nl = '\n'; let q = '\''; let u = '\u{1F600}';");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            3
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\"two\nline\"\nc");
        let c = lexed.tokens.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c.line, 5);
    }

    #[test]
    fn number_vs_range() {
        let toks = kinds("for i in 1..=10 { let f = 2.5; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "2.5"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "10"));
    }
}
