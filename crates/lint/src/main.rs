//! `exchange-lint` CLI.
//!
//! ```text
//! cargo run -p exchange-lint -- --workspace --deny
//! cargo run -p exchange-lint -- crates/sim/src/simulation/mod.rs
//! cargo run -p exchange-lint -- --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 findings (errors always; warnings too under
//! `--deny`), 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use exchange_lint::{find_workspace_root, lint_source, lint_workspace, Severity, RULES};

fn usage() -> ! {
    eprintln!(
        "usage: exchange-lint [--workspace | <file.rs>...] [--root <dir>] [--deny] [--list-rules]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut deny = false;
    let mut list_rules = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--deny" => deny = true,
            "--list-rules" => list_rules = true,
            "--root" => {
                let Some(dir) = args.get(i + 1) else { usage() };
                root_arg = Some(PathBuf::from(dir));
                i += 1;
            }
            flag if flag.starts_with('-') => usage(),
            path => paths.push(PathBuf::from(path)),
        }
        i += 1;
    }

    if list_rules {
        println!("{:<6} {:<8} summary", "rule", "severity");
        for rule in RULES {
            println!(
                "{:<6} {:<8} {}",
                rule.id,
                rule.severity.to_string(),
                rule.summary
            );
        }
        return ExitCode::SUCCESS;
    }
    if !workspace && paths.is_empty() {
        usage();
    }

    let root = root_arg
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|cwd| find_workspace_root(&cwd))
        })
        .unwrap_or_else(|| PathBuf::from("."));

    let diagnostics = if workspace {
        match lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("exchange-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut out = Vec::new();
        for path in &paths {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("exchange-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            // Scope rules by the path relative to the workspace root, so
            // linting a single file behaves identically to the walk.
            let rel = path
                .canonicalize()
                .ok()
                .and_then(|abs| abs.strip_prefix(&root).map(|r| r.to_path_buf()).ok())
                .unwrap_or_else(|| path.clone());
            out.extend(lint_source(
                &rel.to_string_lossy().replace('\\', "/"),
                &source,
            ));
        }
        out
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for diagnostic in &diagnostics {
        println!("{diagnostic}");
        match diagnostic.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
    }
    eprintln!(
        "exchange-lint: {} file scope, {errors} error(s), {warnings} warning(s)",
        if workspace { "workspace" } else { "path" }
    );
    if errors > 0 || (deny && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
