//! # exchange-lint
//!
//! A workspace-specific determinism & concurrency static-analysis pass.
//!
//! The repo's load-bearing correctness property — simulation reports
//! bit-identical across shard counts, cache granularities, and warm
//! restarts — is defended dynamically by the equivalence suites and the
//! audit harness. This crate is the *static* guardrail: it catches the
//! hazards that historically break that property (nondeterministic
//! `HashMap` iteration, wall-clock reads, stray threads, unordered float
//! reductions, panicking accessors in the event loop) at CI time, before
//! they cost a nightly-run bisect.
//!
//! crates.io is unavailable in this environment, so there is no `syn`:
//! a hand-rolled lexer ([`lexer`]) feeds token-shape rules. The rules are
//! deliberately heuristic — they trade soundness-in-general for precision
//! on *this* codebase's idioms, and every finding can be suppressed inline
//! with a mandatory reason:
//!
//! ```text
//! // exchange-lint: allow(D001, reason = "audit-only read; order never feeds sim state")
//! ```
//!
//! A suppression without a reason is itself an error (`E001`), and a
//! suppression that matches no finding is a warning (`W001`) so stale
//! allows get cleaned up. An allow comment applies to its own line and
//! the line directly below it.
//!
//! ## Rules
//!
//! | id   | severity | fires on |
//! |------|----------|----------|
//! | D001 | error | iteration over `HashMap`/`HashSet` in sim-state crates (`sim`, `des`, `core`, `credit`, `workload`) |
//! | D002 | error | `Instant::now` / `SystemTime::now` outside the bench crate |
//! | D003 | error | `thread::spawn` / `thread::scope` outside `simulation/pool.rs` and `scenario.rs` |
//! | D004 | error | float `sum`/`product` turbofish or `fold` chained onto a D001 iterator |
//! | U001 | error | `unsafe` without a `// SAFETY:` comment within 3 lines above |
//! | H001 | error | `.unwrap()`, empty `.expect("")`, or non-`as_usize()` slice indexing in the event-loop modules |
//! | E001 | error | `exchange-lint: allow(...)` without a `reason = "..."` |
//! | W001 | warning | an allow (with reason) that suppressed nothing |
//!
//! `#[cfg(test)]` modules and `#[test]` functions are skipped by every
//! rule except U001: test nondeterminism cannot feed simulation outcomes,
//! and the dynamic suites already re-check determinism end to end.
//!
//! H001 deliberately does **not** flag indexing whose index expression
//! ends in `.as_usize()`: dense per-peer / per-object vectors indexed by
//! `PeerId`/`ObjectId` are this codebase's sanctioned idiom, bounded by
//! construction (`num_peers` / catalog size) and re-checked dynamically by
//! the audit harness. Everything else must go through `get()` + `expect`
//! with an invariant message, or carry an allow.

#![forbid(unsafe_code)]

pub mod lexer;
mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

pub use rules::{lint_source, RuleInfo, RULES};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, addressed `file:line` with a rule id and human message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub severity: Severity,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.file, self.line, self.severity, self.rule, self.message
        )
    }
}

/// Walks every non-stub workspace crate plus the facade's `src/`, `tests/`
/// and `examples/`, and lints each `.rs` file.
///
/// Skipped subtrees: `target/`, `.git/`, `crates/stubs/` (offline stand-ins
/// for crates.io packages, not our code), and `crates/lint/tests/fixtures/`
/// (deliberate violations used by the self-test suite).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, root, &mut files)?;
        }
    }
    files.sort();

    let mut diagnostics = Vec::new();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        diagnostics.extend(lint_source(&rel_str, &source));
    }
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(diagnostics)
}

fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|entry| entry.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    // Deterministic walk order regardless of filesystem enumeration.
    entries.sort();
    for path in entries {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            if rel_str == "target"
                || rel_str == ".git"
                || rel_str == "crates/stubs"
                || rel_str == "crates/lint/tests/fixtures"
                || rel_str.ends_with("/target")
            {
                continue;
            }
            collect_rs_files(&path, root, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
