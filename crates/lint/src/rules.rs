//! The rule engine: per-file context (tokens, comments, test-region mask,
//! suppression directives) plus the individual rule passes.

use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::{Diagnostic, Severity};

/// Static description of one rule, for `--list-rules` and the README table.
pub struct RuleInfo {
    pub id: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
}

pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        severity: Severity::Error,
        summary: "iteration over std HashMap/HashSet in sim-state crates (sim, des, core, \
                  credit, workload): order is nondeterministic and can feed event outcomes",
    },
    RuleInfo {
        id: "D002",
        severity: Severity::Error,
        summary: "wall-clock read (Instant::now / SystemTime::now) outside the bench crate",
    },
    RuleInfo {
        id: "D003",
        severity: Severity::Error,
        summary: "thread creation (thread::spawn / thread::scope) outside simulation/pool.rs \
                  and the scenario sweep runner",
    },
    RuleInfo {
        id: "D004",
        severity: Severity::Error,
        summary: "float accumulation (sum::<f64>/product::<f64>/fold) chained onto an \
                  unordered HashMap/HashSet iterator",
    },
    RuleInfo {
        id: "U001",
        severity: Severity::Error,
        summary: "unsafe block or fn without a `// SAFETY:` comment within 3 lines above",
    },
    RuleInfo {
        id: "H001",
        severity: Severity::Error,
        summary: ".unwrap(), message-less .expect(), or non-as_usize() slice indexing inside \
                  the event-loop modules",
    },
    RuleInfo {
        id: "E001",
        severity: Severity::Error,
        summary: "exchange-lint allow(...) directive without a reason",
    },
    RuleInfo {
        id: "W001",
        severity: Severity::Warning,
        summary: "exchange-lint allow(...) directive that suppressed nothing",
    },
];

/// Crates whose state feeds simulation outcomes: D001/D004 scope.
const SIM_STATE_CRATES: &[&str] = &["sim", "des", "core", "credit", "workload"];

/// Files allowed to create threads: the sharded scheduler's persistent
/// worker pool (workers read an immutable `BatchJob` and report through a
/// deterministic single-threaded merge — see `simulation/pool.rs`) and the
/// scenario sweep runner.  `shard.rs` itself no longer spawns: the
/// per-batch `thread::scope` fan-out was replaced by the pool.
const D003_ALLOWED_FILES: &[&str] = &[
    "crates/sim/src/simulation/pool.rs",
    "crates/sim/src/scenario.rs",
];

/// The event-loop modules H001 hardens.
const H001_FILES: &[&str] = &[
    "crates/sim/src/simulation/events.rs",
    "crates/sim/src/simulation/scheduling.rs",
    "crates/sim/src/simulation/transfers.rs",
    "crates/sim/src/simulation/shard.rs",
    "crates/sim/src/simulation/pool.rs",
    "crates/sim/src/simulation/maintenance.rs",
    "crates/sim/src/simulation/population.rs",
    "crates/sim/src/simulation/snapshot.rs",
];

/// Iterator-producing methods on HashMap/HashSet whose order is
/// nondeterministic. (`retain` visits in iteration order and may drop
/// based on visit-order-dependent state; `extract_if` likewise.)
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
    "extract_if",
];

/// One parsed `allow(RULE, reason = "...")` directive.
struct Allow {
    line: u32,
    rule: String,
    has_reason: bool,
    used: bool,
}

struct FileCtx<'a> {
    rel_path: &'a str,
    crate_name: String,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
    /// Per-token: true when the token sits inside a `#[cfg(test)]` item or
    /// a `#[test]` function.
    in_test: Vec<bool>,
}

impl FileCtx<'_> {
    fn is_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    fn diag(&self, rule: &'static str, line: u32, message: String) -> Diagnostic {
        let severity = RULES
            .iter()
            .find(|r| r.id == rule)
            .map_or(Severity::Error, |r| r.severity);
        Diagnostic {
            rule,
            severity,
            file: self.rel_path.to_string(),
            line,
            message,
        }
    }
}

/// Lints one file given its workspace-relative path (used for rule scoping)
/// and source text. This is the entry point the self-test fixtures call
/// directly with synthetic paths.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let in_test = test_mask(&lexed.tokens);
    let ctx = FileCtx {
        rel_path,
        crate_name: crate_of(rel_path),
        tokens: lexed.tokens,
        comments: lexed.comments,
        in_test,
    };

    let (mut allows, mut diagnostics) = parse_allows(&ctx);

    let mut findings = Vec::new();
    findings.extend(rule_d001_d004(&ctx));
    findings.extend(rule_d002(&ctx));
    findings.extend(rule_d003(&ctx));
    findings.extend(rule_u001(&ctx));
    findings.extend(rule_h001(&ctx));

    // Apply suppressions: an allow (with reason) covers findings of its rule
    // on its own line and the line directly below.
    for finding in findings {
        let suppressed = allows.iter_mut().any(|allow| {
            let applies = allow.has_reason
                && allow.rule == finding.rule
                && (allow.line == finding.line || allow.line + 1 == finding.line);
            if applies {
                allow.used = true;
            }
            applies
        });
        if !suppressed {
            diagnostics.push(finding);
        }
    }

    // Stale allows rot into falsehoods: surface them.
    for allow in &allows {
        if allow.has_reason && !allow.used {
            diagnostics.push(ctx.diag(
                "W001",
                allow.line,
                format!(
                    "allow({}) suppresses nothing on line {} or {}; remove the stale directive",
                    allow.rule,
                    allow.line,
                    allow.line + 1
                ),
            ));
        }
    }

    diagnostics.sort_by_key(|d| (d.line, d.rule));
    diagnostics
}

/// Maps a workspace-relative path to its crate: `crates/<name>/…` → `name`,
/// everything else (facade `src/`, root `tests/`, `examples/`) →
/// `p2p-exchange`.
fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "p2p-exchange".to_string()
}

// ---- suppression directives ------------------------------------------------

/// Parses every `exchange-lint: allow(RULE[, reason = "..."])` directive in
/// the file's comments. Reason-less allows produce E001 immediately (and do
/// NOT suppress — the underlying finding surfaces alongside the E001).
fn parse_allows(ctx: &FileCtx<'_>) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diagnostics = Vec::new();
    for comment in &ctx.comments {
        // Directives live in plain `//` (or `/* */`) comments only: doc
        // comments (`///`, `//!`, `/**`, `/*!`) describe the mechanism —
        // e.g. this crate's own docs — without invoking it.
        let is_doc = comment.text.starts_with("///")
            || comment.text.starts_with("//!")
            || comment.text.starts_with("/**")
            || comment.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let body = comment.text.trim_start_matches(['/', '*']).trim_start();
        if !body.starts_with("exchange-lint:") {
            continue;
        }
        let mut rest = &body["exchange-lint:".len()..];
        let mut parsed_any = false;
        while let Some(open) = rest.find("allow(") {
            let after = &rest[open + "allow(".len()..];
            let Some(close) = find_directive_close(after) else {
                break;
            };
            let body = &after[..close];
            rest = &after[close + 1..];
            parsed_any = true;

            let (rule_part, reason_part) = match body.split_once(',') {
                Some((rule, rest)) => (rule.trim(), Some(rest.trim())),
                None => (body.trim(), None),
            };
            let has_reason = reason_part.is_some_and(|r| {
                let r = r.trim_start_matches("reason").trim_start();
                let r = r.trim_start_matches('=').trim_start();
                r.starts_with('"') && r.trim_end().len() > 2
            });
            if !has_reason {
                diagnostics.push(ctx.diag(
                    "E001",
                    comment.line,
                    format!(
                        "allow({rule_part}) must carry a reason: \
                         `exchange-lint: allow({rule_part}, reason = \"...\")`"
                    ),
                ));
            }
            allows.push(Allow {
                line: comment.line,
                rule: rule_part.to_string(),
                has_reason,
                used: false,
            });
        }
        if !parsed_any {
            diagnostics.push(
                ctx.diag(
                    "E001",
                    comment.line,
                    "malformed exchange-lint directive: expected `allow(RULE, reason = \"...\")`"
                        .to_string(),
                ),
            );
        }
    }
    (allows, diagnostics)
}

/// Finds the `)` closing an allow directive, skipping over a quoted reason
/// (which may itself contain parentheses).
fn find_directive_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b')' if !in_str => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

// ---- test-region mask ------------------------------------------------------

/// Marks tokens inside `#[cfg(test)]` items and `#[test]` functions. Walks
/// attributes; on a test attribute, skips any further attributes, then brace-
/// matches the following item body.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_end = match matching(tokens, i + 1, '[', ']') {
            Some(end) => end,
            None => break,
        };
        let inner = &tokens[i + 2..attr_end];
        let is_test_attr = (inner.len() == 1 && inner[0].is_ident("test"))
            || (inner.first().is_some_and(|t| t.is_ident("cfg"))
                && inner.iter().any(|t| t.is_ident("test")));
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip further attributes between the test attribute and the item.
        let mut j = attr_end + 1;
        while tokens.get(j).is_some_and(|t| t.is_punct('#'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching(tokens, j + 1, '[', ']') {
                Some(end) => j = end + 1,
                None => return mask,
            }
        }
        // Find the item body's opening brace (a `;` first means no body).
        while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
            j += 1;
        }
        if tokens.get(j).is_some_and(|t| t.is_punct('{')) {
            if let Some(end) = matching(tokens, j, '{', '}') {
                for slot in &mut mask[i..=end] {
                    *slot = true;
                }
                i = end + 1;
                continue;
            }
        }
        i = j + 1;
    }
    mask
}

/// Index of the token closing the group opened at `open_idx`.
fn matching(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (offset, token) in tokens[open_idx..].iter().enumerate() {
        if token.is_punct(open) {
            depth += 1;
        } else if token.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(open_idx + offset);
            }
        }
    }
    None
}

// ---- D001 + D004 -----------------------------------------------------------

/// Collects identifiers bound to `HashMap`/`HashSet` in this file: struct
/// fields, `let` bindings, fn params (`name: HashMap<..>`, `name: &mut
/// HashSet<..>`), and constructor assignments (`name = HashMap::new()`).
fn hash_bound_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if !(token.is_ident("HashMap") || token.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2
            && tokens[j - 1].is_punct(':')
            && tokens[j - 2].is_punct(':')
            && j >= 3
            && tokens[j - 3].kind == TokenKind::Ident
        {
            j -= 3;
        }
        if j == 0 {
            continue;
        }
        // Pattern A: `name : [&] ['a] [mut] HashMap` (field / param / let).
        let mut k = j - 1;
        loop {
            let t = &tokens[k];
            if t.is_punct('&') || t.is_ident("mut") || t.kind == TokenKind::Lifetime {
                if k == 0 {
                    break;
                }
                k -= 1;
            } else {
                break;
            }
        }
        if tokens[k].is_punct(':')
            && k >= 1
            && tokens[k - 1].kind == TokenKind::Ident
            && !(k >= 2 && tokens[k - 2].is_punct(':'))
        {
            names.push(tokens[k - 1].text.clone());
            continue;
        }
        // Pattern B: `name = HashMap :: new / with_capacity / from / default`.
        let is_ctor = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| {
                t.is_ident("new")
                    || t.is_ident("with_capacity")
                    || t.is_ident("with_capacity_and_hasher")
                    || t.is_ident("from")
                    || t.is_ident("default")
            });
        if is_ctor
            && tokens[j - 1].is_punct('=')
            && j >= 2
            && tokens[j - 2].kind == TokenKind::Ident
        {
            names.push(tokens[j - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

fn rule_d001_d004(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !SIM_STATE_CRATES.contains(&ctx.crate_name.as_str()) {
        return Vec::new();
    }
    let names = hash_bound_names(&ctx.tokens);
    if names.is_empty() {
        return Vec::new();
    }
    let is_hash_name = |t: &Token| t.kind == TokenKind::Ident && names.contains(&t.text);

    let mut out = Vec::new();
    let tokens = &ctx.tokens;
    for i in 0..tokens.len() {
        if ctx.is_test(i) {
            continue;
        }
        // Method form: `name . iter (` and friends.
        if is_hash_name(&tokens[i])
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && tokens
                .get(i + 2)
                .is_some_and(|t| ITER_METHODS.iter().any(|m| t.is_ident(m)))
        {
            // `(` directly after, or after a `::<…>` turbofish.
            let after = i + 3;
            let call_ok = tokens.get(after).is_some_and(|t| t.is_punct('('))
                || (tokens.get(after).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(after + 1).is_some_and(|t| t.is_punct(':')));
            if call_ok {
                let method = &tokens[i + 2];
                out.push(ctx.diag(
                    "D001",
                    method.line,
                    format!(
                        "`{}.{}()` iterates a std HashMap/HashSet in a sim-state crate; \
                         iteration order is nondeterministic and can feed event outcomes — \
                         iterate in sorted order (collect + sort, or BTreeMap/BTreeSet) or \
                         suppress with a reason",
                        tokens[i].text, method.text
                    ),
                ));
                // D004: float reduction chained onto this iterator.
                out.extend(d004_chain(ctx, i + 3));
            }
        }
        // For-loop form: `for pat in [&][mut] name {`.
        if tokens[i].is_ident("for") {
            if let Some(diag) = d001_for_loop(ctx, i, &is_hash_name) {
                out.push(diag);
            }
        }
    }
    out
}

/// Checks a `for` loop whose iterated expression is a bare (possibly
/// borrowed, possibly `self.`-prefixed) hash-bound name.
fn d001_for_loop(
    ctx: &FileCtx<'_>,
    for_idx: usize,
    is_hash_name: &dyn Fn(&Token) -> bool,
) -> Option<Diagnostic> {
    let tokens = &ctx.tokens;
    // Find `in` at bracket depth 0 (the pattern may contain tuples).
    let mut depth = 0i32;
    let mut in_idx = None;
    for (offset, token) in tokens[for_idx + 1..].iter().take(40).enumerate() {
        if token.is_punct('(') || token.is_punct('[') {
            depth += 1;
        } else if token.is_punct(')') || token.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && token.is_ident("in") {
            in_idx = Some(for_idx + 1 + offset);
            break;
        }
    }
    let in_idx = in_idx?;
    // Expression tokens up to the body `{` at depth 0.
    let mut expr = Vec::new();
    let mut depth = 0i32;
    for token in &tokens[in_idx + 1..] {
        if depth == 0 && token.is_punct('{') {
            break;
        }
        if token.is_punct('(') || token.is_punct('[') {
            depth += 1;
        } else if token.is_punct(')') || token.is_punct(']') {
            depth -= 1;
        }
        expr.push(token);
        if expr.len() > 30 {
            return None;
        }
    }
    // A call in the expression means any hash iteration in it was already
    // caught by the method form — don't double-report.
    if expr.iter().any(|t| t.is_punct('(')) {
        return None;
    }
    let name = expr.iter().find(|t| is_hash_name(t))?;
    Some(ctx.diag(
        "D001",
        tokens[for_idx].line,
        format!(
            "`for … in {}` iterates a std HashMap/HashSet in a sim-state crate; \
             iteration order is nondeterministic and can feed event outcomes — \
             iterate in sorted order (collect + sort, or BTreeMap/BTreeSet) or \
             suppress with a reason",
            name.text
        ),
    ))
}

/// D004: scans the adapter chain after a D001 iterator call for a float
/// `sum`/`product` turbofish or any `fold`, up to the end of the statement.
fn d004_chain(ctx: &FileCtx<'_>, start: usize) -> Option<Diagnostic> {
    let tokens = &ctx.tokens;
    let mut brace = 0i32;
    for (offset, token) in tokens[start..].iter().take(200).enumerate() {
        let i = start + offset;
        if token.is_punct('{') {
            brace += 1;
        } else if token.is_punct('}') {
            brace -= 1;
            if brace < 0 {
                return None;
            }
        } else if token.is_punct(';') && brace == 0 {
            return None;
        }
        if !tokens
            .get(i.wrapping_sub(1))
            .is_some_and(|t| t.is_punct('.'))
        {
            continue;
        }
        if token.is_ident("fold") {
            return Some(
                ctx.diag(
                    "D004",
                    token.line,
                    "`fold` over an unordered HashMap/HashSet iterator: float accumulation \
                 order changes the result bits — iterate in sorted order or suppress \
                 with a reason"
                        .to_string(),
                ),
            );
        }
        if (token.is_ident("sum") || token.is_ident("product"))
            && tokens[i + 1..]
                .iter()
                .take(6)
                .any(|t| t.is_ident("f64") || t.is_ident("f32"))
        {
            return Some(ctx.diag(
                "D004",
                token.line,
                format!(
                    "float `{}` over an unordered HashMap/HashSet iterator: accumulation \
                     order changes the result bits — iterate in sorted order or suppress \
                     with a reason",
                    token.text
                ),
            ));
        }
    }
    None
}

// ---- D002 ------------------------------------------------------------------

fn rule_d002(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if ctx.crate_name == "bench" || ctx.crate_name == "lint" {
        // The bench harness measures wall time by definition; the lint's own
        // sources are not simulation code.
        return Vec::new();
    }
    let tokens = &ctx.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if ctx.is_test(i) {
            continue;
        }
        let clock = if tokens[i].is_ident("Instant") {
            "Instant"
        } else if tokens[i].is_ident("SystemTime") {
            "SystemTime"
        } else {
            continue;
        };
        if tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(ctx.diag(
                "D002",
                tokens[i + 3].line,
                format!(
                    "`{clock}::now()` reads the wall clock outside the bench crate; \
                     simulated time must come from the DES clock — if this only feeds \
                     profiling output, suppress with a reason"
                ),
            ));
        }
    }
    out
}

// ---- D003 ------------------------------------------------------------------

fn rule_d003(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if D003_ALLOWED_FILES.contains(&ctx.rel_path) {
        return Vec::new();
    }
    let tokens = &ctx.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if ctx.is_test(i) {
            continue;
        }
        if tokens[i].is_ident("thread")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens
                .get(i + 3)
                .is_some_and(|t| t.is_ident("spawn") || t.is_ident("scope"))
        {
            out.push(ctx.diag(
                "D003",
                tokens[i + 3].line,
                format!(
                    "`thread::{}` outside simulation/pool.rs and the scenario sweep \
                     runner: concurrency must stay behind the deterministic-merge \
                     boundary — move the parallelism there or suppress with a reason",
                    tokens[i + 3].text
                ),
            ));
        }
    }
    out
}

// ---- U001 ------------------------------------------------------------------

fn rule_u001(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let tokens = &ctx.tokens;
    let mut out = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if !token.is_ident("unsafe") {
            continue;
        }
        // `forbid(unsafe_code)` / `deny(unsafe_code)` attribute text never
        // lexes as the bare ident `unsafe`, so every hit is real code.
        let line = token.line;
        let documented = ctx.comments.iter().any(|c| {
            // Only plain comments count: a doc comment *mentioning* SAFETY
            // (like this crate's own docs) is not a safety argument.
            let is_doc = c.text.starts_with("///")
                || c.text.starts_with("//!")
                || c.text.starts_with("/**")
                || c.text.starts_with("/*!");
            let end = c.line + c.text.bytes().filter(|b| *b == b'\n').count() as u32;
            !is_doc && c.text.contains("SAFETY:") && end + 3 >= line && c.line <= line
        });
        if !documented {
            out.push(
                ctx.diag(
                    "U001",
                    line,
                    "`unsafe` without a `// SAFETY:` comment within the 3 lines above: \
                 document the invariant that makes this sound"
                        .to_string(),
                ),
            );
        }
        let _ = i;
    }
    out
}

// ---- H001 ------------------------------------------------------------------

fn rule_h001(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !H001_FILES.contains(&ctx.rel_path) {
        return Vec::new();
    }
    let tokens = &ctx.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if ctx.is_test(i) {
            continue;
        }
        let token = &tokens[i];
        // `.unwrap()`
        if token.is_ident("unwrap")
            && i >= 1
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push(
                ctx.diag(
                    "H001",
                    token.line,
                    "`.unwrap()` in an event-loop module: replace with `.expect(\"<invariant>\")` \
                 naming the invariant that guarantees the value, or suppress with a reason"
                        .to_string(),
                ),
            );
        }
        // `.expect("")` / `.expect()` with an empty literal message.
        if token.is_ident("expect")
            && i >= 1
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            let arg = tokens.get(i + 2);
            let empty_literal = arg
                .is_some_and(|t| t.kind == TokenKind::Str && t.text.trim_matches('"').is_empty());
            let no_arg = arg.is_some_and(|t| t.is_punct(')'));
            if empty_literal || no_arg {
                out.push(
                    ctx.diag(
                        "H001",
                        token.line,
                        "`.expect` without an invariant message in an event-loop module: say \
                     *why* the value must exist"
                            .to_string(),
                    ),
                );
            }
        }
        // Slice indexing: `expr [ index ]` where expr ends in an identifier,
        // `]`, or `)` — excluding attributes (`#[`), macros (`vec![`), and
        // the sanctioned dense-ID idiom `xs[id.as_usize()]`.
        if token.is_punct('[') && i >= 1 {
            let prev = &tokens[i - 1];
            let indexable = prev.kind == TokenKind::Ident && !is_keyword(&prev.text)
                || prev.is_punct(']')
                || prev.is_punct(')');
            if !indexable {
                continue;
            }
            let Some(close) = matching(tokens, i, '[', ']') else {
                continue;
            };
            let index_expr = &tokens[i + 1..close];
            if index_expr.is_empty() {
                continue;
            }
            // `xs[id.as_usize()]`: bounded by construction (dense per-peer /
            // per-object vectors sized to the population).
            let dense_id_idiom = index_expr.len() >= 4
                && index_expr[index_expr.len() - 1].is_punct(')')
                && index_expr[index_expr.len() - 2].is_punct('(')
                && index_expr[index_expr.len() - 3].is_ident("as_usize")
                && index_expr[index_expr.len() - 4].is_punct('.');
            // A bare `..` full-range slice cannot panic.
            let full_range =
                index_expr.len() == 2 && index_expr[0].is_punct('.') && index_expr[1].is_punct('.');
            if !dense_id_idiom && !full_range {
                out.push(ctx.diag(
                    "H001",
                    token.line,
                    format!(
                        "`{}[…]` indexing in an event-loop module can panic: use \
                         `.get(..)` + `.expect(\"<invariant>\")`, index through the \
                         dense-ID `as_usize()` idiom, or suppress with a reason",
                        prev.text
                    ),
                ));
            }
        }
    }
    out
}

/// Keywords that can directly precede `[` without being an indexed value.
fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "return" | "break" | "in" | "if" | "else" | "match" | "as" | "mut" | "ref" | "move"
    )
}
