//! Transfer-slot bookkeeping.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Error returned when trying to reserve a slot from an exhausted pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotGuardError {
    capacity: usize,
}

impl fmt::Display for SlotGuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "all {} transfer slots are in use", self.capacity)
    }
}

impl std::error::Error for SlotGuardError {}

/// A pool of identical transfer slots (upload or download side of a link).
///
/// # Example
///
/// ```
/// use netsim::SlotPool;
///
/// let mut pool = SlotPool::new(2);
/// pool.reserve().unwrap();
/// pool.reserve().unwrap();
/// assert!(pool.is_full());
/// assert!(pool.reserve().is_err());
/// pool.release();
/// assert_eq!(pool.available(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotPool {
    capacity: usize,
    in_use: usize,
}

impl SlotPool {
    /// Creates a pool with `capacity` slots, all free.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SlotPool {
            capacity,
            in_use: 0,
        }
    }

    /// Total number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of slots currently in use.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Number of free slots.
    #[must_use]
    pub fn available(&self) -> usize {
        self.capacity - self.in_use
    }

    /// Whether no slot is free.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.in_use >= self.capacity
    }

    /// Whether at least one slot is free.
    #[must_use]
    pub fn has_free(&self) -> bool {
        !self.is_full()
    }

    /// Utilisation in `[0, 1]` (0.0 for a zero-capacity pool).
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.in_use as f64 / self.capacity as f64
        }
    }

    /// Reserves one slot.
    ///
    /// # Errors
    ///
    /// Returns [`SlotGuardError`] if every slot is already in use.
    pub fn reserve(&mut self) -> Result<(), SlotGuardError> {
        if self.is_full() {
            return Err(SlotGuardError {
                capacity: self.capacity,
            });
        }
        self.in_use += 1;
        Ok(())
    }

    /// Releases one previously reserved slot.
    ///
    /// # Panics
    ///
    /// Panics if no slot is currently reserved — releasing an unreserved slot
    /// indicates corrupted accounting in the caller.
    pub fn release(&mut self) {
        assert!(self.in_use > 0, "released a slot that was never reserved");
        self.in_use -= 1;
    }

    /// Resizes the pool, e.g. when sweeping upload capacity between runs.
    ///
    /// # Panics
    ///
    /// Panics if more slots are in use than the new capacity allows: shrinking
    /// below current usage would corrupt accounting.
    pub fn resize(&mut self, capacity: usize) {
        assert!(
            self.in_use <= capacity,
            "cannot shrink pool below in-use count ({} > {capacity})",
            self.in_use
        );
        self.capacity = capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_round_trip() {
        let mut p = SlotPool::new(3);
        assert_eq!(p.available(), 3);
        p.reserve().unwrap();
        p.reserve().unwrap();
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.available(), 1);
        p.release();
        assert_eq!(p.in_use(), 1);
        assert!(p.has_free());
    }

    #[test]
    fn exhausted_pool_rejects_reservation() {
        let mut p = SlotPool::new(1);
        p.reserve().unwrap();
        let err = p.reserve().unwrap_err();
        assert!(err.to_string().contains("1 transfer slots"));
    }

    #[test]
    fn zero_capacity_pool_is_always_full() {
        let mut p = SlotPool::new(0);
        assert!(p.is_full());
        assert!(p.reserve().is_err());
        assert_eq!(p.utilisation(), 0.0);
    }

    #[test]
    fn utilisation_fraction() {
        let mut p = SlotPool::new(4);
        p.reserve().unwrap();
        assert_eq!(p.utilisation(), 0.25);
    }

    #[test]
    #[should_panic(expected = "never reserved")]
    fn releasing_unreserved_slot_panics() {
        SlotPool::new(2).release();
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let mut p = SlotPool::new(2);
        p.reserve().unwrap();
        p.resize(8);
        assert_eq!(p.available(), 7);
        p.resize(1);
        assert!(p.is_full());
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn resize_below_in_use_panics() {
        let mut p = SlotPool::new(4);
        p.reserve().unwrap();
        p.reserve().unwrap();
        p.resize(1);
    }
}
