//! Per-peer access-link parameters.

use serde::{Deserialize, Serialize};

/// Fixed, asymmetric access-link capacity of one peer.
///
/// All rates are in kilobits per second, as in the paper's Table II.  The
/// link is divided into fixed-size transfer slots; a transfer always runs at
/// exactly one slot's rate.
///
/// # Example
///
/// ```
/// use netsim::LinkConfig;
///
/// let link = LinkConfig::paper_defaults();
/// assert_eq!(link.upload_slots(), 8);
/// assert_eq!(link.download_slots(), 80);
/// assert_eq!(link.slot_bytes_per_sec(), 1_250.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Download capacity in kbit/s.
    pub download_kbps: f64,
    /// Upload capacity in kbit/s.
    pub upload_kbps: f64,
    /// Capacity of one transfer slot in kbit/s.
    pub slot_kbps: f64,
}

impl LinkConfig {
    /// The link parameters of Table II (800 kbit/s down, 80 kbit/s up,
    /// 10 kbit/s slots).
    #[must_use]
    pub fn paper_defaults() -> Self {
        LinkConfig {
            download_kbps: 800.0,
            upload_kbps: 80.0,
            slot_kbps: 10.0,
        }
    }

    /// A copy of this configuration with a different upload capacity,
    /// used by the Figure 4/5 capacity sweeps.
    #[must_use]
    pub fn with_upload_kbps(mut self, upload_kbps: f64) -> Self {
        self.upload_kbps = upload_kbps;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("download_kbps", self.download_kbps),
            ("upload_kbps", self.upload_kbps),
            ("slot_kbps", self.slot_kbps),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be finite and positive, got {v}"));
            }
        }
        if self.slot_kbps > self.upload_kbps {
            return Err(format!(
                "slot capacity {} kbit/s exceeds upload capacity {} kbit/s",
                self.slot_kbps, self.upload_kbps
            ));
        }
        Ok(())
    }

    /// Number of concurrent upload slots this link supports.
    #[must_use]
    pub fn upload_slots(&self) -> usize {
        (self.upload_kbps / self.slot_kbps).floor() as usize
    }

    /// Number of concurrent download slots this link supports.
    #[must_use]
    pub fn download_slots(&self) -> usize {
        (self.download_kbps / self.slot_kbps).floor() as usize
    }

    /// The byte rate of one transfer slot (bytes per second).
    #[must_use]
    pub fn slot_bytes_per_sec(&self) -> f64 {
        self.slot_kbps * 1000.0 / 8.0
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_ii() {
        let link = LinkConfig::paper_defaults();
        assert_eq!(link.download_kbps, 800.0);
        assert_eq!(link.upload_kbps, 80.0);
        assert_eq!(link.slot_kbps, 10.0);
        assert!(link.validate().is_ok());
    }

    #[test]
    fn slot_counts_floor_partial_slots() {
        let link = LinkConfig {
            download_kbps: 95.0,
            upload_kbps: 45.0,
            slot_kbps: 10.0,
        };
        assert_eq!(link.download_slots(), 9);
        assert_eq!(link.upload_slots(), 4);
    }

    #[test]
    fn with_upload_kbps_overrides_only_upload() {
        let link = LinkConfig::paper_defaults().with_upload_kbps(40.0);
        assert_eq!(link.upload_kbps, 40.0);
        assert_eq!(link.download_kbps, 800.0);
        assert_eq!(link.upload_slots(), 4);
    }

    #[test]
    fn byte_rate_conversion() {
        let link = LinkConfig::paper_defaults();
        // 10 kbit/s = 10_000 bits/s = 1_250 bytes/s
        assert_eq!(link.slot_bytes_per_sec(), 1_250.0);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut link = LinkConfig::paper_defaults();
        link.upload_kbps = 0.0;
        assert!(link.validate().is_err());

        let mut link = LinkConfig::paper_defaults();
        link.slot_kbps = 200.0;
        assert!(link.validate().is_err());

        let mut link = LinkConfig::paper_defaults();
        link.download_kbps = f64::NAN;
        assert!(link.validate().is_err());
    }
}
