//! Access-link capacity and block-level transfer model.
//!
//! The paper's transfer model (Section III) is deliberately simple:
//!
//! * every peer has a fixed, asymmetric access link (e.g. 800 kbit/s down,
//!   80 kbit/s up) and the core network is overprovisioned, so the only
//!   bottleneck is the access link;
//! * the upload link is divided into fixed-size *slots* (10 kbit/s each) and
//!   every transfer occupies exactly one upload slot at the source and one
//!   download slot at the sink;
//! * data moves in relatively large, equal, fixed-size *blocks*; exchanges
//!   proceed one block at a time.
//!
//! This crate provides the corresponding building blocks:
//!
//! * [`LinkConfig`] — per-peer link parameters and derived slot counts/rates.
//! * [`SlotPool`] — bookkeeping of upload or download slots.
//! * [`TransferSession`] — progress tracking of one block-by-block transfer.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod link;
mod session;
mod slots;

pub use link::LinkConfig;
pub use session::TransferSession;
pub use slots::{SlotGuardError, SlotPool};
