//! Progress tracking of one block-by-block transfer session.

use des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One transfer session between an uploader and a downloader.
///
/// A session runs at a fixed rate (one slot's capacity) and moves data one
/// fixed-size block at a time; the simulator schedules a completion event per
/// block.  The session records how many bytes it has carried and when it
/// started, which is exactly what the paper's per-session metrics (Figures 7
/// and 8) need.
///
/// # Example
///
/// ```
/// use des::SimTime;
/// use netsim::TransferSession;
///
/// let mut s = TransferSession::new(1_250.0, 16_384, SimTime::ZERO);
/// let next = s.next_block_bytes(100_000);
/// assert_eq!(next, 16_384);
/// assert!((s.block_duration(next).as_secs_f64() - 13.1072).abs() < 1e-9);
/// s.record_block(next);
/// assert_eq!(s.bytes_transferred(), 16_384);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferSession {
    rate_bytes_per_sec: f64,
    block_bytes: u64,
    bytes_transferred: u64,
    started_at: SimTime,
}

impl TransferSession {
    /// Creates a session transferring at `rate_bytes_per_sec`, moving
    /// `block_bytes` per block, started at `started_at`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive/finite or the block size is zero.
    #[must_use]
    pub fn new(rate_bytes_per_sec: f64, block_bytes: u64, started_at: SimTime) -> Self {
        assert!(
            rate_bytes_per_sec.is_finite() && rate_bytes_per_sec > 0.0,
            "transfer rate must be positive, got {rate_bytes_per_sec}"
        );
        assert!(block_bytes > 0, "block size must be positive");
        TransferSession {
            rate_bytes_per_sec,
            block_bytes,
            bytes_transferred: 0,
            started_at,
        }
    }

    /// The session's fixed transfer rate in bytes per second.
    #[must_use]
    pub fn rate_bytes_per_sec(&self) -> f64 {
        self.rate_bytes_per_sec
    }

    /// The configured block size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// When the session started.
    #[must_use]
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }

    /// Total bytes carried so far.
    #[must_use]
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Size of the next block given that the downloader still needs
    /// `remaining_bytes`: a full block, or less for the final partial block.
    #[must_use]
    pub fn next_block_bytes(&self, remaining_bytes: u64) -> u64 {
        self.block_bytes.min(remaining_bytes).max(1)
    }

    /// Time needed to move a block of `bytes` at this session's rate.
    #[must_use]
    pub fn block_duration(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.rate_bytes_per_sec)
    }

    /// Records the completion of a block of `bytes`.
    pub fn record_block(&mut self, bytes: u64) {
        self.bytes_transferred += bytes;
    }

    /// How long the session has been running at `now`.
    #[must_use]
    pub fn age(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.started_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_duration_matches_rate() {
        let s = TransferSession::new(1_000.0, 10_000, SimTime::ZERO);
        assert_eq!(s.block_duration(10_000), SimDuration::from_secs(10));
        assert_eq!(s.block_duration(500).as_secs_f64(), 0.5);
    }

    #[test]
    fn partial_final_block() {
        let s = TransferSession::new(1_000.0, 4_096, SimTime::ZERO);
        assert_eq!(s.next_block_bytes(10_000), 4_096);
        assert_eq!(s.next_block_bytes(1_000), 1_000);
        assert_eq!(
            s.next_block_bytes(0),
            1,
            "degenerate remaining clamps to 1 byte"
        );
    }

    #[test]
    fn records_accumulate() {
        let mut s = TransferSession::new(1_000.0, 4_096, SimTime::ZERO);
        s.record_block(4_096);
        s.record_block(100);
        assert_eq!(s.bytes_transferred(), 4_196);
    }

    #[test]
    fn age_is_measured_from_start() {
        let start = SimTime::from_secs_f64(100.0);
        let s = TransferSession::new(1_000.0, 4_096, start);
        assert_eq!(
            s.age(SimTime::from_secs_f64(160.0)),
            SimDuration::from_secs(60)
        );
        assert_eq!(s.age(SimTime::from_secs_f64(50.0)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = TransferSession::new(0.0, 1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_panics() {
        let _ = TransferSession::new(1.0, 0, SimTime::ZERO);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn block_never_exceeds_remaining_or_block_size(
                rate in 1.0f64..1e6,
                block in 1u64..1_000_000,
                remaining in 1u64..100_000_000,
            ) {
                let s = TransferSession::new(rate, block, SimTime::ZERO);
                let next = s.next_block_bytes(remaining);
                prop_assert!(next <= block);
                prop_assert!(next <= remaining);
                prop_assert!(next >= 1);
            }

            #[test]
            fn duration_scales_linearly_with_bytes(rate in 1.0f64..1e6, bytes in 1u64..1_000_000) {
                let s = TransferSession::new(rate, 1_000, SimTime::ZERO);
                let one = s.block_duration(bytes).as_secs_f64();
                let two = s.block_duration(bytes * 2).as_secs_f64();
                prop_assert!((two - 2.0 * one).abs() < 1e-3);
            }
        }
    }
}
