//! Time-travel debugging of audit failures (ISSUE 9; feature `audit`).
//!
//! A deliberate invariant violation is injected behind the test-only
//! [`Simulation::inject_audit_fault_at`] hook.  `run_audited` must dump the
//! checkpoint taken just before the failing event and name it in the panic;
//! restoring that dump and re-arming the same fault must reproduce the
//! identical audit failure at the identical event — the whole point of the
//! dump is replaying a nightly's crash in isolation.
#![cfg(feature = "audit")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use sim::{SimConfig, Simulation};

/// The event index the fault trips at: late enough that real state (rings,
/// transfers, cache entries) exists, comfortably inside the ~280 events the
/// pinned config delivers.
const FAULT_AT: u64 = 150;

fn config() -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = 12;
    config.sim_duration_s = 900.0;
    config
}

/// Runs an audited simulation to its injected failure and returns the
/// panic message.
fn audited_failure(mut simulation: Simulation, dump: &std::path::Path) -> String {
    simulation.inject_audit_fault_at(FAULT_AT);
    simulation.audit_checkpoint_path(dump);
    let panic = catch_unwind(AssertUnwindSafe(move || {
        let _ = simulation.run_audited();
    }))
    .expect_err("the injected fault must trip the audit");
    panic
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| panic!("audit panic payload is not a String"))
}

/// The part of the message identifying the failure — event, time and
/// invariant — without the dump-path suffix (each run dumps elsewhere).
fn failure_identity(message: &str) -> &str {
    message
        .split("; pre-failure checkpoint written to")
        .next()
        .expect("split always yields a first element")
}

#[test]
fn audit_failures_dump_a_replayable_checkpoint() {
    let dir = std::env::temp_dir().join(format!("xchg-time-travel-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dump dir");
    let first_dump = dir.join("first.ckpt");
    let replay_dump = dir.join("replay.ckpt");

    // Original failing run: panic names the dump, and the dump exists.
    let message = audited_failure(Simulation::new(config(), 5), &first_dump);
    assert!(
        message.contains("invariant violated after"),
        "unexpected audit panic: {message}"
    );
    assert!(
        message.contains(&format!(
            "pre-failure checkpoint written to {}",
            first_dump.display()
        )),
        "panic must name the dump: {message}"
    );
    let bytes = std::fs::read(&first_dump).expect("pre-failure checkpoint written");

    // Time travel: restore the dump, re-arm the same fault, and the very
    // same failure reproduces at the very same event.
    let restored =
        Simulation::restore(&mut &bytes[..], &config()).expect("pre-failure checkpoints restore");
    let replayed = audited_failure(restored, &replay_dump);
    assert_eq!(
        failure_identity(&message),
        failure_identity(&replayed),
        "replay must fail at the same event with the same invariant"
    );

    // The replay's own pre-failure dump equals the original: the failing
    // event was the first thing the restored run processed.
    let replay_bytes = std::fs::read(&replay_dump).expect("replay dumps too");
    assert_eq!(bytes, replay_bytes, "replay dump must be byte-identical");

    std::fs::remove_dir_all(&dir).expect("temp dump dir cleanup");
}

#[test]
fn clean_audited_runs_match_unaudited_runs() {
    let straight = Simulation::new(config(), 6).run();
    let audited = Simulation::new(config(), 6).run_audited();
    assert_eq!(straight, audited);
}
