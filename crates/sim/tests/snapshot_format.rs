//! Snapshot wire-format hardening (ISSUE 9).
//!
//! A checked-in golden snapshot pins the version-1 byte layout: any change
//! to the format — section order, integer widths, new state — fails
//! `golden_snapshot_bytes_are_stable` until the author consciously bumps
//! `SNAPSHOT_VERSION` and regenerates the fixture with
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p sim --test snapshot_format
//! ```
//!
//! The remaining tests pin the error contract: truncated bytes, wrong
//! magic, and future format versions must return [`SnapshotError`]s, never
//! panic, and the golden fixture must restore into a simulation that
//! finishes with the exact same report as a fresh run.

use std::path::PathBuf;

use sim::{SimConfig, SimTime, Simulation, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};

/// The fixed scenario the golden fixture freezes.  Every knob is pinned
/// explicitly so drifting `quick_test` defaults do not silently change the
/// fixture's meaning.
fn golden_config() -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = 12;
    config.sim_duration_s = 600.0;
    config.warmup_s = 150.0;
    config.shards = 1;
    config
}

const GOLDEN_SEED: u64 = 42;
const GOLDEN_CHECKPOINT_S: f64 = 240.0;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/quick_test_v1.snap")
}

/// The fixture's bytes, regenerated in-process.
fn golden_bytes() -> Vec<u8> {
    let mut simulation = Simulation::new(golden_config(), GOLDEN_SEED);
    simulation.run_until(SimTime::from_secs_f64(GOLDEN_CHECKPOINT_S));
    let mut bytes = Vec::new();
    simulation
        .checkpoint(&mut bytes)
        .expect("serializing into a Vec cannot fail");
    bytes
}

#[test]
fn golden_snapshot_bytes_are_stable() {
    let fresh = golden_bytes();
    let path = golden_path();
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, &fresh).expect("write golden fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let checked_in = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden fixture {} ({e}); regenerate with UPDATE_SNAPSHOTS=1",
            path.display()
        )
    });
    assert_eq!(
        checked_in.len(),
        fresh.len(),
        "snapshot byte length changed — bump SNAPSHOT_VERSION and regenerate \
         the fixture with UPDATE_SNAPSHOTS=1"
    );
    assert!(
        checked_in == fresh,
        "snapshot byte layout changed — bump SNAPSHOT_VERSION and regenerate \
         the fixture with UPDATE_SNAPSHOTS=1"
    );
}

#[test]
fn golden_snapshot_restores_and_finishes_identically() {
    let config = golden_config();
    let straight = Simulation::new(config.clone(), GOLDEN_SEED).run();
    let bytes = std::fs::read(golden_path()).expect("golden fixture is checked in");
    let resumed = Simulation::restore(&mut &bytes[..], &config)
        .expect("golden fixture restores")
        .run();
    assert_eq!(straight.ring_cache_stats(), resumed.ring_cache_stats());
    assert_eq!(straight, resumed);
}

#[test]
fn restore_then_checkpoint_is_byte_identical() {
    let config = golden_config();
    let bytes = golden_bytes();
    let restored = Simulation::restore(&mut &bytes[..], &config).expect("snapshot restores");
    let mut again = Vec::new();
    restored
        .checkpoint(&mut again)
        .expect("serializing into a Vec cannot fail");
    assert!(bytes == again, "restore → checkpoint must round-trip bytes");
}

#[test]
fn truncated_snapshots_error_gracefully() {
    let config = golden_config();
    let bytes = golden_bytes();
    // Every prefix length that cuts a header or section boundary class.
    for cut in [0, 1, 7, 8, 11, 12, 19, 20, bytes.len() / 2, bytes.len() - 1] {
        let err = Simulation::restore(&mut &bytes[..cut], &config)
            .err()
            .unwrap_or_else(|| panic!("prefix of {cut} bytes must not restore"));
        // Any SnapshotError is acceptable; panicking is not.
        let _ = err.to_string();
    }
}

#[test]
fn wrong_magic_errors_gracefully() {
    let config = golden_config();
    let mut bytes = golden_bytes();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        Simulation::restore(&mut &bytes[..], &config),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn future_versions_error_gracefully() {
    let config = golden_config();
    let mut bytes = golden_bytes();
    let future = (SNAPSHOT_VERSION + 1).to_le_bytes();
    bytes[SNAPSHOT_MAGIC.len()..SNAPSHOT_MAGIC.len() + 4].copy_from_slice(&future);
    match Simulation::restore(&mut &bytes[..], &config) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}
