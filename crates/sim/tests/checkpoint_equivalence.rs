//! Resume-equivalence properties for `sim::snapshot` (ISSUE 9).
//!
//! The contract under test: checkpointing a run at time `T/2`, restoring the
//! snapshot, and running to the horizon produces a [`SimReport`] **bit
//! identical** (via `PartialEq`, which compares every `f64` exactly) to the
//! uninterrupted run — including [`sim::RingCacheStats`] — across random
//! schedulers × protections × behavior mixes × churn × shards {1, 4, 8}.
//! A second property chains a checkpoint/restore round trip at *every event
//! boundary* of a small scenario and still demands the identical report.

use proptest::prelude::*;
use sim::{
    BehaviorKind, BehaviorMix, ChurnConfig, ExchangeDiscipline, Protection, SchedulerKind,
    SimConfig, SimReport, SimTime, Simulation,
};

/// One sampled run shape: indexes into the fixed option sets plus the
/// numeric knobs, kept small enough that 64 cases × 2 runs stay fast.
#[derive(Debug, Clone, Copy)]
struct RunShape {
    peers: usize,
    duration_s: f64,
    scheduler: usize,
    protection: usize,
    mix: usize,
    churn: bool,
    shards: usize,
    seed: u64,
}

fn shape_strategy() -> impl Strategy<Value = RunShape> {
    (
        (
            10usize..28,     // peers
            300.0f64..700.0, // duration_s
            0usize..64,      // scheduler index (wrapped onto the option set)
        ),
        (
            0usize..64, // protection index (wrapped onto the option set)
            0usize..4,  // behavior mix
            proptest::bool::ANY,
        ),
        (
            0usize..3, // shards selector -> {1, 4, 8}
            0u64..1_000,
        ),
    )
        .prop_map(
            |((peers, duration_s, scheduler), (protection, mix, churn), (shards, seed))| RunShape {
                peers,
                duration_s,
                scheduler,
                protection,
                mix,
                churn,
                shards: [1, 4, 8][shards],
                seed,
            },
        )
}

fn config_for(shape: RunShape) -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = shape.peers;
    config.sim_duration_s = shape.duration_s;
    config.warmup_s = shape.duration_s / 4.0;
    let schedulers = SchedulerKind::all();
    config.scheduler = schedulers[shape.scheduler % schedulers.len()];
    let protections = Protection::all_basic();
    config.protection = protections[shape.protection % protections.len()];
    config.behaviors = match shape.mix {
        0 => BehaviorMix::honest(),
        1 => BehaviorMix::with_freeriders(0.3),
        2 => BehaviorMix::weighted([
            (BehaviorKind::Honest, 0.7),
            (BehaviorKind::JunkSender, 0.15),
            (BehaviorKind::ParticipationCheater, 0.15),
        ]),
        _ => BehaviorMix::weighted([
            (BehaviorKind::Honest, 0.6),
            (BehaviorKind::FreeRider, 0.2),
            (BehaviorKind::Middleman, 0.2),
        ]),
    };
    config.churn = shape.churn.then(|| ChurnConfig {
        mean_session_s: shape.duration_s / 2.0,
        mean_downtime_s: shape.duration_s / 8.0,
    });
    config.shards = shape.shards;
    config.validate().expect("sampled config is valid");
    config
}

/// Checkpoints `sim` into bytes and restores a fresh simulation from them.
fn round_trip(sim: &Simulation, config: &SimConfig) -> Simulation {
    let mut bytes = Vec::new();
    sim.checkpoint(&mut bytes)
        .expect("serializing into a Vec cannot fail");
    Simulation::restore(&mut &bytes[..], config).expect("a fresh checkpoint restores")
}

/// The uninterrupted report and the checkpoint-at-T/2-resume report.
fn straight_and_resumed(config: &SimConfig, seed: u64) -> (SimReport, SimReport) {
    let straight = Simulation::new(config.clone(), seed).run();
    let mut live = Simulation::new(config.clone(), seed);
    live.run_until(SimTime::from_secs_f64(config.sim_duration_s / 2.0));
    let resumed = round_trip(&live, config).run();
    (straight, resumed)
}

proptest! {
    #[test]
    fn resume_at_half_horizon_is_bit_identical(shape in shape_strategy()) {
        let config = config_for(shape);
        let (straight, resumed) = straight_and_resumed(&config, shape.seed);
        prop_assert!(
            straight.ring_cache_stats() == resumed.ring_cache_stats(),
            "ring-cache stats diverged for {shape:?}"
        );
        prop_assert!(straight == resumed, "reports diverged for {shape:?}");
    }
}

/// Exchange disciplines beyond the quick-test default also resume exactly
/// (the search policy shapes the ring-candidate cache contents).
#[test]
fn every_paper_discipline_resumes_exactly() {
    for discipline in ExchangeDiscipline::paper_set() {
        let mut config = SimConfig::quick_test();
        config.num_peers = 16;
        config.sim_duration_s = 700.0;
        config.discipline = discipline;
        let (straight, resumed) = straight_and_resumed(&config, 11);
        assert_eq!(straight, resumed, "discipline {:?}", config.discipline);
    }
}

/// Checkpoint + restore at **every event boundary**: before each event the
/// simulation is serialized and replaced by its own restored snapshot, so
/// any state the format dropped or mangled would corrupt the very next
/// event.  The final report must still match the straight run exactly.
#[test]
fn checkpoint_at_every_event_matches_straight_run() {
    let mut config = SimConfig::quick_test();
    config.num_peers = 10;
    config.sim_duration_s = 300.0;
    config.warmup_s = 75.0;
    let straight = Simulation::new(config.clone(), 7).run();

    let mut chained = Simulation::new(config.clone(), 7);
    let mut steps = 0u64;
    loop {
        chained = round_trip(&chained, &config);
        if chained.step().is_none() {
            break;
        }
        steps += 1;
    }
    assert!(steps > 100, "scenario too small to be meaningful: {steps}");
    let resumed = chained.run();
    assert_eq!(straight.ring_cache_stats(), resumed.ring_cache_stats());
    assert_eq!(straight, resumed);
}

/// The sharded engine's merged batches also step and resume exactly.
#[test]
fn checkpoint_at_every_event_matches_straight_run_sharded() {
    let mut config = SimConfig::quick_test();
    config.num_peers = 12;
    config.sim_duration_s = 300.0;
    config.warmup_s = 75.0;
    config.shards = 4;
    let straight = Simulation::new(config.clone(), 9).run();

    let mut chained = Simulation::new(config.clone(), 9);
    loop {
        chained = round_trip(&chained, &config);
        if chained.step().is_none() {
            break;
        }
    }
    assert_eq!(straight, chained.run());
}
