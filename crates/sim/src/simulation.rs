//! The discrete-event file-sharing simulation.

use std::collections::HashMap;

use credit::{EmuleCredit, Fifo, IncentiveMechanism, QueuedRequest, TitForTat};
use des::{DetRng, Scheduler, SimDuration, SimTime};
use exchange::{ExchangeRing, RequestGraph, RingSearch, RingToken, TokenOutcome};
use netsim::{SlotPool, TransferSession};
use workload::{Catalog, ObjectId, PeerId, PeerInterests, RequestGenerator, Storage};

use crate::{
    FallbackOrder, PeerState, SessionEnd, SessionKind, SimConfig, SimReport, WantState,
};

/// Identifier of an active transfer session within one run.
type TransferId = u64;
/// Identifier of an active exchange ring within one run.
type RingId = u64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Top up a peer's outstanding requests.
    GenerateRequests(PeerId),
    /// Let a provider (re)fill its upload slots.
    TrySchedule(PeerId),
    /// One block of a transfer finished.
    BlockComplete(TransferId),
    /// Periodic storage-capacity enforcement at a peer.
    StorageMaintenance(PeerId),
}

#[derive(Debug, Clone)]
struct ActiveTransfer {
    uploader: PeerId,
    downloader: PeerId,
    object: ObjectId,
    kind: SessionKind,
    ring: Option<RingId>,
    session: TransferSession,
}

#[derive(Debug, Clone)]
struct ActiveRing {
    transfers: Vec<TransferId>,
}

/// One run of the file-sharing system.
///
/// A `Simulation` is built from a [`SimConfig`] and a seed, run to its
/// configured horizon, and consumed into a [`SimReport`].
///
/// # Example
///
/// ```
/// use sim::{SimConfig, Simulation};
///
/// let report = Simulation::new(SimConfig::quick_test(), 1).run();
/// assert!(report.total_sessions() > 0);
/// ```
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    catalog: Catalog,
    peers: Vec<PeerState>,
    graph: RequestGraph<PeerId, ObjectId>,
    request_gen: RequestGenerator,
    transfers: HashMap<TransferId, ActiveTransfer>,
    rings: HashMap<RingId, ActiveRing>,
    uploads_by_peer: HashMap<PeerId, Vec<TransferId>>,
    downloads_by_want: HashMap<(PeerId, ObjectId), Vec<TransferId>>,
    next_transfer_id: TransferId,
    next_ring_id: RingId,
    scheduler: Scheduler<Event>,
    report: SimReport,
    rng_requests: DetRng,
    rng_lookup: DetRng,
    rng_storage: DetRng,
    emule: EmuleCredit<PeerId>,
    tit_for_tat: TitForTat<PeerId>,
}

impl Simulation {
    /// Builds a simulation from `config`, deterministically seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    #[must_use]
    pub fn new(config: SimConfig, seed: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid simulation config: {e}"));
        let root_rng = DetRng::seed_from(seed);
        let mut rng_setup = root_rng.stream("setup");
        let catalog = Catalog::generate(&config.workload, &mut rng_setup);

        let num_peers = config.num_peers;
        let num_freeriders = (config.freerider_fraction * num_peers as f64).round() as usize;
        let mut sharing_flags = vec![true; num_peers];
        for flag in sharing_flags.iter_mut().take(num_freeriders) {
            *flag = false;
        }
        rng_setup.shuffle(&mut sharing_flags);

        let mut peers = Vec::with_capacity(num_peers);
        for (index, sharing) in sharing_flags.into_iter().enumerate() {
            let mut peer_rng = root_rng.indexed_stream("peer-setup", index as u64);
            let interests =
                PeerInterests::generate(&catalog, &config.workload, &mut peer_rng);
            let (cap_lo, cap_hi) = config.workload.storage_capacity_objects;
            let capacity = peer_rng.gen_range(cap_lo..=cap_hi) as usize;
            let storage = Storage::initial_placement(
                capacity,
                &catalog,
                &interests,
                &config.workload,
                &mut peer_rng,
            );
            peers.push(PeerState {
                id: PeerId::new(index as u32),
                sharing,
                interests,
                storage,
                upload_slots: SlotPool::new(config.link.upload_slots()),
                download_slots: SlotPool::new(config.link.download_slots()),
                wants: Default::default(),
                downloaded_bytes: 0,
                uploaded_bytes: 0,
            });
        }

        let horizon = SimTime::from_secs_f64(config.sim_duration_s);
        let mut scheduler = Scheduler::with_horizon(horizon);
        // Stagger the initial request generation and maintenance slightly so
        // that peers do not act in lock-step.
        for (index, _) in peers.iter().enumerate() {
            let peer = PeerId::new(index as u32);
            scheduler.schedule_at(
                SimTime::from_secs_f64(index as f64 * 0.25),
                Event::GenerateRequests(peer),
            );
            scheduler.schedule_at(
                SimTime::from_secs_f64(
                    config.storage_maintenance_interval_s + index as f64 * 0.5,
                ),
                Event::StorageMaintenance(peer),
            );
        }

        let report = SimReport::new(num_peers);
        Simulation {
            request_gen: RequestGenerator::new(&config.workload),
            rng_requests: root_rng.stream("requests"),
            rng_lookup: root_rng.stream("lookup"),
            rng_storage: root_rng.stream("storage"),
            config,
            catalog,
            peers,
            graph: RequestGraph::new(),
            transfers: HashMap::new(),
            rings: HashMap::new(),
            uploads_by_peer: HashMap::new(),
            downloads_by_want: HashMap::new(),
            next_transfer_id: 0,
            next_ring_id: 0,
            scheduler,
            report,
            emule: EmuleCredit::new(),
            tit_for_tat: TitForTat::new(),
        }
    }

    /// The configuration this run uses.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Read access to the peers (useful for tests and examples).
    #[must_use]
    pub fn peers(&self) -> &[PeerState] {
        &self.peers
    }

    /// Runs the simulation to its horizon and returns the collected report.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        while let Some(event) = self.scheduler.next() {
            match event {
                Event::GenerateRequests(peer) => self.handle_generate_requests(peer),
                Event::TrySchedule(peer) => self.handle_try_schedule(peer),
                Event::BlockComplete(transfer) => self.handle_block_complete(transfer),
                Event::StorageMaintenance(peer) => self.handle_storage_maintenance(peer),
            }
        }
        self.finalize()
    }

    fn finalize(mut self) -> SimReport {
        // Close out still-active sessions so their bytes are accounted for.
        let open: Vec<TransferId> = self.transfers.keys().copied().collect();
        for tid in open {
            self.end_transfer(tid, SessionEnd::HorizonReached);
        }
        for peer in &self.peers {
            self.report
                .record_peer_volume(peer.class(), peer.downloaded_bytes);
        }
        self.report
            .set_sim_seconds(self.scheduler.now().as_secs_f64());
        self.report
    }

    fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// Whether the current virtual time lies past the warm-up period, i.e.
    /// whether observations should enter the report.
    fn measuring(&self) -> bool {
        self.scheduler.now().as_secs_f64() >= self.config.warmup_s
    }

    fn peer(&self, id: PeerId) -> &PeerState {
        &self.peers[id.as_usize()]
    }

    fn peer_mut(&mut self, id: PeerId) -> &mut PeerState {
        &mut self.peers[id.as_usize()]
    }

    // ---- request generation -------------------------------------------------

    fn handle_generate_requests(&mut self, peer: PeerId) {
        let max_pending = self.config.max_pending_objects;
        let mut attempts = 0usize;
        let attempt_budget = max_pending * 4;
        while self.peer(peer).can_issue_request(max_pending) && attempts < attempt_budget {
            attempts += 1;
            let candidate = {
                let state = &self.peers[peer.as_usize()];
                self.request_gen.next_request(
                    &self.catalog,
                    &state.interests,
                    &mut self.rng_requests,
                    |o| state.has_or_wants(o),
                )
            };
            let Some(object) = candidate else { break };
            self.issue_request(peer, object);
        }
        // Periodically retry: wants for which no provider was found, or spare
        // request budget freed by abandoned lookups, get another chance.
        self.scheduler.schedule_in(
            SimDuration::from_secs_f64(self.config.request_retry_interval_s),
            Event::GenerateRequests(peer),
        );
    }

    /// Looks up providers for `object` and registers requests with them.
    fn issue_request(&mut self, requester: PeerId, object: ObjectId) {
        // Lookup: every sharing peer that currently stores the object.
        let all_providers: Vec<PeerId> = self
            .peers
            .iter()
            .filter(|p| p.id != requester && p.sharing && p.storage.contains(object))
            .map(|p| p.id)
            .collect();
        if all_providers.is_empty() {
            return; // nothing to request from right now
        }
        let chosen: Vec<PeerId> = self
            .rng_lookup
            .sample(&all_providers, self.config.lookup_max_providers)
            .into_iter()
            .copied()
            .collect();

        let now = self.now();
        let mut registered = Vec::new();
        for provider in chosen {
            if self.graph.incoming_len(provider) >= self.config.irq_capacity {
                continue;
            }
            if self.graph.add_request(requester, provider, object) {
                registered.push(provider);
            }
        }
        if registered.is_empty() {
            return;
        }
        self.peer_mut(requester)
            .wants
            .insert(object, WantState::new(now, registered.clone()));
        for provider in registered {
            self.scheduler.schedule_now(Event::TrySchedule(provider));
        }
        // The requester's own exchange opportunities changed too: it now has
        // one more want that a peer in its request tree might satisfy.
        if self.peer(requester).sharing {
            self.scheduler.schedule_now(Event::TrySchedule(requester));
        }
    }

    // ---- upload scheduling --------------------------------------------------

    fn handle_try_schedule(&mut self, provider: PeerId) {
        if !self.peer(provider).sharing {
            return;
        }
        loop {
            let free_slot = self.peer(provider).upload_slots.has_free();
            let can_preempt = self.config.preemption && self.has_preemptible_upload(provider);
            let mut progressed = false;

            if self.config.discipline.allows_exchange() && (free_slot || can_preempt) {
                progressed = self.try_form_exchange(provider);
            }
            if !progressed && self.peer(provider).upload_slots.has_free() {
                progressed = self.serve_non_exchange(provider);
            }
            if !progressed {
                break;
            }
        }
    }

    fn has_preemptible_upload(&self, uploader: PeerId) -> bool {
        self.uploads_by_peer
            .get(&uploader)
            .is_some_and(|tids| {
                tids.iter().any(|tid| {
                    self.transfers
                        .get(tid)
                        .is_some_and(|t| !t.kind.is_exchange())
                })
            })
    }

    /// Attempts to discover and activate one exchange ring rooted at
    /// `provider`.  Returns `true` if a ring was activated.
    fn try_form_exchange(&mut self, provider: PeerId) -> bool {
        let Some(policy) = self.config.discipline.search_policy() else {
            return false;
        };
        let wants = self.peer(provider).wanted_objects();
        if wants.is_empty() {
            return false;
        }
        // A peer in the request tree can close a ring if it shares and stores
        // an object the provider wants.  (Following the paper, the provider
        // examines its pending requests against what the peers in its request
        // tree own; it is not limited to the providers its own lookups
        // sampled.)
        let rings = RingSearch::new(policy)
            .with_expansion_budget(self.config.ring_search_budget)
            .with_fanout(self.config.ring_search_fanout)
            .find(&self.graph, provider, &wants, |peer, object| {
                let candidate = self.peer(*peer);
                candidate.sharing && candidate.storage.contains(*object)
            });
        // Try only a handful of candidates: the paper's peers pick the first
        // feasible exchange rather than exhaustively probing every proposal.
        for ring in rings.iter().take(8) {
            if self.activate_ring(provider, ring) {
                return true;
            }
        }
        false
    }

    /// Whether `peer` could take on the upload described by `edge` as part of
    /// an exchange ring (the token-confirmation predicate).
    fn can_confirm_ring_member(
        &self,
        peer: PeerId,
        edge: &exchange::RingEdge<PeerId, ObjectId>,
    ) -> bool {
        let uploader = self.peer(peer);
        if !uploader.sharing || !uploader.storage.contains(edge.object) {
            return false;
        }
        let slot_available = uploader.upload_slots.has_free()
            || (self.config.preemption && self.has_preemptible_upload(peer));
        if !slot_available {
            return false;
        }
        let downloader = self.peer(edge.downloader);
        if !downloader.download_slots.has_free() {
            return false;
        }
        if !downloader.wants.contains_key(&edge.object) {
            return false;
        }
        // An identical transfer already part of an exchange means this edge is
        // already served at exchange priority; re-forming it would double-count.
        let duplicate_exchange = self
            .downloads_by_want
            .get(&(edge.downloader, edge.object))
            .is_some_and(|tids| {
                tids.iter().any(|tid| {
                    self.transfers.get(tid).is_some_and(|t| {
                        t.uploader == peer && t.kind.is_exchange()
                    })
                })
            });
        !duplicate_exchange
    }

    /// Validates `ring` with a token pass and, if confirmed, activates it.
    fn activate_ring(
        &mut self,
        initiator: PeerId,
        ring: &ExchangeRing<PeerId, ObjectId>,
    ) -> bool {
        let token = RingToken::new(initiator);
        let outcome = token.circulate(ring, |peer, edge| self.can_confirm_ring_member(*peer, edge));
        if let TokenOutcome::Declined { .. } = outcome {
            if self.measuring() {
                self.report.record_token_decline();
            }
            return false;
        }

        let ring_id = self.next_ring_id;
        self.next_ring_id += 1;
        let kind = SessionKind::Exchange {
            ring_size: ring.len(),
        };
        let mut created = Vec::new();
        for edge in ring.edges() {
            // Replace any ongoing low-priority transfer on the same edge, and
            // free a slot by preemption if the uploader is saturated.
            self.preempt_duplicate(edge.uploader, edge.downloader, edge.object);
            if !self.peer(edge.uploader).upload_slots.has_free() {
                if !(self.config.preemption && self.preempt_one_upload(edge.uploader)) {
                    break;
                }
            }
            match self.start_transfer(edge.uploader, edge.downloader, edge.object, kind, Some(ring_id)) {
                Some(tid) => created.push(tid),
                None => break,
            }
        }
        if created.len() != ring.len() {
            // A member became infeasible between confirmation and activation
            // (e.g. its slot was consumed while activating an earlier edge).
            for tid in created {
                self.end_transfer(tid, SessionEnd::RingDissolved);
            }
            if self.measuring() {
                self.report.record_token_decline();
            }
            return false;
        }
        self.rings.insert(ring_id, ActiveRing { transfers: created });
        if self.measuring() {
            self.report.record_ring(ring.len());
        }
        true
    }

    /// Ends a low-priority transfer on exactly this edge, if one is running.
    fn preempt_duplicate(&mut self, uploader: PeerId, downloader: PeerId, object: ObjectId) {
        let duplicate = self
            .downloads_by_want
            .get(&(downloader, object))
            .into_iter()
            .flatten()
            .copied()
            .find(|tid| {
                self.transfers
                    .get(tid)
                    .is_some_and(|t| t.uploader == uploader && !t.kind.is_exchange())
            });
        if let Some(tid) = duplicate {
            self.end_transfer(tid, SessionEnd::Preempted);
            if self.measuring() {
                self.report.record_preemption();
            }
        }
    }

    /// Preempts one arbitrary non-exchange upload of `uploader`, freeing a slot.
    fn preempt_one_upload(&mut self, uploader: PeerId) -> bool {
        let victim = self
            .uploads_by_peer
            .get(&uploader)
            .into_iter()
            .flatten()
            .copied()
            .find(|tid| {
                self.transfers
                    .get(tid)
                    .is_some_and(|t| !t.kind.is_exchange())
            });
        if let Some(tid) = victim {
            self.end_transfer(tid, SessionEnd::Preempted);
            if self.measuring() {
                self.report.record_preemption();
            }
            true
        } else {
            false
        }
    }

    /// Serves one non-exchange request at `provider`, if any is eligible.
    fn serve_non_exchange(&mut self, provider: PeerId) -> bool {
        let now = self.now();
        let mut queue: Vec<QueuedRequest<PeerId>> = Vec::new();
        let mut objects: Vec<ObjectId> = Vec::new();
        for req in self.graph.incoming(provider) {
            let requester_state = self.peer(req.requester);
            let Some(want) = requester_state.wants.get(&req.object) else {
                continue;
            };
            if !self.peer(provider).storage.contains(req.object) {
                continue;
            }
            if !requester_state.download_slots.has_free() {
                continue;
            }
            let already_serving = self
                .downloads_by_want
                .get(&(req.requester, req.object))
                .is_some_and(|tids| {
                    tids.iter().any(|tid| {
                        self.transfers
                            .get(tid)
                            .is_some_and(|t| t.uploader == provider)
                    })
                });
            if already_serving {
                continue;
            }
            queue.push(QueuedRequest {
                requester: req.requester,
                waiting_secs: now.saturating_since(want.issued_at).as_secs_f64(),
            });
            objects.push(req.object);
        }
        if queue.is_empty() {
            return false;
        }
        let pick = match self.config.fallback {
            FallbackOrder::Fifo => Fifo::new().pick(provider, &queue),
            FallbackOrder::EmuleCredit => self.emule.pick(provider, &queue),
            FallbackOrder::TitForTat => self.tit_for_tat.pick(provider, &queue),
        };
        let Some(index) = pick else { return false };
        self.start_transfer(
            provider,
            queue[index].requester,
            objects[index],
            SessionKind::NonExchange,
            None,
        )
        .is_some()
    }

    // ---- transfer lifecycle -------------------------------------------------

    /// Starts a transfer session, reserving one slot at each end.
    /// Returns `None` if either side has no capacity.
    fn start_transfer(
        &mut self,
        uploader: PeerId,
        downloader: PeerId,
        object: ObjectId,
        kind: SessionKind,
        ring: Option<RingId>,
    ) -> Option<TransferId> {
        if !self.peer(uploader).upload_slots.has_free()
            || !self.peer(downloader).download_slots.has_free()
        {
            return None;
        }
        let now = self.now();
        let waiting_secs = {
            let want = self.peer(downloader).wants.get(&object)?;
            now.saturating_since(want.issued_at).as_secs_f64()
        };
        self.peer_mut(uploader)
            .upload_slots
            .reserve()
            .expect("checked free upload slot");
        self.peer_mut(downloader)
            .download_slots
            .reserve()
            .expect("checked free download slot");

        let rate = self.config.link.slot_bytes_per_sec();
        let session = TransferSession::new(rate, self.config.block_bytes, now);
        let tid = self.next_transfer_id;
        self.next_transfer_id += 1;
        self.transfers.insert(
            tid,
            ActiveTransfer {
                uploader,
                downloader,
                object,
                kind,
                ring,
                session,
            },
        );
        self.uploads_by_peer.entry(uploader).or_default().push(tid);
        self.downloads_by_want
            .entry((downloader, object))
            .or_default()
            .push(tid);
        if let Some(want) = self.peer_mut(downloader).wants.get_mut(&object) {
            want.active_sessions += 1;
        }
        if self.measuring() {
            self.report.record_waiting(kind, waiting_secs);
        }

        let remaining = self.remaining_bytes(downloader, object);
        let block = session.next_block_bytes(remaining);
        self.scheduler
            .schedule_in(session.block_duration(block), Event::BlockComplete(tid));
        Some(tid)
    }

    fn remaining_bytes(&self, downloader: PeerId, object: ObjectId) -> u64 {
        let size = self.catalog.size_bytes(object);
        let received = self
            .peer(downloader)
            .wants
            .get(&object)
            .map_or(0, |w| w.received_bytes);
        size.saturating_sub(received).max(1)
    }

    fn handle_block_complete(&mut self, tid: TransferId) {
        let Some(transfer) = self.transfers.get(&tid).cloned() else {
            return; // the session ended before this block event fired
        };
        let size = self.catalog.size_bytes(transfer.object);
        let remaining_before = self.remaining_bytes(transfer.downloader, transfer.object);
        let block = transfer.session.next_block_bytes(remaining_before).min(remaining_before);

        // Account the block.
        if let Some(t) = self.transfers.get_mut(&tid) {
            t.session.record_block(block);
        }
        self.peer_mut(transfer.downloader).downloaded_bytes += block;
        self.peer_mut(transfer.uploader).uploaded_bytes += block;
        self.emule
            .record_transfer(transfer.uploader, transfer.downloader, block);
        self.tit_for_tat
            .record_transfer(transfer.uploader, transfer.downloader, block);
        let complete = {
            let want = self
                .peer_mut(transfer.downloader)
                .wants
                .get_mut(&transfer.object);
            match want {
                Some(w) => {
                    w.received_bytes = (w.received_bytes + block).min(size);
                    w.received_bytes >= size
                }
                None => false,
            }
        };

        if complete {
            self.complete_download(transfer.downloader, transfer.object);
            return;
        }
        // The uploader may have evicted the object mid-transfer despite
        // pinning (defensive; should not happen with pinning enabled).
        if !self.peer(transfer.uploader).storage.contains(transfer.object) {
            self.end_transfer(tid, SessionEnd::SourceLostObject);
            return;
        }
        let remaining = self.remaining_bytes(transfer.downloader, transfer.object);
        let next_block = transfer.session.next_block_bytes(remaining);
        self.scheduler.schedule_in(
            transfer.session.block_duration(next_block),
            Event::BlockComplete(tid),
        );
    }

    /// Handles the completion of a whole object at `downloader`.
    fn complete_download(&mut self, downloader: PeerId, object: ObjectId) {
        let now = self.now();
        let Some(want) = self.peer_mut(downloader).wants.remove(&object) else {
            return;
        };
        let minutes = now.saturating_since(want.issued_at).as_minutes_f64();
        let class = self.peer(downloader).class();
        if self.measuring() {
            self.report.record_download(class, minutes);
        }

        // Withdraw every outstanding request for this object.
        self.graph.remove_object_requests(downloader, object);
        // The object enters the downloader's store (it may be evicted later by
        // the periodic maintenance pass).
        self.peer_mut(downloader).storage.insert(object);

        // Terminate every session that was delivering this object.
        let sessions: Vec<TransferId> = self
            .downloads_by_want
            .get(&(downloader, object))
            .cloned()
            .unwrap_or_default();
        for tid in sessions {
            self.end_transfer(tid, SessionEnd::DownloadComplete);
        }
        self.downloads_by_want.remove(&(downloader, object));

        // Free request budget: ask for something new right away.
        self.scheduler
            .schedule_now(Event::GenerateRequests(downloader));
    }

    /// Tears down one transfer session and releases its resources.
    fn end_transfer(&mut self, tid: TransferId, reason: SessionEnd) {
        let Some(transfer) = self.transfers.remove(&tid) else {
            return;
        };
        self.peer_mut(transfer.uploader).upload_slots.release();
        self.peer_mut(transfer.downloader).download_slots.release();
        if let Some(want) = self
            .peer_mut(transfer.downloader)
            .wants
            .get_mut(&transfer.object)
        {
            want.active_sessions = want.active_sessions.saturating_sub(1);
        }
        if let Some(tids) = self.uploads_by_peer.get_mut(&transfer.uploader) {
            tids.retain(|t| *t != tid);
        }
        if let Some(tids) = self
            .downloads_by_want
            .get_mut(&(transfer.downloader, transfer.object))
        {
            tids.retain(|t| *t != tid);
        }
        // Sessions that never moved a byte (typically preempted before their
        // first block completed) are not counted as sessions in the report;
        // they would otherwise swamp the per-session distributions.
        if self.measuring() && transfer.session.bytes_transferred() > 0 {
            self.report
                .record_session(transfer.kind, transfer.session.bytes_transferred());
        }

        // An exchange ring dissolves as soon as any of its sessions ends.
        if let Some(ring_id) = transfer.ring {
            if reason != SessionEnd::RingDissolved {
                self.dissolve_ring(ring_id);
            }
        }
        // The freed upload slot can immediately be refilled.
        if reason != SessionEnd::HorizonReached {
            self.scheduler
                .schedule_now(Event::TrySchedule(transfer.uploader));
        }
    }

    fn dissolve_ring(&mut self, ring_id: RingId) {
        let Some(ring) = self.rings.remove(&ring_id) else {
            return;
        };
        for tid in ring.transfers {
            self.end_transfer(tid, SessionEnd::RingDissolved);
        }
    }

    // ---- storage maintenance ------------------------------------------------

    fn handle_storage_maintenance(&mut self, peer: PeerId) {
        // Objects currently being uploaded by this peer are pinned, as the
        // paper postpones removal of objects used in an ongoing exchange.
        let pinned: Vec<ObjectId> = self
            .uploads_by_peer
            .get(&peer)
            .into_iter()
            .flatten()
            .filter_map(|tid| self.transfers.get(tid).map(|t| t.object))
            .collect();
        let evicted = {
            let state = &mut self.peers[peer.as_usize()];
            state
                .storage
                .evict_over_capacity(&mut self.rng_storage, |o| pinned.contains(&o))
        };
        // Requests directed at this peer for evicted objects can no longer be
        // served here; withdraw them so the request graph stays truthful.
        for object in evicted {
            let stale: Vec<PeerId> = self
                .graph
                .incoming(peer)
                .filter(|r| r.object == object)
                .map(|r| r.requester)
                .collect();
            for requester in stale {
                self.graph.remove_request(requester, peer, object);
            }
        }
        self.scheduler.schedule_in(
            SimDuration::from_secs_f64(self.config.storage_maintenance_interval_s),
            Event::StorageMaintenance(peer),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeerClass;
    use exchange::ExchangePolicy;

    fn run_quick(discipline: ExchangePolicy, seed: u64) -> SimReport {
        let mut config = SimConfig::quick_test();
        config.discipline = discipline;
        Simulation::new(config, seed).run()
    }

    #[test]
    fn quick_run_completes_downloads() {
        let report = run_quick(ExchangePolicy::two_five_way(), 1);
        assert!(report.completed_downloads() > 0, "some downloads must finish");
        assert!(report.total_sessions() > 0);
        assert!(report.sim_seconds() > 0.0);
    }

    #[test]
    fn no_exchange_policy_creates_no_exchange_sessions() {
        let report = run_quick(ExchangePolicy::NoExchange, 2);
        assert_eq!(report.exchange_session_fraction(), 0.0);
        assert_eq!(report.total_rings(), 0);
        assert!(report.completed_downloads() > 0);
    }

    #[test]
    fn pairwise_policy_only_forms_two_way_rings() {
        let report = run_quick(ExchangePolicy::Pairwise, 3);
        for (size, count) in report.rings_formed() {
            assert!(*size == 2 || *count == 0, "unexpected ring size {size}");
        }
        for kind in report.observed_kinds() {
            if let SessionKind::Exchange { ring_size } = kind {
                assert_eq!(ring_size, 2);
            }
        }
    }

    #[test]
    fn bounded_ring_sizes_are_respected() {
        let report = run_quick(ExchangePolicy::PreferShorter { max_ring: 3 }, 4);
        for (size, _) in report.rings_formed() {
            assert!(*size <= 3);
        }
    }

    #[test]
    fn same_seed_gives_identical_results() {
        let a = run_quick(ExchangePolicy::two_five_way(), 42);
        let b = run_quick(ExchangePolicy::two_five_way(), 42);
        assert_eq!(a.completed_downloads(), b.completed_downloads());
        assert_eq!(a.total_sessions(), b.total_sessions());
        assert_eq!(a.total_rings(), b.total_rings());
        assert_eq!(
            a.mean_download_time_min(PeerClass::Sharing),
            b.mean_download_time_min(PeerClass::Sharing)
        );
    }

    #[test]
    fn different_seeds_give_different_runs() {
        let a = run_quick(ExchangePolicy::two_five_way(), 1);
        let b = run_quick(ExchangePolicy::two_five_way(), 2);
        // Not strictly guaranteed, but overwhelmingly likely for a whole run.
        assert!(
            a.total_sessions() != b.total_sessions()
                || a.completed_downloads() != b.completed_downloads()
        );
    }

    #[test]
    fn exchange_policies_produce_exchange_sessions() {
        let report = run_quick(ExchangePolicy::two_five_way(), 5);
        assert!(
            report.exchange_session_fraction() > 0.0,
            "exchanges should occur under an exchange discipline"
        );
        assert!(report.total_rings() > 0);
    }

    #[test]
    fn slot_accounting_is_clean_after_run() {
        let mut config = SimConfig::quick_test();
        config.discipline = ExchangePolicy::two_five_way();
        let sim = Simulation::new(config, 6);
        let report = sim.run();
        // All sessions are closed in finalize(), so every recorded session has
        // released its slots; the report totals must be internally consistent.
        assert_eq!(
            report.total_sessions(),
            report.session_counts().values().sum::<u64>()
        );
    }

    #[test]
    fn sharing_users_do_better_under_exchanges() {
        // Use a slightly longer quick run to reduce noise.
        let mut config = SimConfig::quick_test();
        config.sim_duration_s = 6_000.0;
        config.discipline = ExchangePolicy::two_five_way();
        let report = Simulation::new(config, 7).run();
        let sharing = report.mean_download_time_min(PeerClass::Sharing);
        let non_sharing = report.mean_download_time_min(PeerClass::NonSharing);
        if let (Some(s), Some(n)) = (sharing, non_sharing) {
            assert!(
                s <= n * 1.05,
                "sharing users should not be noticeably worse off (sharing={s:.1}min, non-sharing={n:.1}min)"
            );
        }
    }

    #[test]
    fn freerider_fraction_zero_and_one_are_valid() {
        let mut config = SimConfig::quick_test();
        config.freerider_fraction = 0.0;
        let all_sharing = Simulation::new(config.clone(), 8);
        assert!(all_sharing.peers().iter().all(|p| p.sharing));
        let _ = all_sharing.run();

        config.freerider_fraction = 1.0;
        let none_sharing = Simulation::new(config, 9);
        assert!(none_sharing.peers().iter().all(|p| !p.sharing));
        let report = none_sharing.run();
        // Nobody uploads, so nothing can complete.
        assert_eq!(report.completed_downloads(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn invalid_config_panics() {
        let mut config = SimConfig::quick_test();
        config.num_peers = 0;
        let _ = Simulation::new(config, 1);
    }
}
