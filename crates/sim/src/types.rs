//! Small shared types of the simulator.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Whether a peer contributes uploads to the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PeerClass {
    /// The peer shares its stored objects and uploads to others.
    Sharing,
    /// The peer only downloads ("free-rider").
    NonSharing,
}

impl PeerClass {
    /// The label used in figures ("sharing" / "non-sharing").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PeerClass::Sharing => "sharing",
            PeerClass::NonSharing => "non-sharing",
        }
    }
}

impl fmt::Display for PeerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The type of a transfer session, used to break down the per-session
/// statistics of Figures 7 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SessionKind {
    /// A low-priority transfer that is not part of any exchange.
    NonExchange,
    /// A transfer that is part of an exchange ring of the given size
    /// (2 = pairwise).
    Exchange {
        /// Number of peers in the ring this session belongs to.
        ring_size: usize,
    },
}

impl SessionKind {
    /// Whether this session is part of an exchange.
    #[must_use]
    pub fn is_exchange(self) -> bool {
        matches!(self, SessionKind::Exchange { .. })
    }

    /// The label used in figures
    /// (`non-exchange`, `pairwise`, `3-way`, `4-way`, ...).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            SessionKind::NonExchange => "non-exchange".to_string(),
            SessionKind::Exchange { ring_size: 2 } => "pairwise".to_string(),
            SessionKind::Exchange { ring_size } => format!("{ring_size}-way"),
        }
    }
}

impl fmt::Display for SessionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Why a transfer session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SessionEnd {
    /// The downloader finished assembling the whole object.
    DownloadComplete,
    /// Another member of the session's exchange ring finished or dropped out,
    /// dissolving the ring.
    RingDissolved,
    /// A non-exchange upload was preempted because an exchange became
    /// possible at the uploader.
    Preempted,
    /// The uploader no longer stores the object.
    SourceLostObject,
    /// The downloader (or the active [`crate::Protection`] countermeasure)
    /// caught the uploader serving junk blocks and tore the session down.
    /// Counted separately from [`SessionEnd::RingDissolved`] so junk-block
    /// terminations are distinguishable in per-session statistics.
    CheatDetected,
    /// The run's horizon was reached while the session was still active.
    HorizonReached,
    /// One endpoint of the session left the system (churn or catastrophe)
    /// while the session was still active.
    PeerDeparted,
}

impl SessionEnd {
    /// The label used in per-session breakdowns.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SessionEnd::DownloadComplete => "download-complete",
            SessionEnd::RingDissolved => "ring-dissolved",
            SessionEnd::Preempted => "preempted",
            SessionEnd::SourceLostObject => "source-lost-object",
            SessionEnd::CheatDetected => "cheat-detected",
            SessionEnd::HorizonReached => "horizon-reached",
            SessionEnd::PeerDeparted => "peer-departed",
        }
    }
}

impl fmt::Display for SessionEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels() {
        assert_eq!(PeerClass::Sharing.label(), "sharing");
        assert_eq!(PeerClass::NonSharing.to_string(), "non-sharing");
        assert!(PeerClass::Sharing < PeerClass::NonSharing);
    }

    #[test]
    fn session_kind_labels_match_figures() {
        assert_eq!(SessionKind::NonExchange.label(), "non-exchange");
        assert_eq!(SessionKind::Exchange { ring_size: 2 }.label(), "pairwise");
        assert_eq!(SessionKind::Exchange { ring_size: 3 }.label(), "3-way");
        assert_eq!(SessionKind::Exchange { ring_size: 5 }.to_string(), "5-way");
    }

    #[test]
    fn exchange_predicate() {
        assert!(!SessionKind::NonExchange.is_exchange());
        assert!(SessionKind::Exchange { ring_size: 2 }.is_exchange());
    }

    #[test]
    fn session_end_labels_are_distinct() {
        let ends = [
            SessionEnd::DownloadComplete,
            SessionEnd::RingDissolved,
            SessionEnd::Preempted,
            SessionEnd::SourceLostObject,
            SessionEnd::CheatDetected,
            SessionEnd::HorizonReached,
            SessionEnd::PeerDeparted,
        ];
        let mut labels: Vec<&str> = ends.iter().map(|e| e.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ends.len());
        assert_eq!(SessionEnd::CheatDetected.to_string(), "cheat-detected");
        assert!(SessionEnd::RingDissolved < SessionEnd::CheatDetected);
    }

    #[test]
    fn kinds_order_deterministically() {
        let mut kinds = [
            SessionKind::Exchange { ring_size: 3 },
            SessionKind::NonExchange,
            SessionKind::Exchange { ring_size: 2 },
        ];
        kinds.sort();
        assert_eq!(kinds[0], SessionKind::NonExchange);
        assert_eq!(kinds[1], SessionKind::Exchange { ring_size: 2 });
    }
}
