//! Hand-rolled JSON and CSV serialization of [`SweepGrid`] results.
//!
//! The workspace's `serde` is an offline stub (no crates.io access), so the
//! writers here are self-contained: [`SweepGrid::write_csv`] emits one row
//! per `(point, seed)` run with the axis values and headline metrics, and
//! [`SweepGrid::write_json`] additionally nests the per-behavior breakdown.
//! Both exist so sweep results can leave the process for plotting without
//! any external dependency.

use std::collections::BTreeSet;
use std::io::{self, Write};

use crate::{BehaviorKind, CapacityClass, SimReport, SweepGrid};

/// One headline metric column: its name and the report extractor.
type MetricColumn = (&'static str, fn(&SimReport) -> Option<f64>);

/// The fixed scalar metrics every row carries, as `(column, extractor)`.
fn scalar_metrics() -> Vec<MetricColumn> {
    vec![
        ("completed_downloads", |r| {
            Some(r.completed_downloads() as f64)
        }),
        ("total_sessions", |r| Some(r.total_sessions() as f64)),
        ("total_rings", |r| Some(r.total_rings() as f64)),
        ("exchange_session_fraction", |r| {
            Some(r.exchange_session_fraction())
        }),
        ("preemptions", |r| Some(r.preemptions() as f64)),
        ("cheat_detections", |r| Some(r.cheat_detections() as f64)),
        ("mean_download_min_sharing", |r| {
            r.mean_download_time_min(crate::PeerClass::Sharing)
        }),
        ("mean_download_min_non_sharing", |r| {
            r.mean_download_time_min(crate::PeerClass::NonSharing)
        }),
        ("sim_seconds", |r| Some(r.sim_seconds())),
    ]
}

/// Every behavior observed anywhere in the grid, in kind order.
fn observed_behaviors(grid: &SweepGrid) -> Vec<BehaviorKind> {
    let mut kinds: BTreeSet<BehaviorKind> = BTreeSet::new();
    for row in grid.rows() {
        kinds.extend(row.report.behavior_breakdown().keys().copied());
    }
    kinds.into_iter().collect()
}

/// Every capacity class that completed a download anywhere in the grid, in
/// class order (fast < medium < slow).
fn observed_classes(grid: &SweepGrid) -> Vec<CapacityClass> {
    let mut classes: BTreeSet<CapacityClass> = BTreeSet::new();
    for row in grid.rows() {
        classes.extend(row.report.observed_capacity_classes());
    }
    classes.into_iter().collect()
}

/// The download-time quantiles exported per capacity class (paper Figures
/// 7–8 plot the full CDF; these are its fixed sampling points).
const CLASS_QUANTILES: [(&str, f64); 3] = [("p10", 0.10), ("p50", 0.50), ("p90", 0.90)];

/// Formats a float for JSON: finite values via `{}` (shortest round-trip),
/// everything else as the JSON literal `null`.
fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Formats an optional float for CSV: finite values via `{}`, everything
/// else (unreported or non-finite) as an empty field, so numeric columns
/// stay numeric for downstream parsers.
fn csv_f64(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => String::new(),
    }
}

/// Escapes `field` for CSV: quoted (with doubled quotes) only when needed.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Escapes `s` as a JSON string body (without the surrounding quotes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes one `(point, seed, report)` result as a single JSON object —
/// exactly the shape of one element of [`SweepGrid::write_json`]'s `rows`
/// array.  This is the unit of the JSONL streaming mode
/// ([`crate::Scenario::run_streamed`]): one such object per line, emitted as
/// each run completes, so a killed sweep leaves a parsable prefix.
pub(crate) fn write_row_json<W: Write>(
    writer: &mut W,
    point: usize,
    seed: u64,
    report: &SimReport,
) -> io::Result<()> {
    let metrics = scalar_metrics();
    write!(writer, "{{\"point\":{point},\"seed\":{seed},\"metrics\":{{")?;
    for (j, (name, metric)) in metrics.iter().enumerate() {
        if j > 0 {
            write!(writer, ",")?;
        }
        let value = metric(report).map_or("null".to_string(), fmt_f64);
        write!(writer, "\"{name}\":{value}")?;
    }
    write!(writer, "}},\"behaviors\":{{")?;
    for (j, (kind, stats)) in report.behavior_breakdown().iter().enumerate() {
        if j > 0 {
            write!(writer, ",")?;
        }
        write!(
            writer,
            "\"{}\":{{\"peers\":{},\"uploaded_bytes\":{},\"downloaded_bytes\":{},\
             \"usable_bytes\":{},\"junk_bytes\":{},\"ciphertext_bytes\":{},\
             \"completed_downloads\":{},\"ciphertext_downloads\":{},\
             \"cheat_detections\":{},\"mean_download_time_min\":{}}}",
            json_escape(kind.label()),
            stats.peers,
            stats.uploaded_bytes,
            stats.downloaded_bytes,
            stats.usable_bytes(),
            stats.junk_bytes,
            stats.ciphertext_bytes,
            stats.completed_downloads,
            stats.ciphertext_downloads,
            stats.cheat_detections,
            stats
                .mean_download_time_min()
                .map_or("null".to_string(), fmt_f64),
        )?;
    }
    write!(writer, "}},\"capacity\":{{")?;
    for (j, class) in report.observed_capacity_classes().iter().enumerate() {
        if j > 0 {
            write!(writer, ",")?;
        }
        write!(writer, "\"{}\":{{", json_escape(class.label()))?;
        write!(
            writer,
            "\"mean_download_time_min\":{}",
            report
                .mean_download_time_by_capacity(*class)
                .map_or("null".to_string(), fmt_f64)
        )?;
        for (quantile, p) in CLASS_QUANTILES {
            write!(
                writer,
                ",\"download_min_{quantile}\":{}",
                report
                    .capacity_download_percentile(*class, p)
                    .map_or("null".to_string(), fmt_f64)
            )?;
        }
        write!(writer, "}}")?;
    }
    write!(writer, "}}}}")?;
    Ok(())
}

impl SweepGrid {
    /// Writes the grid as CSV: one row per `(point, seed)` run, with the
    /// point label, every axis value, the headline metrics, and per-behavior
    /// usable megabytes.  Metrics a run did not report are left empty.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error of `writer`.
    pub fn write_csv<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        let axes: Vec<&str> = self
            .points()
            .first()
            .map(|p| p.values.iter().map(|(name, _)| name.as_str()).collect())
            .unwrap_or_default();
        let metrics = scalar_metrics();
        let behaviors = observed_behaviors(self);
        let classes = observed_classes(self);

        let mut header: Vec<String> = vec!["point".into(), "label".into(), "seed".into()];
        header.extend(axes.iter().map(|a| (*a).to_string()));
        header.extend(metrics.iter().map(|(name, _)| (*name).to_string()));
        for kind in &behaviors {
            header.push(format!("usable_mb_per_peer[{kind}]"));
        }
        for class in &classes {
            for (quantile, _) in CLASS_QUANTILES {
                header.push(format!("download_min_{quantile}[{}]", class.label()));
            }
        }
        writeln!(
            writer,
            "{}",
            header
                .iter()
                .map(|h| csv_escape(h))
                .collect::<Vec<_>>()
                .join(",")
        )?;

        for row in self.rows() {
            let point = self.point(row.point);
            let mut fields: Vec<String> = vec![
                row.point.to_string(),
                csv_escape(&point.label),
                row.seed.to_string(),
            ];
            for axis in &axes {
                fields.push(csv_escape(point.value(axis).unwrap_or("")));
            }
            for (_, metric) in &metrics {
                fields.push(csv_f64(metric(&row.report)));
            }
            for kind in &behaviors {
                fields.push(csv_f64(row.report.mean_usable_mb_per_peer(*kind)));
            }
            for class in &classes {
                for (_, p) in CLASS_QUANTILES {
                    fields.push(csv_f64(row.report.capacity_download_percentile(*class, p)));
                }
            }
            writeln!(writer, "{}", fields.join(","))?;
        }
        Ok(())
    }

    /// Writes the grid as a single JSON document:
    ///
    /// ```json
    /// {
    ///   "seeds": [0, 1],
    ///   "points": [{"index": 0, "label": "...", "values": {"axis": "value"}}],
    ///   "rows": [{"point": 0, "seed": 0, "metrics": {...}, "behaviors": {...}}]
    /// }
    /// ```
    ///
    /// `metrics` carries the same headline numbers as the CSV; `behaviors`
    /// nests the full per-behavior breakdown (bytes up/down, usable vs
    /// junk vs ciphertext, completions, cheat detections); `capacity` nests
    /// the per-class download-time fairness quantiles (paper Figures 7–8).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error of `writer`.
    pub fn write_json<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        write!(writer, "{{\"seeds\":[")?;
        for (i, seed) in self.seeds().iter().enumerate() {
            if i > 0 {
                write!(writer, ",")?;
            }
            write!(writer, "{seed}")?;
        }
        write!(writer, "],\"points\":[")?;
        for (i, point) in self.points().iter().enumerate() {
            if i > 0 {
                write!(writer, ",")?;
            }
            write!(
                writer,
                "{{\"index\":{},\"label\":\"{}\",\"values\":{{",
                point.index,
                json_escape(&point.label)
            )?;
            for (j, (axis, value)) in point.values.iter().enumerate() {
                if j > 0 {
                    write!(writer, ",")?;
                }
                write!(
                    writer,
                    "\"{}\":\"{}\"",
                    json_escape(axis),
                    json_escape(value)
                )?;
            }
            write!(writer, "}}}}")?;
        }
        write!(writer, "],\"rows\":[")?;
        for (i, row) in self.rows().iter().enumerate() {
            if i > 0 {
                write!(writer, ",")?;
            }
            write_row_json(writer, row.point, row.seed, &row.report)?;
        }
        write!(writer, "]}}")?;
        Ok(())
    }

    /// [`SweepGrid::write_csv`] into a `String`.
    #[must_use]
    pub fn to_csv_string(&self) -> String {
        let mut buffer = Vec::new();
        self.write_csv(&mut buffer)
            .expect("writing to a Vec never fails");
        String::from_utf8(buffer).expect("CSV output is UTF-8")
    }

    /// [`SweepGrid::write_json`] into a `String`.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut buffer = Vec::new();
        self.write_json(&mut buffer)
            .expect("writing to a Vec never fails");
        String::from_utf8(buffer).expect("JSON output is UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Axis, Scenario, SimConfig};

    fn tiny_grid() -> SweepGrid {
        let mut config = SimConfig::quick_test();
        config.num_peers = 16;
        config.sim_duration_s = 600.0;
        Scenario::from(config)
            .vary(Axis::UploadKbps(vec![60.0, 100.0]))
            .seeds(0..2)
            .run()
    }

    #[test]
    fn csv_has_one_row_per_run_plus_header() {
        let grid = tiny_grid();
        let csv = grid.to_csv_string();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + grid.rows().len());
        assert!(lines[0].starts_with("point,label,seed,upload_kbps,completed_downloads"));
        assert!(lines[0].contains("cheat_detections"));
        assert!(lines[0].contains("usable_mb_per_peer[honest]"));
        // Every data line has the same number of fields as the header.
        let columns = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns, "ragged row: {line}");
        }
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn fairness_quantiles_export_per_observed_class() {
        use crate::{CapacityClass, ClassMix};
        let mut config = SimConfig::quick_test();
        config.num_peers = 16;
        config.sim_duration_s = 600.0;
        config.classes =
            ClassMix::weighted([(CapacityClass::Fast, 0.5), (CapacityClass::Slow, 0.5)]);
        let grid = Scenario::from(config).seeds([1]).run();
        let csv = grid.to_csv_string();
        let header = csv.lines().next().expect("csv has a header");
        assert!(header.contains("download_min_p10[fast]"));
        assert!(header.contains("download_min_p50[fast]"));
        assert!(header.contains("download_min_p90[slow]"));
        assert!(
            !header.contains("[medium]"),
            "unobserved classes get no columns"
        );
        let json = grid.to_json_string();
        assert!(json.contains("\"capacity\":{"));
        assert!(json.contains("\"fast\":{\"mean_download_time_min\":"));
        assert!(json.contains("\"download_min_p90\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn csv_escapes_embedded_delimiters() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn json_is_structured_and_balanced() {
        let grid = tiny_grid();
        let json = grid.to_json_string();
        assert!(json.starts_with("{\"seeds\":[0,1]"));
        assert!(json.contains("\"points\":["));
        assert!(json.contains("\"upload_kbps\":\"60\""));
        assert!(json.contains("\"completed_downloads\":"));
        assert!(json.contains("\"behaviors\":{"));
        assert!(json.contains("\"honest\":{"));
        assert!(json.contains("\"free-rider\":{"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces balance"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(grid.rows().len(), json.matches("\"seed\":").count());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak"), "line\\nbreak");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_metrics_serialize_as_null_in_json_and_empty_in_csv() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(csv_f64(Some(f64::NAN)), "");
        assert_eq!(csv_f64(Some(f64::NEG_INFINITY)), "");
        assert_eq!(csv_f64(None), "");
        assert_eq!(csv_f64(Some(2.25)), "2.25");
    }
}
