//! Run-level measurements collected by the simulator.

use std::collections::BTreeMap;

use metrics::{Cdf, ClassTally, OnlineStats, SampleSet};

use crate::simulation::RingCacheStats;
use crate::{PeerClass, SessionKind};

/// Everything a finished simulation run reports.
///
/// All quantities map directly onto the paper's figures:
///
/// * mean download time per peer class (Figures 4, 6, 9, 12) and their ratio
///   (Figure 11);
/// * the fraction of sessions that are exchange transfers (Figure 5);
/// * per-session transferred bytes and waiting times broken down by session
///   type (Figures 7 and 8);
/// * per-peer downloaded volume by class (Figure 10).
#[derive(Debug, Clone)]
pub struct SimReport {
    download_time_min: ClassTally<PeerClass>,
    waiting_secs: BTreeMap<SessionKind, SampleSet>,
    session_bytes: BTreeMap<SessionKind, SampleSet>,
    session_counts: BTreeMap<SessionKind, u64>,
    volume_per_peer_mb: ClassTally<PeerClass>,
    completed_downloads: u64,
    rings_formed: BTreeMap<usize, u64>,
    token_declines: u64,
    rings_dissolved_at_activation: u64,
    preemptions: u64,
    ring_cache: RingCacheStats,
    sim_seconds: f64,
    peers: usize,
}

impl SimReport {
    /// Creates an empty report for a run over `peers` peers.
    #[must_use]
    pub fn new(peers: usize) -> Self {
        SimReport {
            download_time_min: ClassTally::new(),
            waiting_secs: BTreeMap::new(),
            session_bytes: BTreeMap::new(),
            session_counts: BTreeMap::new(),
            volume_per_peer_mb: ClassTally::new(),
            completed_downloads: 0,
            rings_formed: BTreeMap::new(),
            token_declines: 0,
            rings_dissolved_at_activation: 0,
            preemptions: 0,
            ring_cache: RingCacheStats::default(),
            sim_seconds: 0.0,
            peers,
        }
    }

    // ---- recording (used by the simulator) ---------------------------------

    /// Records one completed download by a peer of `class`, in minutes.
    pub fn record_download(&mut self, class: PeerClass, minutes: f64) {
        self.download_time_min.record(class, minutes);
        self.completed_downloads += 1;
    }

    /// Records the waiting time (request → first byte of a session) of one
    /// session of the given kind.
    pub fn record_waiting(&mut self, kind: SessionKind, seconds: f64) {
        self.waiting_secs
            .entry(kind)
            .or_insert_with(|| SampleSet::with_capacity(200_000))
            .record(seconds);
    }

    /// Records a finished session: its kind and the bytes it carried.
    pub fn record_session(&mut self, kind: SessionKind, bytes: u64) {
        self.session_bytes
            .entry(kind)
            .or_insert_with(|| SampleSet::with_capacity(200_000))
            .record(bytes as f64);
        *self.session_counts.entry(kind).or_insert(0) += 1;
    }

    /// Records the activation of an exchange ring of `size` peers.
    pub fn record_ring(&mut self, size: usize) {
        *self.rings_formed.entry(size).or_insert(0) += 1;
    }

    /// Records a ring proposal that failed token validation.
    pub fn record_token_decline(&mut self) {
        self.token_declines += 1;
    }

    /// Records a ring that passed token validation but fell apart while its
    /// transfers were being activated (a member became infeasible in
    /// between).  Kept separate from token declines so the Fig. 5/6 failure
    /// statistics do not conflate the two modes.
    pub fn record_ring_dissolved_at_activation(&mut self) {
        self.rings_dissolved_at_activation += 1;
    }

    /// Records the preemption of a non-exchange upload.
    pub fn record_preemption(&mut self) {
        self.preemptions += 1;
    }

    /// Records one peer's total downloaded volume at the end of the run.
    pub fn record_peer_volume(&mut self, class: PeerClass, downloaded_bytes: u64) {
        self.volume_per_peer_mb
            .record(class, downloaded_bytes as f64 / (1024.0 * 1024.0));
    }

    /// Stamps the virtual duration the run actually covered.
    pub fn set_sim_seconds(&mut self, seconds: f64) {
        self.sim_seconds = seconds;
    }

    /// Stamps the ring-candidate cache counters of the finished run.
    pub fn set_ring_cache_stats(&mut self, stats: RingCacheStats) {
        self.ring_cache = stats;
    }

    // ---- queries (used by figures, examples and tests) ---------------------

    /// Number of peers in the run.
    #[must_use]
    pub fn peers(&self) -> usize {
        self.peers
    }

    /// Virtual seconds the run covered.
    #[must_use]
    pub fn sim_seconds(&self) -> f64 {
        self.sim_seconds
    }

    /// Number of downloads completed across all peers.
    #[must_use]
    pub fn completed_downloads(&self) -> u64 {
        self.completed_downloads
    }

    /// Mean download time in minutes for a peer class, if any download of
    /// that class completed.
    #[must_use]
    pub fn mean_download_time_min(&self, class: PeerClass) -> Option<f64> {
        self.download_time_min.mean(&class)
    }

    /// Download-time statistics per class.
    #[must_use]
    pub fn download_time_stats(&self, class: PeerClass) -> Option<&OnlineStats> {
        self.download_time_min.get(&class)
    }

    /// Ratio of non-sharing to sharing mean download time (> 1 means sharers
    /// are better off), if both classes completed downloads.
    #[must_use]
    pub fn download_time_ratio(&self) -> Option<f64> {
        self.download_time_min
            .ratio(PeerClass::NonSharing, PeerClass::Sharing)
    }

    /// Fraction of all sessions that were exchange transfers (Figure 5).
    #[must_use]
    pub fn exchange_session_fraction(&self) -> f64 {
        let total: u64 = self.session_counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        let exchange: u64 = self
            .session_counts
            .iter()
            .filter(|(k, _)| k.is_exchange())
            .map(|(_, c)| *c)
            .sum();
        exchange as f64 / total as f64
    }

    /// Number of sessions of each kind.
    #[must_use]
    pub fn session_counts(&self) -> &BTreeMap<SessionKind, u64> {
        &self.session_counts
    }

    /// Total number of sessions of any kind.
    #[must_use]
    pub fn total_sessions(&self) -> u64 {
        self.session_counts.values().sum()
    }

    /// Empirical CDF of bytes carried per session of `kind` (Figure 7).
    #[must_use]
    pub fn session_bytes_cdf(&self, kind: SessionKind) -> Option<Cdf> {
        self.session_bytes.get(&kind).map(SampleSet::cdf)
    }

    /// Mean bytes carried per session of `kind`.
    #[must_use]
    pub fn mean_session_bytes(&self, kind: SessionKind) -> Option<f64> {
        self.session_bytes.get(&kind).map(SampleSet::mean)
    }

    /// Empirical CDF of waiting times (seconds) per session of `kind`
    /// (Figure 8).
    #[must_use]
    pub fn waiting_cdf(&self, kind: SessionKind) -> Option<Cdf> {
        self.waiting_secs.get(&kind).map(SampleSet::cdf)
    }

    /// Mean waiting time in seconds per session of `kind`.
    #[must_use]
    pub fn mean_waiting_secs(&self, kind: SessionKind) -> Option<f64> {
        self.waiting_secs.get(&kind).map(SampleSet::mean)
    }

    /// The session kinds observed during the run, in deterministic order.
    #[must_use]
    pub fn observed_kinds(&self) -> Vec<SessionKind> {
        self.session_counts.keys().copied().collect()
    }

    /// Mean downloaded volume per peer of `class`, in megabytes (Figure 10).
    #[must_use]
    pub fn mean_volume_per_peer_mb(&self, class: PeerClass) -> Option<f64> {
        self.volume_per_peer_mb.mean(&class)
    }

    /// How many rings of each size were activated.
    #[must_use]
    pub fn rings_formed(&self) -> &BTreeMap<usize, u64> {
        &self.rings_formed
    }

    /// Total number of rings activated.
    #[must_use]
    pub fn total_rings(&self) -> u64 {
        self.rings_formed.values().sum()
    }

    /// Number of ring proposals rejected during token circulation.
    #[must_use]
    pub fn token_declines(&self) -> u64 {
        self.token_declines
    }

    /// Number of rings that dissolved during activation, after passing token
    /// validation.
    #[must_use]
    pub fn rings_dissolved_at_activation(&self) -> u64 {
        self.rings_dissolved_at_activation
    }

    /// Hit/miss/invalidation counters of the ring-candidate cache over the
    /// run (all zero when the cache was disabled).
    #[must_use]
    pub fn ring_cache_stats(&self) -> RingCacheStats {
        self.ring_cache
    }

    /// Number of non-exchange uploads preempted by exchanges.
    #[must_use]
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_neutral() {
        let r = SimReport::new(10);
        assert_eq!(r.peers(), 10);
        assert_eq!(r.completed_downloads(), 0);
        assert_eq!(r.exchange_session_fraction(), 0.0);
        assert!(r.mean_download_time_min(PeerClass::Sharing).is_none());
        assert!(r.download_time_ratio().is_none());
        assert_eq!(r.total_sessions(), 0);
        assert_eq!(r.total_rings(), 0);
    }

    #[test]
    fn download_metrics_accumulate() {
        let mut r = SimReport::new(2);
        r.record_download(PeerClass::Sharing, 10.0);
        r.record_download(PeerClass::Sharing, 20.0);
        r.record_download(PeerClass::NonSharing, 60.0);
        assert_eq!(r.completed_downloads(), 3);
        assert_eq!(r.mean_download_time_min(PeerClass::Sharing), Some(15.0));
        assert_eq!(r.download_time_ratio(), Some(4.0));
        assert!(r.download_time_stats(PeerClass::Sharing).is_some());
    }

    #[test]
    fn session_fraction_counts_exchanges() {
        let mut r = SimReport::new(2);
        r.record_session(SessionKind::NonExchange, 100);
        r.record_session(SessionKind::Exchange { ring_size: 2 }, 200);
        r.record_session(SessionKind::Exchange { ring_size: 3 }, 300);
        r.record_session(SessionKind::Exchange { ring_size: 2 }, 400);
        assert_eq!(r.total_sessions(), 4);
        assert!((r.exchange_session_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(
            r.session_counts()[&SessionKind::Exchange { ring_size: 2 }],
            2
        );
        assert_eq!(r.observed_kinds().len(), 3);
    }

    #[test]
    fn cdfs_reflect_recorded_samples() {
        let mut r = SimReport::new(2);
        for b in [100.0, 200.0, 300.0] {
            r.record_session(SessionKind::NonExchange, b as u64);
        }
        r.record_waiting(SessionKind::NonExchange, 5.0);
        r.record_waiting(SessionKind::NonExchange, 15.0);
        let bytes = r.session_bytes_cdf(SessionKind::NonExchange).unwrap();
        assert_eq!(bytes.len(), 3);
        let waits = r.waiting_cdf(SessionKind::NonExchange).unwrap();
        assert_eq!(waits.len(), 2);
        assert_eq!(r.mean_waiting_secs(SessionKind::NonExchange), Some(10.0));
        assert!(r
            .session_bytes_cdf(SessionKind::Exchange { ring_size: 2 })
            .is_none());
        assert_eq!(r.mean_session_bytes(SessionKind::NonExchange), Some(200.0));
    }

    #[test]
    fn ring_and_preemption_counters() {
        let mut r = SimReport::new(2);
        r.record_ring(2);
        r.record_ring(2);
        r.record_ring(4);
        r.record_token_decline();
        r.record_ring_dissolved_at_activation();
        r.record_ring_dissolved_at_activation();
        r.record_preemption();
        assert_eq!(r.total_rings(), 3);
        assert_eq!(r.rings_formed()[&2], 2);
        assert_eq!(r.token_declines(), 1);
        assert_eq!(r.rings_dissolved_at_activation(), 2);
        assert_eq!(r.preemptions(), 1);
    }

    #[test]
    fn ring_cache_stats_are_stamped() {
        let mut r = SimReport::new(2);
        assert_eq!(r.ring_cache_stats(), RingCacheStats::default());
        let stats = RingCacheStats {
            hits: 5,
            misses: 2,
            invalidations: 1,
        };
        r.set_ring_cache_stats(stats);
        assert_eq!(r.ring_cache_stats(), stats);
    }

    #[test]
    fn per_peer_volume_by_class() {
        let mut r = SimReport::new(2);
        r.record_peer_volume(PeerClass::Sharing, 100 * 1024 * 1024);
        r.record_peer_volume(PeerClass::NonSharing, 10 * 1024 * 1024);
        assert_eq!(r.mean_volume_per_peer_mb(PeerClass::Sharing), Some(100.0));
        assert_eq!(r.mean_volume_per_peer_mb(PeerClass::NonSharing), Some(10.0));
        r.set_sim_seconds(3_600.0);
        assert_eq!(r.sim_seconds(), 3_600.0);
    }
}
