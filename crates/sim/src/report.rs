//! Run-level measurements collected by the simulator.

use std::collections::BTreeMap;

use metrics::{Cdf, ClassTally, OnlineStats, SampleSet};

use crate::simulation::RingCacheStats;
use crate::{BehaviorKind, CapacityClass, PeerClass, SessionEnd, SessionKind};

/// Per-behavior measurements of one run: what each strategic population
/// contributed, gained, and got caught doing (the paper's Section III-B
/// question: how much does each cheater gain under a given scheduler ×
/// protection combination?).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BehaviorStats {
    /// Number of peers with this behavior.
    pub peers: usize,
    /// Total bytes uploaded by these peers (junk and relays included).
    pub uploaded_bytes: u64,
    /// Total bytes downloaded by these peers, of any quality.
    pub downloaded_bytes: u64,
    /// Downloaded bytes that turned out to be junk.
    pub junk_bytes: u64,
    /// Downloaded bytes these peers can never decrypt (middlemen under
    /// [`crate::Protection::Mediated`]).
    pub ciphertext_bytes: u64,
    /// Downloads completed as genuine, usable objects.
    pub completed_downloads: u64,
    /// Downloads that completed as undecryptable ciphertext (not counted in
    /// `completed_downloads` or the class download-time statistics).
    pub ciphertext_downloads: u64,
    /// Times an uploader of this behavior was caught serving junk.
    pub cheat_detections: u64,
    /// Download-time statistics (minutes) of the usable completions.
    pub download_time_min: OnlineStats,
}

impl BehaviorStats {
    /// Downloaded bytes that are genuine, decryptable content.
    #[must_use]
    pub fn usable_bytes(&self) -> u64 {
        self.downloaded_bytes
            .saturating_sub(self.junk_bytes)
            .saturating_sub(self.ciphertext_bytes)
    }

    /// Mean usable megabytes downloaded per peer of this behavior, if any
    /// peers carry it.
    #[must_use]
    pub fn mean_usable_mb_per_peer(&self) -> Option<f64> {
        if self.peers == 0 {
            return None;
        }
        Some(self.usable_bytes() as f64 / (1024.0 * 1024.0) / self.peers as f64)
    }

    /// Mean download time in minutes of the usable completions, if any.
    #[must_use]
    pub fn mean_download_time_min(&self) -> Option<f64> {
        if self.download_time_min.is_empty() {
            None
        } else {
            Some(self.download_time_min.mean())
        }
    }
}

/// Everything a finished simulation run reports.
///
/// All quantities map directly onto the paper's figures:
///
/// * mean download time per peer class (Figures 4, 6, 9, 12) and their ratio
///   (Figure 11);
/// * the fraction of sessions that are exchange transfers (Figure 5);
/// * per-session transferred bytes and waiting times broken down by session
///   type (Figures 7 and 8);
/// * per-peer downloaded volume by class (Figure 10);
/// * per-behavior gains, losses and cheat detections (Section III-B), via
///   [`SimReport::behavior_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    download_time_min: ClassTally<PeerClass>,
    /// Download-time samples per capacity class — the per-class fairness
    /// distributions (the Fig. 7/8-style CDFs under heterogeneous links).
    capacity_download_min: BTreeMap<CapacityClass, SampleSet>,
    waiting_secs: BTreeMap<SessionKind, SampleSet>,
    session_bytes: BTreeMap<SessionKind, SampleSet>,
    session_counts: BTreeMap<SessionKind, u64>,
    session_ends: BTreeMap<SessionEnd, u64>,
    volume_per_peer_mb: ClassTally<PeerClass>,
    behaviors: BTreeMap<BehaviorKind, BehaviorStats>,
    completed_downloads: u64,
    rings_formed: BTreeMap<usize, u64>,
    token_declines: u64,
    rings_dissolved_at_activation: u64,
    preemptions: u64,
    ring_cache: RingCacheStats,
    sim_seconds: f64,
    peers: usize,
}

impl SimReport {
    /// Creates an empty report for a run over `peers` peers.
    #[must_use]
    pub fn new(peers: usize) -> Self {
        SimReport {
            download_time_min: ClassTally::new(),
            capacity_download_min: BTreeMap::new(),
            waiting_secs: BTreeMap::new(),
            session_bytes: BTreeMap::new(),
            session_counts: BTreeMap::new(),
            session_ends: BTreeMap::new(),
            volume_per_peer_mb: ClassTally::new(),
            behaviors: BTreeMap::new(),
            completed_downloads: 0,
            rings_formed: BTreeMap::new(),
            token_declines: 0,
            rings_dissolved_at_activation: 0,
            preemptions: 0,
            ring_cache: RingCacheStats::default(),
            sim_seconds: 0.0,
            peers,
        }
    }

    // ---- recording (used by the simulator) ---------------------------------

    /// Records one completed, usable download by a peer of `class`,
    /// `behavior` and `capacity`, in minutes.
    pub fn record_download(
        &mut self,
        class: PeerClass,
        behavior: BehaviorKind,
        capacity: CapacityClass,
        minutes: f64,
    ) {
        self.download_time_min.record(class, minutes);
        self.capacity_download_min
            .entry(capacity)
            .or_insert_with(|| SampleSet::with_capacity(200_000))
            .record(minutes);
        self.completed_downloads += 1;
        let stats = self.behaviors.entry(behavior).or_default();
        stats.completed_downloads += 1;
        stats.download_time_min.record(minutes);
    }

    /// Records a download that completed as undecryptable ciphertext (a
    /// middleman under [`crate::Protection::Mediated`]).  Kept out of the
    /// class download-time statistics: the peer assembled garbage.
    pub fn record_ciphertext_download(&mut self, behavior: BehaviorKind) {
        self.behaviors
            .entry(behavior)
            .or_default()
            .ciphertext_downloads += 1;
    }

    /// Records that an uploader of `behavior` was caught serving junk.
    pub fn record_cheat_detection(&mut self, behavior: BehaviorKind) {
        self.behaviors.entry(behavior).or_default().cheat_detections += 1;
    }

    /// Records one peer's end-of-run byte totals under its behavior.
    pub fn record_peer_behavior_totals(
        &mut self,
        behavior: BehaviorKind,
        uploaded_bytes: u64,
        downloaded_bytes: u64,
        junk_bytes: u64,
        ciphertext_bytes: u64,
    ) {
        let stats = self.behaviors.entry(behavior).or_default();
        stats.peers += 1;
        stats.uploaded_bytes += uploaded_bytes;
        stats.downloaded_bytes += downloaded_bytes;
        stats.junk_bytes += junk_bytes;
        stats.ciphertext_bytes += ciphertext_bytes;
    }

    /// Records the waiting time (request → first byte of a session) of one
    /// session of the given kind.
    pub fn record_waiting(&mut self, kind: SessionKind, seconds: f64) {
        self.waiting_secs
            .entry(kind)
            .or_insert_with(|| SampleSet::with_capacity(200_000))
            .record(seconds);
    }

    /// Records a finished session: its kind, the bytes it carried, and why
    /// it ended.
    pub fn record_session(&mut self, kind: SessionKind, bytes: u64, end: SessionEnd) {
        self.session_bytes
            .entry(kind)
            .or_insert_with(|| SampleSet::with_capacity(200_000))
            .record(bytes as f64);
        *self.session_counts.entry(kind).or_insert(0) += 1;
        *self.session_ends.entry(end).or_insert(0) += 1;
    }

    /// Records the activation of an exchange ring of `size` peers.
    pub fn record_ring(&mut self, size: usize) {
        *self.rings_formed.entry(size).or_insert(0) += 1;
    }

    /// Records a ring proposal that failed token validation.
    pub fn record_token_decline(&mut self) {
        self.token_declines += 1;
    }

    /// Records a ring that passed token validation but fell apart while its
    /// transfers were being activated (a member became infeasible in
    /// between).  Kept separate from token declines so the Fig. 5/6 failure
    /// statistics do not conflate the two modes.
    pub fn record_ring_dissolved_at_activation(&mut self) {
        self.rings_dissolved_at_activation += 1;
    }

    /// Records the preemption of a non-exchange upload.
    pub fn record_preemption(&mut self) {
        self.preemptions += 1;
    }

    /// Records one peer's total downloaded volume at the end of the run.
    pub fn record_peer_volume(&mut self, class: PeerClass, downloaded_bytes: u64) {
        self.volume_per_peer_mb
            .record(class, downloaded_bytes as f64 / (1024.0 * 1024.0));
    }

    /// Stamps the virtual duration the run actually covered.
    pub fn set_sim_seconds(&mut self, seconds: f64) {
        self.sim_seconds = seconds;
    }

    /// Stamps the ring-candidate cache counters of the finished run.
    pub fn set_ring_cache_stats(&mut self, stats: RingCacheStats) {
        self.ring_cache = stats;
    }

    // ---- queries (used by figures, examples and tests) ---------------------

    /// Number of peers in the run.
    #[must_use]
    pub fn peers(&self) -> usize {
        self.peers
    }

    /// Virtual seconds the run covered.
    #[must_use]
    pub fn sim_seconds(&self) -> f64 {
        self.sim_seconds
    }

    /// Number of downloads completed across all peers.
    #[must_use]
    pub fn completed_downloads(&self) -> u64 {
        self.completed_downloads
    }

    /// Mean download time in minutes for a peer class, if any download of
    /// that class completed.
    #[must_use]
    pub fn mean_download_time_min(&self, class: PeerClass) -> Option<f64> {
        self.download_time_min.mean(&class)
    }

    /// Download-time statistics per class.
    #[must_use]
    pub fn download_time_stats(&self, class: PeerClass) -> Option<&OnlineStats> {
        self.download_time_min.get(&class)
    }

    /// Ratio of non-sharing to sharing mean download time (> 1 means sharers
    /// are better off), if both classes completed downloads.
    #[must_use]
    pub fn download_time_ratio(&self) -> Option<f64> {
        self.download_time_min
            .ratio(PeerClass::NonSharing, PeerClass::Sharing)
    }

    /// Fraction of all sessions that were exchange transfers (Figure 5).
    #[must_use]
    pub fn exchange_session_fraction(&self) -> f64 {
        let total: u64 = self.session_counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        let exchange: u64 = self
            .session_counts
            .iter()
            .filter(|(k, _)| k.is_exchange())
            .map(|(_, c)| *c)
            .sum();
        exchange as f64 / total as f64
    }

    /// Number of sessions of each kind.
    #[must_use]
    pub fn session_counts(&self) -> &BTreeMap<SessionKind, u64> {
        &self.session_counts
    }

    /// Total number of sessions of any kind.
    #[must_use]
    pub fn total_sessions(&self) -> u64 {
        self.session_counts.values().sum()
    }

    /// Empirical CDF of bytes carried per session of `kind` (Figure 7).
    #[must_use]
    pub fn session_bytes_cdf(&self, kind: SessionKind) -> Option<Cdf> {
        self.session_bytes.get(&kind).map(SampleSet::cdf)
    }

    /// Mean bytes carried per session of `kind`.
    #[must_use]
    pub fn mean_session_bytes(&self, kind: SessionKind) -> Option<f64> {
        self.session_bytes.get(&kind).map(SampleSet::mean)
    }

    /// Empirical CDF of waiting times (seconds) per session of `kind`
    /// (Figure 8).
    #[must_use]
    pub fn waiting_cdf(&self, kind: SessionKind) -> Option<Cdf> {
        self.waiting_secs.get(&kind).map(SampleSet::cdf)
    }

    /// Mean waiting time in seconds per session of `kind`.
    #[must_use]
    pub fn mean_waiting_secs(&self, kind: SessionKind) -> Option<f64> {
        self.waiting_secs.get(&kind).map(SampleSet::mean)
    }

    /// The session kinds observed during the run, in deterministic order.
    #[must_use]
    pub fn observed_kinds(&self) -> Vec<SessionKind> {
        self.session_counts.keys().copied().collect()
    }

    /// The capacity classes that completed at least one usable download, in
    /// deterministic (Fast < Medium < Slow) order.
    #[must_use]
    pub fn observed_capacity_classes(&self) -> Vec<CapacityClass> {
        self.capacity_download_min.keys().copied().collect()
    }

    /// Empirical CDF of download times (minutes) for peers of capacity
    /// `class` — the per-class fairness distribution.
    #[must_use]
    pub fn capacity_fairness_cdf(&self, class: CapacityClass) -> Option<Cdf> {
        self.capacity_download_min.get(&class).map(SampleSet::cdf)
    }

    /// Mean download time in minutes of capacity `class`, if it completed
    /// any downloads.
    #[must_use]
    pub fn mean_download_time_by_capacity(&self, class: CapacityClass) -> Option<f64> {
        self.capacity_download_min.get(&class).map(SampleSet::mean)
    }

    /// The `p`-th percentile (nearest-rank, `0.0..=1.0`) of capacity
    /// `class`'s download times in minutes — the quantiles the fairness
    /// exports publish.
    #[must_use]
    pub fn capacity_download_percentile(&self, class: CapacityClass, p: f64) -> Option<f64> {
        self.capacity_fairness_cdf(class)
            .map(|cdf| cdf.percentile(p))
    }

    /// Mean downloaded volume per peer of `class`, in megabytes (Figure 10).
    #[must_use]
    pub fn mean_volume_per_peer_mb(&self, class: PeerClass) -> Option<f64> {
        self.volume_per_peer_mb.mean(&class)
    }

    /// How many rings of each size were activated.
    #[must_use]
    pub fn rings_formed(&self) -> &BTreeMap<usize, u64> {
        &self.rings_formed
    }

    /// Total number of rings activated.
    #[must_use]
    pub fn total_rings(&self) -> u64 {
        self.rings_formed.values().sum()
    }

    /// Number of ring proposals rejected during token circulation.
    #[must_use]
    pub fn token_declines(&self) -> u64 {
        self.token_declines
    }

    /// Number of rings that dissolved during activation, after passing token
    /// validation.
    #[must_use]
    pub fn rings_dissolved_at_activation(&self) -> u64 {
        self.rings_dissolved_at_activation
    }

    /// Hit/miss/invalidation counters of the ring-candidate cache over the
    /// run (all zero when the cache was disabled).
    #[must_use]
    pub fn ring_cache_stats(&self) -> RingCacheStats {
        self.ring_cache
    }

    /// Number of non-exchange uploads preempted by exchanges.
    #[must_use]
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// The per-behavior breakdown of the run, keyed by [`BehaviorKind`].
    #[must_use]
    pub fn behavior_breakdown(&self) -> &BTreeMap<BehaviorKind, BehaviorStats> {
        &self.behaviors
    }

    /// The stats of one behavior, if any peer carried it.
    #[must_use]
    pub fn behavior_stats(&self, behavior: BehaviorKind) -> Option<&BehaviorStats> {
        self.behaviors.get(&behavior)
    }

    /// Mean usable megabytes downloaded per peer of `behavior` — the
    /// quantity Section III-B's attacks try to maximise.
    #[must_use]
    pub fn mean_usable_mb_per_peer(&self, behavior: BehaviorKind) -> Option<f64> {
        self.behaviors
            .get(&behavior)
            .and_then(BehaviorStats::mean_usable_mb_per_peer)
    }

    /// Total times a cheating uploader was caught, across behaviors.
    #[must_use]
    pub fn cheat_detections(&self) -> u64 {
        self.behaviors.values().map(|s| s.cheat_detections).sum()
    }

    /// How many recorded sessions ended for each reason.
    #[must_use]
    pub fn session_end_counts(&self) -> &BTreeMap<SessionEnd, u64> {
        &self.session_ends
    }

    // ---- checkpointing (crate-internal) ------------------------------------

    /// Clones every accumulator into an owned bundle for the snapshot
    /// serializer.  `SimReport` lives outside the `simulation` module tree,
    /// so the snapshot code cannot reach its private fields directly.
    pub(crate) fn to_parts(&self) -> ReportParts {
        ReportParts {
            download_time_min: self.download_time_min.clone(),
            capacity_download_min: self.capacity_download_min.clone(),
            waiting_secs: self.waiting_secs.clone(),
            session_bytes: self.session_bytes.clone(),
            session_counts: self.session_counts.clone(),
            session_ends: self.session_ends.clone(),
            volume_per_peer_mb: self.volume_per_peer_mb.clone(),
            behaviors: self.behaviors.clone(),
            completed_downloads: self.completed_downloads,
            rings_formed: self.rings_formed.clone(),
            token_declines: self.token_declines,
            rings_dissolved_at_activation: self.rings_dissolved_at_activation,
            preemptions: self.preemptions,
            ring_cache: self.ring_cache,
            sim_seconds: self.sim_seconds,
            peers: self.peers,
        }
    }

    /// Rebuilds a report from a deserialized bundle.
    pub(crate) fn from_parts(parts: ReportParts) -> Self {
        SimReport {
            download_time_min: parts.download_time_min,
            capacity_download_min: parts.capacity_download_min,
            waiting_secs: parts.waiting_secs,
            session_bytes: parts.session_bytes,
            session_counts: parts.session_counts,
            session_ends: parts.session_ends,
            volume_per_peer_mb: parts.volume_per_peer_mb,
            behaviors: parts.behaviors,
            completed_downloads: parts.completed_downloads,
            rings_formed: parts.rings_formed,
            token_declines: parts.token_declines,
            rings_dissolved_at_activation: parts.rings_dissolved_at_activation,
            preemptions: parts.preemptions,
            ring_cache: parts.ring_cache,
            sim_seconds: parts.sim_seconds,
            peers: parts.peers,
        }
    }
}

/// The owned field bundle behind [`SimReport::to_parts`] /
/// [`SimReport::from_parts`] — the snapshot module serializes these fields
/// one by one.
pub(crate) struct ReportParts {
    pub(crate) download_time_min: ClassTally<PeerClass>,
    pub(crate) capacity_download_min: BTreeMap<CapacityClass, SampleSet>,
    pub(crate) waiting_secs: BTreeMap<SessionKind, SampleSet>,
    pub(crate) session_bytes: BTreeMap<SessionKind, SampleSet>,
    pub(crate) session_counts: BTreeMap<SessionKind, u64>,
    pub(crate) session_ends: BTreeMap<SessionEnd, u64>,
    pub(crate) volume_per_peer_mb: ClassTally<PeerClass>,
    pub(crate) behaviors: BTreeMap<BehaviorKind, BehaviorStats>,
    pub(crate) completed_downloads: u64,
    pub(crate) rings_formed: BTreeMap<usize, u64>,
    pub(crate) token_declines: u64,
    pub(crate) rings_dissolved_at_activation: u64,
    pub(crate) preemptions: u64,
    pub(crate) ring_cache: RingCacheStats,
    pub(crate) sim_seconds: f64,
    pub(crate) peers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_neutral() {
        let r = SimReport::new(10);
        assert_eq!(r.peers(), 10);
        assert_eq!(r.completed_downloads(), 0);
        assert_eq!(r.exchange_session_fraction(), 0.0);
        assert!(r.mean_download_time_min(PeerClass::Sharing).is_none());
        assert!(r.download_time_ratio().is_none());
        assert_eq!(r.total_sessions(), 0);
        assert_eq!(r.total_rings(), 0);
    }

    #[test]
    fn download_metrics_accumulate() {
        let mut r = SimReport::new(2);
        r.record_download(
            PeerClass::Sharing,
            BehaviorKind::Honest,
            CapacityClass::Fast,
            10.0,
        );
        r.record_download(
            PeerClass::Sharing,
            BehaviorKind::Honest,
            CapacityClass::Fast,
            20.0,
        );
        r.record_download(
            PeerClass::NonSharing,
            BehaviorKind::FreeRider,
            CapacityClass::Slow,
            60.0,
        );
        assert_eq!(r.completed_downloads(), 3);
        assert_eq!(r.mean_download_time_min(PeerClass::Sharing), Some(15.0));
        assert_eq!(r.download_time_ratio(), Some(4.0));
        assert!(r.download_time_stats(PeerClass::Sharing).is_some());
    }

    #[test]
    fn capacity_fairness_distributions_split_by_class() {
        let mut r = SimReport::new(3);
        for minutes in [10.0, 20.0, 30.0] {
            r.record_download(
                PeerClass::Sharing,
                BehaviorKind::Honest,
                CapacityClass::Fast,
                minutes,
            );
        }
        r.record_download(
            PeerClass::Sharing,
            BehaviorKind::Honest,
            CapacityClass::Slow,
            90.0,
        );
        assert_eq!(
            r.observed_capacity_classes(),
            vec![CapacityClass::Fast, CapacityClass::Slow]
        );
        assert_eq!(
            r.mean_download_time_by_capacity(CapacityClass::Fast),
            Some(20.0)
        );
        let cdf = r.capacity_fairness_cdf(CapacityClass::Fast).unwrap();
        assert_eq!(cdf.len(), 3);
        assert_eq!(
            r.capacity_download_percentile(CapacityClass::Fast, 0.5),
            Some(20.0)
        );
        assert_eq!(
            r.capacity_download_percentile(CapacityClass::Slow, 0.9),
            Some(90.0)
        );
        assert!(r.capacity_fairness_cdf(CapacityClass::Medium).is_none());
        assert!(r
            .mean_download_time_by_capacity(CapacityClass::Medium)
            .is_none());
    }

    #[test]
    fn session_fraction_counts_exchanges() {
        let mut r = SimReport::new(2);
        r.record_session(SessionKind::NonExchange, 100, SessionEnd::DownloadComplete);
        r.record_session(
            SessionKind::Exchange { ring_size: 2 },
            200,
            SessionEnd::DownloadComplete,
        );
        r.record_session(
            SessionKind::Exchange { ring_size: 3 },
            300,
            SessionEnd::DownloadComplete,
        );
        r.record_session(
            SessionKind::Exchange { ring_size: 2 },
            400,
            SessionEnd::DownloadComplete,
        );
        assert_eq!(r.total_sessions(), 4);
        assert!((r.exchange_session_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(
            r.session_counts()[&SessionKind::Exchange { ring_size: 2 }],
            2
        );
        assert_eq!(r.observed_kinds().len(), 3);
    }

    #[test]
    fn cdfs_reflect_recorded_samples() {
        let mut r = SimReport::new(2);
        for b in [100.0, 200.0, 300.0] {
            r.record_session(
                SessionKind::NonExchange,
                b as u64,
                SessionEnd::DownloadComplete,
            );
        }
        r.record_waiting(SessionKind::NonExchange, 5.0);
        r.record_waiting(SessionKind::NonExchange, 15.0);
        let bytes = r.session_bytes_cdf(SessionKind::NonExchange).unwrap();
        assert_eq!(bytes.len(), 3);
        let waits = r.waiting_cdf(SessionKind::NonExchange).unwrap();
        assert_eq!(waits.len(), 2);
        assert_eq!(r.mean_waiting_secs(SessionKind::NonExchange), Some(10.0));
        assert!(r
            .session_bytes_cdf(SessionKind::Exchange { ring_size: 2 })
            .is_none());
        assert_eq!(r.mean_session_bytes(SessionKind::NonExchange), Some(200.0));
    }

    #[test]
    fn ring_and_preemption_counters() {
        let mut r = SimReport::new(2);
        r.record_ring(2);
        r.record_ring(2);
        r.record_ring(4);
        r.record_token_decline();
        r.record_ring_dissolved_at_activation();
        r.record_ring_dissolved_at_activation();
        r.record_preemption();
        assert_eq!(r.total_rings(), 3);
        assert_eq!(r.rings_formed()[&2], 2);
        assert_eq!(r.token_declines(), 1);
        assert_eq!(r.rings_dissolved_at_activation(), 2);
        assert_eq!(r.preemptions(), 1);
    }

    #[test]
    fn ring_cache_stats_are_stamped() {
        let mut r = SimReport::new(2);
        assert_eq!(r.ring_cache_stats(), RingCacheStats::default());
        let stats = RingCacheStats {
            hits: 5,
            misses: 2,
            invalidations: 1,
        };
        r.set_ring_cache_stats(stats);
        assert_eq!(r.ring_cache_stats(), stats);
    }

    #[test]
    fn per_peer_volume_by_class() {
        let mut r = SimReport::new(2);
        r.record_peer_volume(PeerClass::Sharing, 100 * 1024 * 1024);
        r.record_peer_volume(PeerClass::NonSharing, 10 * 1024 * 1024);
        assert_eq!(r.mean_volume_per_peer_mb(PeerClass::Sharing), Some(100.0));
        assert_eq!(r.mean_volume_per_peer_mb(PeerClass::NonSharing), Some(10.0));
        r.set_sim_seconds(3_600.0);
        assert_eq!(r.sim_seconds(), 3_600.0);
    }

    #[test]
    fn behavior_breakdown_accumulates_gains_and_detections() {
        let mut r = SimReport::new(3);
        let mb = 1024 * 1024;
        r.record_peer_behavior_totals(BehaviorKind::Middleman, 5 * mb, 10 * mb, 0, 4 * mb);
        r.record_peer_behavior_totals(BehaviorKind::Honest, 20 * mb, 8 * mb, 2 * mb, 0);
        r.record_peer_behavior_totals(BehaviorKind::Honest, 0, 0, 0, 0);
        r.record_cheat_detection(BehaviorKind::JunkSender);
        r.record_cheat_detection(BehaviorKind::JunkSender);
        r.record_ciphertext_download(BehaviorKind::Middleman);

        let middleman = r.behavior_stats(BehaviorKind::Middleman).unwrap();
        assert_eq!(middleman.peers, 1);
        assert_eq!(middleman.usable_bytes(), 6 * mb);
        assert_eq!(middleman.mean_usable_mb_per_peer(), Some(6.0));
        assert_eq!(middleman.ciphertext_downloads, 1);

        let honest = r.behavior_stats(BehaviorKind::Honest).unwrap();
        assert_eq!(honest.peers, 2);
        assert_eq!(honest.usable_bytes(), 6 * mb);
        assert_eq!(r.mean_usable_mb_per_peer(BehaviorKind::Honest), Some(3.0));

        assert_eq!(r.cheat_detections(), 2);
        assert_eq!(
            r.behavior_stats(BehaviorKind::JunkSender)
                .unwrap()
                .cheat_detections,
            2
        );
        assert!(r.behavior_stats(BehaviorKind::FreeRider).is_none());
        assert_eq!(r.behavior_breakdown().len(), 3);
    }

    #[test]
    fn session_ends_are_counted_per_reason() {
        let mut r = SimReport::new(2);
        r.record_session(SessionKind::NonExchange, 10, SessionEnd::DownloadComplete);
        r.record_session(
            SessionKind::Exchange { ring_size: 2 },
            20,
            SessionEnd::CheatDetected,
        );
        r.record_session(
            SessionKind::Exchange { ring_size: 2 },
            30,
            SessionEnd::RingDissolved,
        );
        assert_eq!(r.session_end_counts()[&SessionEnd::CheatDetected], 1);
        assert_eq!(r.session_end_counts()[&SessionEnd::RingDissolved], 1);
        assert!(!r.session_end_counts().contains_key(&SessionEnd::Preempted));
    }

    #[test]
    fn download_times_split_by_behavior() {
        let mut r = SimReport::new(2);
        r.record_download(
            PeerClass::Sharing,
            BehaviorKind::Honest,
            CapacityClass::Medium,
            10.0,
        );
        r.record_download(
            PeerClass::Sharing,
            BehaviorKind::JunkSender,
            CapacityClass::Medium,
            30.0,
        );
        let honest = r.behavior_stats(BehaviorKind::Honest).unwrap();
        assert_eq!(honest.mean_download_time_min(), Some(10.0));
        assert_eq!(honest.completed_downloads, 1);
        let junk = r.behavior_stats(BehaviorKind::JunkSender).unwrap();
        assert_eq!(junk.mean_download_time_min(), Some(30.0));
        // The class tally still aggregates both (both upload, hence Sharing).
        assert_eq!(r.mean_download_time_min(PeerClass::Sharing), Some(20.0));
    }
}
