//! Builder-style scenario engine: parallel config × seed sweeps.
//!
//! A [`Scenario`] starts from a base [`SimConfig`], varies any number of
//! [`Axis`] dimensions (the cartesian product forms the grid of
//! [`ScenarioPoint`]s), runs every point under every seed — in parallel
//! across OS threads — and returns a [`SweepGrid`] of uniform
//! `(point, seed, report)` rows with mean / confidence-interval aggregation.
//!
//! Every figure of the paper is one such scenario (see [`crate::experiment`]).

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

use credit::SchedulerKind;
use exchange::ExchangePolicy;
use metrics::OnlineStats;

use crate::{
    BehaviorMix, ChurnConfig, ClassMix, Protection, SimConfig, SimReport, SimSetup, Simulation,
};

/// A shared, composable configuration mutation used by [`Axis::custom`].
pub type ConfigSetter = Arc<dyn Fn(&mut SimConfig) + Send + Sync>;

/// One swept dimension of a [`Scenario`].
///
/// Each variant lists the values the dimension takes; the scenario grid is
/// the cartesian product of all axes in the order they were added.
pub enum Axis {
    /// Vary the per-peer upload capacity (Figures 4 and 5).
    UploadKbps(Vec<f64>),
    /// Vary the exchange discipline under test.
    Discipline(Vec<ExchangePolicy>),
    /// Vary the upload scheduler ordering non-exchange requests.
    Scheduler(Vec<SchedulerKind>),
    /// Vary the fraction of non-sharing peers (Figure 12).  Sugar for a
    /// two-entry [`Axis::Behaviors`] sweep.
    FreeriderFraction(Vec<f64>),
    /// Vary the weighted behavior population (Section III-B studies).
    Behaviors(Vec<BehaviorMix>),
    /// Vary the cheating countermeasure on the transfer path.
    Protection(Vec<Protection>),
    /// Vary the category/object popularity factor `f` (Figures 9 and 10).
    PopularityFactor(Vec<f64>),
    /// Vary the maximum number of outstanding requests (Figure 11).
    MaxPendingObjects(Vec<usize>),
    /// Vary how many categories each peer is interested in (Figure 11).
    CategoriesPerPeer(Vec<u32>),
    /// Vary the churn process (`None` disables churn; labelled `off`).
    Churn(Vec<Option<ChurnConfig>>),
    /// Vary the capacity-class population (Section IV churn/fairness
    /// studies).
    ClassMix(Vec<ClassMix>),
    /// An arbitrary named dimension built from labelled config mutations via
    /// [`Axis::custom`] and [`Axis::with_variant`].
    Custom {
        /// The dimension's name, used in point labels and lookups.
        name: String,
        /// The labelled mutations, one per value of the dimension.
        variants: Vec<(String, ConfigSetter)>,
    },
}

impl Axis {
    /// Starts an empty custom axis named `name`; add values with
    /// [`Axis::with_variant`].
    #[must_use]
    pub fn custom(name: impl Into<String>) -> Self {
        Axis::Custom {
            name: name.into(),
            variants: Vec::new(),
        }
    }

    /// Adds one labelled value to a custom axis.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-custom axis.
    #[must_use]
    pub fn with_variant(
        self,
        label: impl Into<String>,
        apply: impl Fn(&mut SimConfig) + Send + Sync + 'static,
    ) -> Self {
        match self {
            Axis::Custom { name, mut variants } => {
                variants.push((label.into(), Arc::new(apply)));
                Axis::Custom { name, variants }
            }
            _ => panic!("with_variant is only supported on Axis::custom axes"),
        }
    }

    /// The dimension's name as used in point labels and lookups.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Axis::UploadKbps(_) => "upload_kbps",
            Axis::Discipline(_) => "discipline",
            Axis::Scheduler(_) => "scheduler",
            Axis::FreeriderFraction(_) => "freerider_fraction",
            Axis::Behaviors(_) => "behaviors",
            Axis::Protection(_) => "protection",
            Axis::PopularityFactor(_) => "popularity_factor",
            Axis::MaxPendingObjects(_) => "max_pending",
            Axis::CategoriesPerPeer(_) => "categories_per_peer",
            Axis::Churn(_) => "churn",
            Axis::ClassMix(_) => "classes",
            Axis::Custom { name, .. } => name,
        }
    }

    /// Number of values this dimension takes.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Axis::UploadKbps(v) => v.len(),
            Axis::Discipline(v) => v.len(),
            Axis::Scheduler(v) => v.len(),
            Axis::FreeriderFraction(v) => v.len(),
            Axis::Behaviors(v) => v.len(),
            Axis::Protection(v) => v.len(),
            Axis::PopularityFactor(v) => v.len(),
            Axis::MaxPendingObjects(v) => v.len(),
            Axis::CategoriesPerPeer(v) => v.len(),
            Axis::Churn(v) => v.len(),
            Axis::ClassMix(v) => v.len(),
            Axis::Custom { variants, .. } => variants.len(),
        }
    }

    /// Whether the dimension has no values (such an axis is rejected by
    /// [`Scenario::run`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The display label of the `index`-th value.
    #[must_use]
    pub fn value_label(&self, index: usize) -> String {
        match self {
            Axis::UploadKbps(v) => format!("{}", v[index]),
            Axis::Discipline(v) => v[index].label(),
            Axis::Scheduler(v) => v[index].label().to_string(),
            Axis::FreeriderFraction(v) => format!("{}", v[index]),
            Axis::Behaviors(v) => v[index].label(),
            Axis::Protection(v) => v[index].label(),
            Axis::PopularityFactor(v) => format!("{}", v[index]),
            Axis::MaxPendingObjects(v) => v[index].to_string(),
            Axis::CategoriesPerPeer(v) => v[index].to_string(),
            Axis::Churn(v) => match &v[index] {
                Some(churn) => churn.label(),
                None => "off".to_string(),
            },
            Axis::ClassMix(v) => v[index].label(),
            Axis::Custom { variants, .. } => variants[index].0.clone(),
        }
    }

    /// Applies the `index`-th value to `config`.
    fn apply(&self, index: usize, config: &mut SimConfig) {
        match self {
            Axis::UploadKbps(v) => config.link = config.link.with_upload_kbps(v[index]),
            Axis::Discipline(v) => config.discipline = v[index],
            Axis::Scheduler(v) => config.scheduler = v[index],
            Axis::FreeriderFraction(v) => {
                config.behaviors = BehaviorMix::with_freeriders(v[index]);
            }
            Axis::Behaviors(v) => config.behaviors = v[index].clone(),
            Axis::Protection(v) => config.protection = v[index],
            Axis::PopularityFactor(v) => {
                config.workload.category_popularity_factor = v[index];
                config.workload.object_popularity_factor = v[index];
            }
            Axis::MaxPendingObjects(v) => config.max_pending_objects = v[index],
            Axis::CategoriesPerPeer(v) => {
                config.workload.categories_per_peer = (v[index], v[index]);
            }
            Axis::Churn(v) => config.churn = v[index].clone(),
            Axis::ClassMix(v) => config.classes = v[index].clone(),
            Axis::Custom { variants, .. } => variants[index].1(config),
        }
    }
}

impl std::fmt::Debug for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let labels: Vec<String> = (0..self.len()).map(|i| self.value_label(i)).collect();
        f.debug_struct("Axis")
            .field("name", &self.name())
            .field("values", &labels)
            .finish()
    }
}

/// One fully resolved configuration of a sweep grid.
#[derive(Debug, Clone)]
pub struct ScenarioPoint {
    /// Position of this point in [`SweepGrid::points`] (and the `point`
    /// field of every matching [`SweepRow`]).
    pub index: usize,
    /// `axis=value` pairs joined with `, ` — `"base"` when nothing varies.
    pub label: String,
    /// The `(axis name, value label)` pairs defining the point.
    pub values: Vec<(String, String)>,
    /// The concrete configuration runs of this point use.
    pub config: SimConfig,
}

impl ScenarioPoint {
    /// The value label this point takes on the named axis, if it is swept.
    #[must_use]
    pub fn value(&self, axis: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(name, _)| name == axis)
            .map(|(_, value)| value.as_str())
    }
}

/// A builder for families of simulation runs.
///
/// # Example
///
/// ```
/// use sim::{Axis, Scenario, SchedulerKind, SimConfig};
///
/// let mut base = SimConfig::quick_test();
/// base.num_peers = 20;
/// base.sim_duration_s = 800.0;
/// let grid = Scenario::from(base)
///     .schedulers([SchedulerKind::Fifo, SchedulerKind::TitForTat])
///     .seeds(0..2)
///     .run();
/// assert_eq!(grid.points().len(), 2);
/// assert_eq!(grid.rows().len(), 4);
/// ```
#[derive(Debug)]
pub struct Scenario {
    base: SimConfig,
    axes: Vec<Axis>,
    seeds: Vec<u64>,
    setup_seed: Option<u64>,
    threads: Option<usize>,
    thread_budget: Option<usize>,
    warm_restarts: bool,
    checkpoint_dir: Option<PathBuf>,
}

/// Shared JSON-lines sink state for [`Scenario::run_streamed`]: workers
/// append completed rows under the mutex; the first I/O error sticks and
/// disables further writes.
struct RowStream<'a> {
    sink: &'a mut (dyn Write + Send),
    error: Option<io::Error>,
}

/// Writes one complete snapshot of `sim` to `path` atomically: the bytes go
/// to `tmp` first and are renamed into place only once fully written, so a
/// run killed mid-checkpoint always leaves the previous complete checkpoint
/// (or nothing) at `path`, never a truncated one.
fn write_checkpoint_file(sim: &Simulation, tmp: &Path, path: &Path) -> io::Result<()> {
    let mut file = fs::File::create(tmp)?;
    sim.checkpoint(&mut file).map_err(io::Error::other)?;
    drop(file);
    fs::rename(tmp, path)
}

impl Scenario {
    /// Starts a scenario from a base configuration (one point, seed 0, until
    /// customised).
    #[must_use]
    pub fn from(base: SimConfig) -> Self {
        Scenario {
            base,
            axes: Vec::new(),
            seeds: vec![0],
            setup_seed: None,
            threads: None,
            thread_budget: None,
            warm_restarts: false,
            checkpoint_dir: None,
        }
    }

    /// Adds a swept dimension; the grid is the cartesian product of all
    /// added axes, with the first axis varying slowest.
    #[must_use]
    pub fn vary(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Sugar for varying the exchange discipline.
    #[must_use]
    pub fn disciplines(self, policies: impl IntoIterator<Item = ExchangePolicy>) -> Self {
        self.vary(Axis::Discipline(policies.into_iter().collect()))
    }

    /// Sugar for varying the upload scheduler.
    #[must_use]
    pub fn schedulers(self, kinds: impl IntoIterator<Item = SchedulerKind>) -> Self {
        self.vary(Axis::Scheduler(kinds.into_iter().collect()))
    }

    /// Sugar for varying the behavior population (Section III-B studies).
    #[must_use]
    pub fn behaviors(self, mixes: impl IntoIterator<Item = BehaviorMix>) -> Self {
        self.vary(Axis::Behaviors(mixes.into_iter().collect()))
    }

    /// Sugar for varying the cheating countermeasure.
    #[must_use]
    pub fn protections(self, protections: impl IntoIterator<Item = Protection>) -> Self {
        self.vary(Axis::Protection(protections.into_iter().collect()))
    }

    /// Sugar for varying the churn process (`None` = churn off).
    #[must_use]
    pub fn churn(self, configs: impl IntoIterator<Item = Option<ChurnConfig>>) -> Self {
        self.vary(Axis::Churn(configs.into_iter().collect()))
    }

    /// Sugar for varying the capacity-class population.
    #[must_use]
    pub fn classes(self, mixes: impl IntoIterator<Item = ClassMix>) -> Self {
        self.vary(Axis::ClassMix(mixes.into_iter().collect()))
    }

    /// Sets the seeds each grid point runs under (default: just seed 0).
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Pins the seed used to generate the shared topology under
    /// [`warm_restarts`](Self::warm_restarts), decoupling the catalog/peer
    /// generation from the first run seed (default: the first entry of
    /// [`seeds`](Self::seeds)).  With an explicit setup seed outside the run
    /// seeds, **no** warm row is bit-identical to its cold counterpart —
    /// every seed then measures workload variance on the same fixed topology.
    #[must_use]
    pub fn setup_seed(mut self, seed: u64) -> Self {
        self.setup_seed = Some(seed);
        self
    }

    /// Caps the number of sweep worker threads directly (default: see
    /// [`thread_budget`](Self::thread_budget)).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Runs every simulation of the grid with `shards` scheduling shards
    /// (see [`SimConfig::shards`]); results are bit-identical to `shards =
    /// 1`.  Sweep-level and shard-level parallelism compose through the
    /// [thread budget](Self::thread_budget): the default worker count is
    /// divided by the widest shard width in the grid, so `budget ≈ workers ×
    /// shards` regardless of how the two knobs are mixed.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.base.shards = shards.max(1);
        self
    }

    /// Sets the total thread budget the sweep may occupy — sweep workers ×
    /// per-run scheduling shards (default: available parallelism).  Ignored
    /// when [`threads`](Self::threads) caps the worker count explicitly.
    #[must_use]
    pub fn thread_budget(mut self, total: usize) -> Self {
        self.thread_budget = Some(total.max(1));
        self
    }

    /// The sweep worker count `run` will use for `points`: the explicit
    /// [`threads`](Self::threads) cap, or the [thread
    /// budget](Self::thread_budget) (default: available parallelism) divided
    /// by the grid's widest shard width.
    fn workers_for(&self, points: &[ScenarioPoint], jobs: usize) -> usize {
        let workers = match self.threads {
            Some(threads) => threads,
            None => {
                let budget = self.thread_budget.unwrap_or_else(|| {
                    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                });
                let shard_width = points.iter().map(|p| p.config.shards).max().unwrap_or(1);
                budget / shard_width.max(1)
            }
        };
        workers.clamp(1, jobs.max(1))
    }

    /// Enables warm restarts: each grid point generates its catalog and peer
    /// topology **once** (from the first seed, or the explicit
    /// [`setup_seed`](Self::setup_seed)) via [`SimSetup`] and shares it
    /// across that point's seeds, so only the request/lookup/storage RNG
    /// streams vary per seed.
    ///
    /// With warm restarts, the first seed's run is bit-identical to a cold
    /// `Simulation::new`; later seeds differ from their cold counterparts
    /// (they reuse the first seed's topology by design — that is the point:
    /// the seeds then measure workload variance on a fixed topology, and the
    /// expensive setup is paid once per point instead of once per run).
    #[must_use]
    pub fn warm_restarts(mut self, on: bool) -> Self {
        self.warm_restarts = on;
        self
    }

    /// Directory where runs drop periodic on-disk checkpoints.
    ///
    /// Effective only for grid points whose resolved config sets
    /// [`SimConfig::checkpoint_every_s`]; such runs then write their latest
    /// snapshot to `point<P>-seed<S>.ckpt` in `dir` every interval
    /// (atomically, via a temp file and rename, so a run killed mid-write
    /// always leaves the previous complete checkpoint behind).  A checkpoint
    /// can be resumed with [`Simulation::restore`].  Without this knob,
    /// `checkpoint_every_s` is ignored by scenarios.
    #[must_use]
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// The resolved grid points, in run order, without running anything.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty or any resolved configuration is invalid.
    #[must_use]
    pub fn points(&self) -> Vec<ScenarioPoint> {
        for axis in &self.axes {
            assert!(
                !axis.is_empty(),
                "axis '{}' has no values; a swept dimension needs at least one",
                axis.name()
            );
        }
        let total: usize = self.axes.iter().map(Axis::len).product();
        let mut points = Vec::with_capacity(total);
        let mut indices = vec![0usize; self.axes.len()];
        for index in 0..total {
            let mut config = self.base.clone();
            let mut values = Vec::with_capacity(self.axes.len());
            for (axis, &value_index) in self.axes.iter().zip(indices.iter()) {
                axis.apply(value_index, &mut config);
                values.push((axis.name().to_string(), axis.value_label(value_index)));
            }
            config
                .validate()
                .unwrap_or_else(|e| panic!("invalid configuration at grid point {index}: {e}"));
            let label = if values.is_empty() {
                "base".to_string()
            } else {
                values
                    .iter()
                    .map(|(name, value)| format!("{name}={value}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            points.push(ScenarioPoint {
                index,
                label,
                values,
                config,
            });
            // Advance the mixed-radix counter (last axis fastest).
            for position in (0..self.axes.len()).rev() {
                indices[position] += 1;
                if indices[position] < self.axes[position].len() {
                    break;
                }
                indices[position] = 0;
            }
        }
        points
    }

    /// Runs the whole grid — every point under every seed — in parallel and
    /// collects the results.
    ///
    /// Rows are returned in deterministic order (points in grid order, seeds
    /// in the order given) regardless of thread scheduling, and each row's
    /// report is identical to a standalone
    /// `Simulation::new(point.config, seed).run()` — except under
    /// [`warm_restarts`](Self::warm_restarts), where only the first seed's
    /// row carries that guarantee (later seeds deliberately reuse the first
    /// seed's topology).
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no seeds, an axis is empty, or a resolved
    /// configuration is invalid.
    #[must_use]
    pub fn run(self) -> SweepGrid {
        self.run_inner(None)
    }

    /// Like [`run`](Self::run), but additionally streams every completed
    /// `(point, seed)` row to `sink` as one JSON object per line
    /// (JSON-lines), in **completion order**, flushing after each line.
    ///
    /// Each line has exactly the shape of one element of
    /// [`SweepGrid::write_json`]'s `rows` array, so a consumer of the full
    /// document can consume the stream with the same row parser — and a
    /// sweep killed partway leaves a parsable prefix of completed rows
    /// (`bench_gate --stream` consumes such partial streams).  The returned
    /// grid is bit-identical to [`run`](Self::run)'s.
    ///
    /// # Errors
    ///
    /// Returns the first sink I/O error; the sweep itself still runs to
    /// completion (streaming stops at the first error).
    ///
    /// # Panics
    ///
    /// Panics like [`run`](Self::run) on an empty axis/seed list or an
    /// invalid resolved configuration.
    pub fn run_streamed(self, sink: &mut (dyn Write + Send)) -> io::Result<SweepGrid> {
        let stream = Mutex::new(RowStream { sink, error: None });
        let grid = self.run_inner(Some(&stream));
        let stream = stream.into_inner().expect("stream sink poisoned");
        match stream.error {
            Some(e) => Err(e),
            None => Ok(grid),
        }
    }

    fn run_inner(self, stream: Option<&Mutex<RowStream<'_>>>) -> SweepGrid {
        assert!(!self.seeds.is_empty(), "a scenario needs at least one seed");
        let points = self.points();
        let jobs: Vec<(usize, u64)> = points
            .iter()
            .flat_map(|point| self.seeds.iter().map(move |&seed| (point.index, seed)))
            .collect();

        let workers = self.workers_for(&points, jobs.len());

        let next_job = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<SimReport>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        // One lazily generated, shared setup per grid point (warm restarts).
        // The setup seed defaults to the scenario's first seed — or the
        // explicit `setup_seed` knob — so the assignment is deterministic
        // regardless of which worker gets there first.
        let setups: Vec<OnceLock<SimSetup>> = points.iter().map(|_| OnceLock::new()).collect();
        let setup_seed = self.setup_seed.unwrap_or(self.seeds[0]);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = next_job.fetch_add(1, Ordering::Relaxed);
                    let Some(&(point_index, seed)) = jobs.get(job) else {
                        break;
                    };
                    let config = points[point_index].config.clone();
                    let checkpoints = config
                        .checkpoint_every_s
                        .zip(self.checkpoint_dir.as_deref());
                    let run = |sim: Simulation| match checkpoints {
                        Some((every, dir)) => {
                            let path = dir.join(format!("point{point_index}-seed{seed}.ckpt"));
                            let tmp = dir.join(format!("point{point_index}-seed{seed}.ckpt.tmp"));
                            sim.run_checkpointed(every, |at, sim| {
                                write_checkpoint_file(sim, &tmp, &path).unwrap_or_else(|e| {
                                    panic!(
                                        "failed to write checkpoint at t={at} to {}: {e}",
                                        path.display()
                                    )
                                });
                            })
                        }
                        None => sim.run(),
                    };
                    let report = if self.warm_restarts {
                        let setup = setups[point_index]
                            .get_or_init(|| SimSetup::generate(&config, setup_seed));
                        run(Simulation::from_setup(config, setup, seed))
                    } else {
                        run(Simulation::new(config, seed))
                    };
                    if let Some(stream) = stream {
                        let mut guard = stream.lock().expect("stream sink poisoned");
                        let RowStream { sink, error } = &mut *guard;
                        if error.is_none() {
                            let written =
                                crate::serialize::write_row_json(sink, point_index, seed, &report)
                                    .and_then(|()| writeln!(sink))
                                    .and_then(|()| sink.flush());
                            if let Err(e) = written {
                                *error = Some(e);
                            }
                        }
                    }
                    *results[job].lock().expect("result slot poisoned") = Some(report);
                });
            }
        });

        let rows: Vec<SweepRow> = jobs
            .into_iter()
            .zip(results)
            .map(|((point, seed), slot)| SweepRow {
                point,
                seed,
                report: slot
                    .into_inner()
                    .expect("result slot poisoned")
                    .expect("every job writes its result before the scope ends"),
            })
            .collect();
        SweepGrid {
            points,
            seeds: self.seeds,
            rows,
        }
    }
}

/// One `(grid point, seed)` simulation result.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Index into [`SweepGrid::points`].
    pub point: usize,
    /// The seed this run used.
    pub seed: u64,
    /// The full report of the run.
    pub report: SimReport,
}

/// A metric aggregated over the seeds of one grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Mean of the metric over the seeds that reported it.
    pub mean: f64,
    /// Half-width of the normal-approximation 95% confidence interval
    /// (0 when fewer than two seeds reported).
    pub ci95: f64,
    /// Number of seeds that reported the metric.
    pub n: usize,
}

/// The uniform result of a [`Scenario`] run.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    points: Vec<ScenarioPoint>,
    seeds: Vec<u64>,
    rows: Vec<SweepRow>,
}

impl SweepGrid {
    /// The grid points, in run order.
    #[must_use]
    pub fn points(&self) -> &[ScenarioPoint] {
        &self.points
    }

    /// The seeds every point ran under.
    #[must_use]
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// All `(point, seed, report)` rows, points in grid order, seeds in the
    /// order given.
    #[must_use]
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// The point at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn point(&self, index: usize) -> &ScenarioPoint {
        &self.points[index]
    }

    /// Finds the unique point matching every `(axis, value-label)` pair.
    #[must_use]
    pub fn find_point(&self, query: &[(&str, &str)]) -> Option<&ScenarioPoint> {
        self.points.iter().find(|point| {
            query
                .iter()
                .all(|(axis, value)| point.value(axis) == Some(*value))
        })
    }

    /// The reports of one point, over its seeds.
    pub fn reports(&self, point: usize) -> impl Iterator<Item = &SimReport> {
        self.rows
            .iter()
            .filter(move |row| row.point == point)
            .map(|row| &row.report)
    }

    /// Aggregates `metric` over the seeds of `point`; `None` when no seed
    /// reported the metric.
    pub fn aggregate(
        &self,
        point: usize,
        metric: impl Fn(&SimReport) -> Option<f64>,
    ) -> Option<Aggregate> {
        let mut stats = OnlineStats::new();
        for report in self.reports(point) {
            if let Some(value) = metric(report) {
                stats.record(value);
            }
        }
        if stats.is_empty() {
            return None;
        }
        let n = stats.count() as usize;
        let ci95 = if n > 1 {
            t_critical_975(n - 1) * (stats.sample_variance() / n as f64).sqrt()
        } else {
            0.0
        };
        Some(Aggregate {
            mean: stats.mean(),
            ci95,
            n,
        })
    }

    /// [`SweepGrid::aggregate`] addressed by axis values instead of index.
    ///
    /// # Panics
    ///
    /// Panics when no grid point matches `query` — an unmatched query is a
    /// caller bug (stale label, wrong axis name), not a missing metric, and
    /// silently rendering `n/a` would hide it.
    pub fn aggregate_where(
        &self,
        query: &[(&str, &str)],
        metric: impl Fn(&SimReport) -> Option<f64>,
    ) -> Option<Aggregate> {
        let point = self.find_point(query).unwrap_or_else(|| {
            panic!(
                "no grid point matches {query:?}; available points: {:?}",
                self.points.iter().map(|p| &p.label).collect::<Vec<_>>()
            )
        });
        self.aggregate(point.index, metric)
    }
}

/// Two-sided 97.5% Student-t critical value for `df` degrees of freedom,
/// so small-seed confidence intervals are not understated (z = 1.96 is only
/// reached asymptotically).
fn t_critical_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        31..=60 => 2.0,
        _ => 1.96,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeerClass;

    fn tiny_base() -> SimConfig {
        let mut config = SimConfig::quick_test();
        config.num_peers = 16;
        config.sim_duration_s = 800.0;
        config
    }

    #[test]
    fn no_axes_yields_a_single_base_point() {
        let grid = Scenario::from(tiny_base()).seeds([7]).run();
        assert_eq!(grid.points().len(), 1);
        assert_eq!(grid.point(0).label, "base");
        assert_eq!(grid.rows().len(), 1);
        assert_eq!(grid.rows()[0].seed, 7);
    }

    #[test]
    fn grid_is_the_cartesian_product_in_declaration_order() {
        let scenario = Scenario::from(tiny_base())
            .vary(Axis::UploadKbps(vec![40.0, 80.0]))
            .disciplines([ExchangePolicy::NoExchange, ExchangePolicy::Pairwise]);
        let points = scenario.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].value("upload_kbps"), Some("40"));
        assert_eq!(points[0].value("discipline"), Some("no-exchange"));
        assert_eq!(points[1].value("discipline"), Some("pairwise"));
        assert_eq!(points[2].value("upload_kbps"), Some("80"));
        assert_eq!(points[3].label, "upload_kbps=80, discipline=pairwise");
        assert_eq!(points[2].config.link.upload_kbps, 80.0);
        assert_eq!(points[3].config.discipline, ExchangePolicy::Pairwise);
    }

    #[test]
    fn parallel_run_matches_standalone_simulations() {
        let grid = Scenario::from(tiny_base())
            .schedulers([SchedulerKind::Fifo, SchedulerKind::TitForTat])
            .seeds(0..2)
            .run();
        assert_eq!(grid.rows().len(), 4);
        for row in grid.rows() {
            let standalone = Simulation::new(grid.point(row.point).config.clone(), row.seed).run();
            assert_eq!(
                row.report.completed_downloads(),
                standalone.completed_downloads()
            );
            assert_eq!(row.report.total_sessions(), standalone.total_sessions());
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let serial = Scenario::from(tiny_base())
            .vary(Axis::FreeriderFraction(vec![0.25, 0.75]))
            .seeds(0..2)
            .threads(1)
            .run();
        let parallel = Scenario::from(tiny_base())
            .vary(Axis::FreeriderFraction(vec![0.25, 0.75]))
            .seeds(0..2)
            .threads(4)
            .run();
        for (a, b) in serial.rows().iter().zip(parallel.rows().iter()) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.seed, b.seed);
            assert_eq!(
                a.report.completed_downloads(),
                b.report.completed_downloads()
            );
            assert_eq!(a.report.total_sessions(), b.report.total_sessions());
        }
    }

    #[test]
    fn aggregate_over_identical_seeds_has_zero_width() {
        let grid = Scenario::from(tiny_base()).seeds([3, 3]).run();
        let agg = grid
            .aggregate(0, |r| Some(r.completed_downloads() as f64))
            .expect("downloads metric is always present");
        assert_eq!(agg.n, 2);
        assert_eq!(agg.ci95, 0.0, "identical runs have no spread");
    }

    #[test]
    fn aggregate_reports_spread_across_distinct_seeds() {
        let grid = Scenario::from(tiny_base()).seeds(0..3).run();
        let agg = grid
            .aggregate(0, |r| Some(r.total_sessions() as f64))
            .expect("session counts are always present");
        assert_eq!(agg.n, 3);
        assert!(agg.mean > 0.0);
        assert!(agg.ci95 >= 0.0);
    }

    #[test]
    fn aggregate_skips_unreported_metrics() {
        let mut base = tiny_base();
        base.behaviors = BehaviorMix::honest(); // nobody is non-sharing
        let grid = Scenario::from(base).seeds([1]).run();
        assert!(grid
            .aggregate(0, |r| r.mean_download_time_min(PeerClass::NonSharing))
            .is_none());
    }

    #[test]
    fn warm_restarts_match_cold_runs_on_the_setup_seed() {
        let warm = Scenario::from(tiny_base())
            .vary(Axis::UploadKbps(vec![60.0, 100.0]))
            .seeds([5, 6])
            .warm_restarts(true)
            .run();
        let cold = Scenario::from(tiny_base())
            .vary(Axis::UploadKbps(vec![60.0, 100.0]))
            .seeds([5, 6])
            .run();
        for (w, c) in warm.rows().iter().zip(cold.rows().iter()) {
            assert_eq!((w.point, w.seed), (c.point, c.seed));
            if w.seed == 5 {
                // The setup seed's run is bit-identical to a cold start.
                assert_eq!(
                    w.report.completed_downloads(),
                    c.report.completed_downloads()
                );
                assert_eq!(w.report.total_sessions(), c.report.total_sessions());
            }
        }
        // Warm rows on later seeds still vary (fresh per-run RNG streams).
        let warm_rows: Vec<_> = warm.rows().iter().filter(|r| r.point == 0).collect();
        assert!(
            warm_rows[0].report.total_sessions() != warm_rows[1].report.total_sessions()
                || warm_rows[0].report.completed_downloads()
                    != warm_rows[1].report.completed_downloads(),
            "distinct seeds must still differ under a shared setup"
        );
    }

    /// Renders one report exactly as a streamed JSONL row would, so tests
    /// can compare full metric surfaces byte-for-byte.
    fn row_json(point: usize, seed: u64, report: &SimReport) -> String {
        let mut buffer = Vec::new();
        crate::serialize::write_row_json(&mut buffer, point, seed, report)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buffer).expect("row JSON is UTF-8")
    }

    #[test]
    fn streamed_sweeps_emit_every_row_and_match_plain_runs() {
        let build = || {
            Scenario::from(tiny_base())
                .vary(Axis::UploadKbps(vec![60.0, 100.0]))
                .seeds(0..2)
        };
        let plain = build().run();
        let mut sink = Vec::new();
        let streamed = build()
            .run_streamed(&mut sink)
            .expect("Vec sink never fails");

        // The returned grid is bit-identical to the unstreamed one.
        assert_eq!(plain.rows().len(), streamed.rows().len());
        for (a, b) in plain.rows().iter().zip(streamed.rows().iter()) {
            assert_eq!((a.point, a.seed), (b.point, b.seed));
            assert_eq!(
                row_json(a.point, a.seed, &a.report),
                row_json(b.point, b.seed, &b.report)
            );
        }

        // One line per row, in completion order; same rows as the grid.
        let text = String::from_utf8(sink).expect("stream is UTF-8");
        let mut lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), plain.rows().len());
        let mut expected: Vec<String> = plain
            .rows()
            .iter()
            .map(|r| row_json(r.point, r.seed, &r.report))
            .collect();
        lines.sort_unstable();
        expected.sort_unstable();
        assert_eq!(lines, expected);
    }

    #[test]
    fn streamed_sweeps_surface_sink_errors_but_still_complete() {
        struct FailingSink;
        impl Write for FailingSink {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "sink closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = FailingSink;
        let err = Scenario::from(tiny_base())
            .seeds(0..2)
            .run_streamed(&mut sink)
            .expect_err("a failing sink must surface its error");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn scenario_checkpoints_are_resumable_to_the_same_report() {
        let dir = std::env::temp_dir().join(format!("xchg-scenario-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp checkpoint dir");

        let mut config = tiny_base();
        config.checkpoint_every_s = Some(250.0);
        let grid = Scenario::from(config.clone())
            .seeds([3])
            .checkpoint_dir(&dir)
            .run();
        let full = &grid.rows()[0].report;

        // The latest checkpoint survives on disk (no stray temp file) and
        // resuming it replays the remainder into the identical report.
        let path = dir.join("point0-seed3.ckpt");
        let bytes = fs::read(&path).expect("checkpoint written");
        assert!(!dir.join("point0-seed3.ckpt.tmp").exists());
        let resumed = Simulation::restore(&mut &bytes[..], &config)
            .expect("scenario checkpoints restore")
            .run();
        assert_eq!(row_json(0, 3, full), row_json(0, 3, &resumed));

        fs::remove_dir_all(&dir).expect("temp checkpoint dir cleanup");
    }

    #[test]
    fn warm_restarts_are_deterministic_across_thread_counts() {
        let build = |threads: usize| {
            Scenario::from(tiny_base())
                .vary(Axis::FreeriderFraction(vec![0.25, 0.75]))
                .seeds(0..2)
                .warm_restarts(true)
                .threads(threads)
                .run()
        };
        let serial = build(1);
        let parallel = build(4);
        for (a, b) in serial.rows().iter().zip(parallel.rows().iter()) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.seed, b.seed);
            assert_eq!(
                a.report.completed_downloads(),
                b.report.completed_downloads()
            );
            assert_eq!(a.report.total_sessions(), b.report.total_sessions());
        }
    }

    #[test]
    fn sharded_sweeps_match_sequential_sweeps() {
        let build = |shards: usize| {
            Scenario::from(tiny_base())
                .disciplines([ExchangePolicy::two_five_way()])
                .seeds(0..2)
                .shards(shards)
                .run()
        };
        let sequential = build(1);
        let sharded = build(3);
        assert_eq!(sharded.points()[0].config.shards, 3);
        for (a, b) in sequential.rows().iter().zip(sharded.rows().iter()) {
            assert_eq!((a.point, a.seed), (b.point, b.seed));
            assert_eq!(
                a.report.completed_downloads(),
                b.report.completed_downloads()
            );
            assert_eq!(a.report.total_sessions(), b.report.total_sessions());
            assert_eq!(a.report.total_rings(), b.report.total_rings());
        }
    }

    #[test]
    fn thread_budget_derates_workers_by_shard_width() {
        let scenario = Scenario::from(tiny_base()).shards(4).thread_budget(8);
        let points = scenario.points();
        // 8 total threads over 4-shard runs -> 2 sweep workers.
        assert_eq!(scenario.workers_for(&points, 16), 2);
        // An explicit thread cap wins over the budget.
        let capped = Scenario::from(tiny_base()).shards(4).threads(5);
        let points = capped.points();
        assert_eq!(capped.workers_for(&points, 16), 5);
        // A budget narrower than one run still gets one worker.
        let narrow = Scenario::from(tiny_base()).shards(16).thread_budget(4);
        let points = narrow.points();
        assert_eq!(narrow.workers_for(&points, 16), 1);
    }

    #[test]
    fn custom_axes_mutate_the_config() {
        let scenario = Scenario::from(tiny_base()).vary(
            Axis::custom("block_kb")
                .with_variant("64", |c: &mut SimConfig| c.block_bytes = 64 * 1024)
                .with_variant("256", |c: &mut SimConfig| c.block_bytes = 256 * 1024),
        );
        let points = scenario.points();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].config.block_bytes, 64 * 1024);
        assert_eq!(points[1].config.block_bytes, 256 * 1024);
        assert_eq!(points[1].value("block_kb"), Some("256"));
    }

    #[test]
    fn aggregate_where_addresses_points_by_axis_values() {
        let grid = Scenario::from(tiny_base())
            .vary(Axis::UploadKbps(vec![60.0, 100.0]))
            .seeds(0..2)
            .run();
        let slow = grid
            .aggregate_where(&[("upload_kbps", "60")], |r| {
                Some(r.completed_downloads() as f64)
            })
            .expect("point exists");
        assert!(slow.n == 2);
        assert!(grid.find_point(&[("upload_kbps", "75")]).is_none());
    }

    #[test]
    fn behavior_and_protection_axes_mutate_the_config() {
        use crate::BehaviorKind;
        let adversarial =
            BehaviorMix::weighted([(BehaviorKind::Honest, 0.5), (BehaviorKind::Middleman, 0.5)]);
        let scenario = Scenario::from(tiny_base())
            .behaviors([BehaviorMix::honest(), adversarial.clone()])
            .protections([Protection::None, Protection::Mediated]);
        let points = scenario.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].value("behaviors"), Some("honest:1"));
        assert_eq!(points[0].value("protection"), Some("none"));
        assert_eq!(points[3].config.behaviors, adversarial);
        assert_eq!(points[3].config.protection, Protection::Mediated);
        assert_eq!(
            points[3].value("behaviors"),
            Some("honest:0.5+middleman:0.5")
        );
    }

    #[test]
    fn churn_and_class_axes_mutate_the_config() {
        use crate::CapacityClass;
        let churn = ChurnConfig {
            mean_session_s: 300.0,
            mean_downtime_s: 120.0,
        };
        let mix = ClassMix::weighted([(CapacityClass::Fast, 0.5), (CapacityClass::Slow, 0.5)]);
        let scenario = Scenario::from(tiny_base())
            .churn([None, Some(churn.clone())])
            .classes([ClassMix::uniform(), mix.clone()]);
        let points = scenario.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].value("churn"), Some("off"));
        assert_eq!(points[0].config.churn, None);
        assert_eq!(points[1].value("classes"), Some(mix.label().as_str()));
        assert_eq!(points[3].config.churn, Some(churn));
        assert_eq!(points[3].config.classes, mix);
    }

    #[test]
    fn setup_seed_pins_the_shared_topology() {
        // Two warm sweeps with the same explicit setup seed but different run
        // seeds share the topology: the run-seed streams alone separate them.
        let build = |seeds: [u64; 1]| {
            Scenario::from(tiny_base())
                .seeds(seeds)
                .setup_seed(99)
                .warm_restarts(true)
                .run()
        };
        let a = build([5]);
        let b = build([5]);
        assert_eq!(
            a.rows()[0].report.completed_downloads(),
            b.rows()[0].report.completed_downloads()
        );
        // A pinned setup seed makes the warm run differ from a cold run of
        // the same run seed (the cold run generates topology from seed 5).
        let cold = Scenario::from(tiny_base()).seeds([5]).run();
        let warm_pinned = build([5]);
        let warm_default = Scenario::from(tiny_base())
            .seeds([5])
            .warm_restarts(true)
            .run();
        // Default warm restarts stay bit-identical to cold on the first seed.
        assert_eq!(
            warm_default.rows()[0].report.completed_downloads(),
            cold.rows()[0].report.completed_downloads()
        );
        assert_eq!(
            warm_default.rows()[0].report.total_sessions(),
            cold.rows()[0].report.total_sessions()
        );
        // The pinned topology (seed 99) produces a different trajectory.
        assert!(
            warm_pinned.rows()[0].report.completed_downloads()
                != cold.rows()[0].report.completed_downloads()
                || warm_pinned.rows()[0].report.total_sessions()
                    != cold.rows()[0].report.total_sessions(),
            "a pinned setup seed must change the shared topology"
        );
    }

    #[test]
    fn freerider_axis_rewrites_the_mix() {
        let scenario = Scenario::from(tiny_base()).vary(Axis::FreeriderFraction(vec![0.25]));
        let points = scenario.points();
        assert_eq!(
            points[0].config.behaviors,
            BehaviorMix::with_freeriders(0.25)
        );
        assert_eq!(points[0].value("freerider_fraction"), Some("0.25"));
    }

    #[test]
    fn small_sample_intervals_use_student_t() {
        // df = 2 (3 seeds) must widen by t = 4.303, not z = 1.96.
        assert_eq!(t_critical_975(2), 4.303);
        assert_eq!(t_critical_975(1), 12.706);
        assert_eq!(t_critical_975(200), 1.96);
    }

    #[test]
    #[should_panic(expected = "no grid point matches")]
    fn aggregate_where_panics_on_unknown_points() {
        let grid = Scenario::from(tiny_base()).seeds([1]).run();
        let _ = grid.aggregate_where(&[("upload_kbps", "999")], |r| {
            Some(r.completed_downloads() as f64)
        });
    }

    #[test]
    #[should_panic(expected = "has no values")]
    fn empty_axes_are_rejected() {
        let _ = Scenario::from(tiny_base())
            .vary(Axis::UploadKbps(vec![]))
            .points();
    }
}
