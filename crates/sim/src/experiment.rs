//! Parameter sweeps behind every figure of the paper's evaluation.
//!
//! Each function runs a family of simulations and returns plain rows that the
//! figure binaries (crate `exchange-bench`) format into the tables/series the
//! paper plots.  All sweeps take a base [`SimConfig`] so that callers can
//! scale the experiments down (fewer peers, shorter horizon) for quick runs.

use exchange::ExchangePolicy;

use crate::{PeerClass, SessionKind, SimConfig, SimReport, Simulation};

/// Runs a single configuration and returns its report.
#[must_use]
pub fn run(config: SimConfig, seed: u64) -> SimReport {
    Simulation::new(config, seed).run()
}

/// One point of the Figure 4/5 sweep: a policy at a given upload capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPoint {
    /// Upload capacity in kbit/s.
    pub upload_kbps: f64,
    /// The discipline under test.
    pub policy: ExchangePolicy,
    /// Mean download time of sharing peers, minutes.
    pub sharing_min: Option<f64>,
    /// Mean download time of non-sharing peers, minutes.
    pub non_sharing_min: Option<f64>,
    /// Fraction of sessions that were exchange transfers (Figure 5).
    pub exchange_fraction: f64,
}

/// Figure 4 and Figure 5: mean download time and exchange-session fraction as
/// the upload capacity varies.
#[must_use]
pub fn capacity_sweep(
    base: &SimConfig,
    policies: &[ExchangePolicy],
    capacities_kbps: &[f64],
    seed: u64,
) -> Vec<CapacityPoint> {
    let mut points = Vec::new();
    for &upload_kbps in capacities_kbps {
        for &policy in policies {
            let mut config = base.clone();
            config.link = config.link.with_upload_kbps(upload_kbps);
            config.discipline = policy;
            let report = run(config, seed);
            points.push(CapacityPoint {
                upload_kbps,
                policy,
                sharing_min: report.mean_download_time_min(PeerClass::Sharing),
                non_sharing_min: report.mean_download_time_min(PeerClass::NonSharing),
                exchange_fraction: report.exchange_session_fraction(),
            });
        }
    }
    points
}

/// One point of the Figure 6 sweep: a maximum ring size under one preference.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSizePoint {
    /// The maximum ring size N.
    pub max_ring: usize,
    /// Whether longer rings were preferred (`N-2-way`) or shorter (`2-N-way`).
    pub prefer_longer: bool,
    /// Mean download time of sharing peers, minutes.
    pub sharing_min: Option<f64>,
    /// Mean download time of non-sharing peers, minutes.
    pub non_sharing_min: Option<f64>,
}

/// Figure 6: the benefit of higher-order exchanges as the maximum ring size
/// grows, for both preference orders.
#[must_use]
pub fn ring_size_sweep(base: &SimConfig, max_sizes: &[usize], seed: u64) -> Vec<RingSizePoint> {
    let mut points = Vec::new();
    for &max_ring in max_sizes {
        for prefer_longer in [true, false] {
            let mut config = base.clone();
            config.discipline = if max_ring < 2 {
                ExchangePolicy::NoExchange
            } else if prefer_longer {
                ExchangePolicy::PreferLonger { max_ring }
            } else {
                ExchangePolicy::PreferShorter { max_ring }
            };
            let report = run(config, seed);
            points.push(RingSizePoint {
                max_ring,
                prefer_longer,
                sharing_min: report.mean_download_time_min(PeerClass::Sharing),
                non_sharing_min: report.mean_download_time_min(PeerClass::NonSharing),
            });
        }
    }
    points
}

/// One point of the Figure 9/10 sweep: a policy at a given popularity factor.
#[derive(Debug, Clone, PartialEq)]
pub struct PopularityPoint {
    /// The object/category popularity factor `f`.
    pub factor: f64,
    /// The discipline under test.
    pub policy: ExchangePolicy,
    /// Mean download time of sharing peers, minutes.
    pub sharing_min: Option<f64>,
    /// Mean download time of non-sharing peers, minutes.
    pub non_sharing_min: Option<f64>,
    /// Mean volume downloaded per sharing peer, MB (Figure 10).
    pub sharing_volume_mb: Option<f64>,
    /// Mean volume downloaded per non-sharing peer, MB (Figure 10).
    pub non_sharing_volume_mb: Option<f64>,
}

/// Figures 9 and 10: the effect of the popularity factor `f` on download
/// times and transferred volume.
#[must_use]
pub fn popularity_sweep(
    base: &SimConfig,
    policies: &[ExchangePolicy],
    factors: &[f64],
    seed: u64,
) -> Vec<PopularityPoint> {
    let mut points = Vec::new();
    for &factor in factors {
        for &policy in policies {
            let mut config = base.clone();
            config.workload.category_popularity_factor = factor;
            config.workload.object_popularity_factor = factor;
            config.discipline = policy;
            let report = run(config, seed);
            points.push(PopularityPoint {
                factor,
                policy,
                sharing_min: report.mean_download_time_min(PeerClass::Sharing),
                non_sharing_min: report.mean_download_time_min(PeerClass::NonSharing),
                sharing_volume_mb: report.mean_volume_per_peer_mb(PeerClass::Sharing),
                non_sharing_volume_mb: report.mean_volume_per_peer_mb(PeerClass::NonSharing),
            });
        }
    }
    points
}

/// One point of the Figure 11 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OutstandingPoint {
    /// Maximum outstanding requests per peer.
    pub max_outstanding: usize,
    /// Number of categories each peer is interested in.
    pub categories_per_peer: u32,
    /// Ratio of non-sharing to sharing mean download time (the "speedup" of
    /// sharing users).
    pub ratio: Option<f64>,
}

/// Figure 11: the download-time ratio between sharing and non-sharing users
/// as a function of the maximum number of outstanding requests, for several
/// values of categories-per-peer.
#[must_use]
pub fn outstanding_sweep(
    base: &SimConfig,
    outstanding: &[usize],
    categories_per_peer: &[u32],
    seed: u64,
) -> Vec<OutstandingPoint> {
    let mut points = Vec::new();
    for &cats in categories_per_peer {
        for &max_outstanding in outstanding {
            let mut config = base.clone();
            config.max_pending_objects = max_outstanding;
            config.workload.categories_per_peer = (cats, cats);
            let report = run(config, seed);
            points.push(OutstandingPoint {
                max_outstanding,
                categories_per_peer: cats,
                ratio: report.download_time_ratio(),
            });
        }
    }
    points
}

/// One point of the Figure 12 sweep: a policy at a given free-rider fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct FreeriderPoint {
    /// Fraction of non-sharing peers in the system.
    pub freerider_fraction: f64,
    /// The discipline under test.
    pub policy: ExchangePolicy,
    /// Mean download time of sharing peers, minutes.
    pub sharing_min: Option<f64>,
    /// Mean download time of non-sharing peers, minutes.
    pub non_sharing_min: Option<f64>,
}

/// Figure 12: mean download times as the fraction of non-sharing peers varies.
#[must_use]
pub fn freerider_sweep(
    base: &SimConfig,
    policies: &[ExchangePolicy],
    fractions: &[f64],
    seed: u64,
) -> Vec<FreeriderPoint> {
    let mut points = Vec::new();
    for &fraction in fractions {
        for &policy in policies {
            let mut config = base.clone();
            config.freerider_fraction = fraction;
            config.discipline = policy;
            let report = run(config, seed);
            points.push(FreeriderPoint {
                freerider_fraction: fraction,
                policy,
                sharing_min: report.mean_download_time_min(PeerClass::Sharing),
                non_sharing_min: report.mean_download_time_min(PeerClass::NonSharing),
            });
        }
    }
    points
}

/// Figures 7 and 8: a single run whose per-session distributions (bytes and
/// waiting times, broken down by session kind) are read straight off the
/// returned report.
#[must_use]
pub fn session_distributions(base: &SimConfig, seed: u64) -> SimReport {
    run(base.clone(), seed)
}

/// The session kinds the paper plots in Figures 7 and 8, in plot order.
#[must_use]
pub fn figure_session_kinds(max_ring: usize) -> Vec<SessionKind> {
    let mut kinds = vec![SessionKind::NonExchange];
    for size in 2..=max_ring.max(2) {
        kinds.push(SessionKind::Exchange { ring_size: size });
    }
    kinds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_base() -> SimConfig {
        let mut config = SimConfig::quick_test();
        config.num_peers = 20;
        config.sim_duration_s = 1_200.0;
        config
    }

    #[test]
    fn capacity_sweep_produces_one_point_per_combination() {
        let points = capacity_sweep(
            &tiny_base(),
            &[ExchangePolicy::NoExchange, ExchangePolicy::Pairwise],
            &[40.0, 80.0],
            1,
        );
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.exchange_fraction >= 0.0));
        // The no-exchange runs never report exchange sessions.
        for p in points.iter().filter(|p| p.policy == ExchangePolicy::NoExchange) {
            assert_eq!(p.exchange_fraction, 0.0);
        }
    }

    #[test]
    fn ring_size_sweep_covers_both_preferences() {
        let points = ring_size_sweep(&tiny_base(), &[2, 3], 2);
        assert_eq!(points.len(), 4);
        assert!(points.iter().any(|p| p.prefer_longer));
        assert!(points.iter().any(|p| !p.prefer_longer));
    }

    #[test]
    fn popularity_sweep_sets_factor() {
        let points = popularity_sweep(&tiny_base(), &[ExchangePolicy::Pairwise], &[0.0, 1.0], 3);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].factor, 0.0);
        assert_eq!(points[1].factor, 1.0);
    }

    #[test]
    fn outstanding_sweep_crosses_parameters() {
        let points = outstanding_sweep(&tiny_base(), &[2, 4], &[2, 4], 4);
        assert_eq!(points.len(), 4);
        let cats: Vec<u32> = points.iter().map(|p| p.categories_per_peer).collect();
        assert!(cats.contains(&2) && cats.contains(&4));
    }

    #[test]
    fn freerider_sweep_varies_population() {
        let points = freerider_sweep(
            &tiny_base(),
            &[ExchangePolicy::two_five_way()],
            &[0.2, 0.8],
            5,
        );
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].freerider_fraction, 0.2);
    }

    #[test]
    fn figure_kinds_are_ordered_and_complete() {
        let kinds = figure_session_kinds(5);
        assert_eq!(kinds.len(), 5);
        assert_eq!(kinds[0], SessionKind::NonExchange);
        assert_eq!(kinds[1], SessionKind::Exchange { ring_size: 2 });
        assert_eq!(kinds[4], SessionKind::Exchange { ring_size: 5 });
    }

    #[test]
    fn session_distribution_run_reports_kinds() {
        let report = session_distributions(&tiny_base(), 6);
        assert!(report.total_sessions() > 0);
    }
}
