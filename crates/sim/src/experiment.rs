//! The canonical scenarios behind every figure of the paper's evaluation.
//!
//! Each function assembles the [`Scenario`] one figure sweeps — callers pick
//! the seeds (`.seeds(0..n)`), optionally cap parallelism, and `.run()` the
//! grid.  The figure binaries in the `exchange-bench` crate consume these
//! and format the aggregated [`SweepGrid`](crate::SweepGrid) rows into the
//! tables the paper plots.
//!
//! # Example
//!
//! ```
//! use sim::{experiment, ExchangeDiscipline, PeerClass, SimConfig};
//!
//! let mut base = SimConfig::quick_test();
//! base.num_peers = 20;
//! base.sim_duration_s = 800.0;
//! let grid = experiment::capacity_scenario(
//!     &base,
//!     &[ExchangeDiscipline::NoExchange, ExchangeDiscipline::Pairwise],
//!     &[60.0, 100.0],
//! )
//! .seeds(0..2)
//! .run();
//! assert_eq!(grid.rows().len(), 8); // 2 capacities x 2 policies x 2 seeds
//! let fast = grid
//!     .aggregate_where(&[("upload_kbps", "100"), ("discipline", "pairwise")], |r| {
//!         Some(r.exchange_session_fraction())
//!     })
//!     .unwrap();
//! assert!(fast.mean >= 0.0);
//! # let _ = PeerClass::Sharing;
//! ```

use exchange::ExchangePolicy;

use crate::{
    Axis, BehaviorMix, Protection, Scenario, SessionKind, SimConfig, SimReport, Simulation,
};

/// Runs a single configuration and returns its report.
#[must_use]
pub fn run(config: SimConfig, seed: u64) -> SimReport {
    Simulation::new(config, seed).run()
}

/// Figures 4 and 5: mean download time and exchange-session fraction as the
/// upload capacity varies, for each discipline.
#[must_use]
pub fn capacity_scenario(
    base: &SimConfig,
    policies: &[ExchangePolicy],
    capacities_kbps: &[f64],
) -> Scenario {
    Scenario::from(base.clone())
        .vary(Axis::UploadKbps(capacities_kbps.to_vec()))
        .disciplines(policies.iter().copied())
}

/// Figure 6: the benefit of higher-order exchanges as the maximum ring size
/// grows, for both preference orders (`N-2-way` and `2-N-way`).
///
/// Ring sizes below 2 degrade to [`ExchangePolicy::NoExchange`].
#[must_use]
pub fn ring_size_scenario(base: &SimConfig, max_sizes: &[usize]) -> Scenario {
    let mut policies = Vec::with_capacity(max_sizes.len() * 2);
    for &max_ring in max_sizes {
        for prefer_longer in [true, false] {
            let policy = if max_ring < 2 {
                ExchangePolicy::NoExchange
            } else if max_ring == 2 {
                // Both search orders coincide at N = 2: a single pairwise run.
                ExchangePolicy::Pairwise
            } else if prefer_longer {
                ExchangePolicy::PreferLonger { max_ring }
            } else {
                ExchangePolicy::PreferShorter { max_ring }
            };
            if !policies.contains(&policy) {
                policies.push(policy);
            }
        }
    }
    Scenario::from(base.clone()).disciplines(policies)
}

/// Figures 9 and 10: the effect of the popularity factor `f` on download
/// times and transferred volume, for each discipline.
#[must_use]
pub fn popularity_scenario(
    base: &SimConfig,
    policies: &[ExchangePolicy],
    factors: &[f64],
) -> Scenario {
    Scenario::from(base.clone())
        .vary(Axis::PopularityFactor(factors.to_vec()))
        .disciplines(policies.iter().copied())
}

/// Figure 11: the download-time ratio between sharing and non-sharing users
/// as a function of the maximum number of outstanding requests, for several
/// values of categories-per-peer.
#[must_use]
pub fn outstanding_scenario(
    base: &SimConfig,
    outstanding: &[usize],
    categories_per_peer: &[u32],
) -> Scenario {
    Scenario::from(base.clone())
        .vary(Axis::CategoriesPerPeer(categories_per_peer.to_vec()))
        .vary(Axis::MaxPendingObjects(outstanding.to_vec()))
}

/// Figure 12: mean download times as the fraction of non-sharing peers
/// varies, for each discipline.
#[must_use]
pub fn freerider_scenario(
    base: &SimConfig,
    policies: &[ExchangePolicy],
    fractions: &[f64],
) -> Scenario {
    Scenario::from(base.clone())
        .vary(Axis::FreeriderFraction(fractions.to_vec()))
        .disciplines(policies.iter().copied())
}

/// Section II comparison: every upload scheduler head-to-head under one
/// workload (the `baseline_comparison` example and the ablation benches).
#[must_use]
pub fn scheduler_scenario(base: &SimConfig) -> Scenario {
    Scenario::from(base.clone()).schedulers(credit::SchedulerKind::all())
}

/// Section III-B: every behavior mix under every countermeasure — how much
/// does each cheater gain under a given scheduler × protection combination?
/// Read the answers off [`crate::SimReport::behavior_stats`].
#[must_use]
pub fn cheating_scenario(
    base: &SimConfig,
    mixes: &[BehaviorMix],
    protections: &[Protection],
) -> Scenario {
    Scenario::from(base.clone())
        .behaviors(mixes.iter().cloned())
        .protections(protections.iter().copied())
}

/// Figures 7 and 8: a single run whose per-session distributions (bytes and
/// waiting times, broken down by session kind) are read straight off the
/// returned report.
#[must_use]
pub fn session_distributions(base: &SimConfig, seed: u64) -> SimReport {
    run(base.clone(), seed)
}

/// The session kinds the paper plots in Figures 7 and 8, in plot order.
#[must_use]
pub fn figure_session_kinds(max_ring: usize) -> Vec<SessionKind> {
    let mut kinds = vec![SessionKind::NonExchange];
    for size in 2..=max_ring.max(2) {
        kinds.push(SessionKind::Exchange { ring_size: size });
    }
    kinds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeerClass;

    fn tiny_base() -> SimConfig {
        let mut config = SimConfig::quick_test();
        config.num_peers = 20;
        config.sim_duration_s = 1_200.0;
        config
    }

    #[test]
    fn capacity_scenario_produces_one_point_per_combination() {
        let grid = capacity_scenario(
            &tiny_base(),
            &[ExchangePolicy::NoExchange, ExchangePolicy::Pairwise],
            &[40.0, 80.0],
        )
        .seeds([1])
        .run();
        assert_eq!(grid.points().len(), 4);
        assert_eq!(grid.rows().len(), 4);
        // The no-exchange runs never report exchange sessions.
        for point in grid.points() {
            let fraction = grid
                .aggregate(point.index, |r| Some(r.exchange_session_fraction()))
                .unwrap();
            assert!(fraction.mean >= 0.0);
            if point.value("discipline") == Some("no-exchange") {
                assert_eq!(fraction.mean, 0.0);
            }
        }
    }

    #[test]
    fn capacity_scenario_aggregates_means_across_parallel_seeds() {
        // The acceptance bar of the API redesign: one builder call, >= 3
        // seeds, parallel execution, aggregated means per point.
        let grid = capacity_scenario(&tiny_base(), &[ExchangePolicy::two_five_way()], &[80.0])
            .seeds(0..3)
            .run();
        assert_eq!(grid.rows().len(), 3);
        let downloads = grid
            .aggregate(0, |r| Some(r.completed_downloads() as f64))
            .unwrap();
        assert_eq!(downloads.n, 3);
        assert!(downloads.mean > 0.0);
        let sharing = grid.aggregate(0, |r| r.mean_download_time_min(PeerClass::Sharing));
        assert!(sharing.is_none_or(|a| a.n <= 3));
    }

    #[test]
    fn ring_size_scenario_covers_both_preferences() {
        let grid = ring_size_scenario(&tiny_base(), &[2, 3]).seeds([2]).run();
        let labels: Vec<&str> = grid
            .points()
            .iter()
            .filter_map(|p| p.value("discipline"))
            .collect();
        assert_eq!(labels, ["pairwise", "3-2-way", "2-3-way"]);
    }

    #[test]
    fn popularity_scenario_sets_factor() {
        let scenario = popularity_scenario(&tiny_base(), &[ExchangePolicy::Pairwise], &[0.0, 1.0]);
        let points = scenario.points();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].config.workload.object_popularity_factor, 0.0);
        assert_eq!(points[1].config.workload.category_popularity_factor, 1.0);
    }

    #[test]
    fn outstanding_scenario_crosses_parameters() {
        let grid = outstanding_scenario(&tiny_base(), &[2, 4], &[2, 4])
            .seeds([4])
            .run();
        assert_eq!(grid.points().len(), 4);
        let ratio = grid.aggregate_where(
            &[("max_pending", "2"), ("categories_per_peer", "4")],
            SimReport::download_time_ratio,
        );
        // The tiny run may not complete downloads in both classes; the
        // lookup itself must still resolve.
        assert!(grid
            .find_point(&[("max_pending", "2"), ("categories_per_peer", "4")])
            .is_some());
        assert!(ratio.is_none_or(|a| a.mean > 0.0));
    }

    #[test]
    fn freerider_scenario_varies_population() {
        let scenario =
            freerider_scenario(&tiny_base(), &[ExchangePolicy::two_five_way()], &[0.2, 0.8]);
        let points = scenario.points();
        assert_eq!(points.len(), 2);
        assert_eq!(
            points[0].config.behaviors,
            BehaviorMix::with_freeriders(0.2)
        );
        assert_eq!(
            points[1].config.behaviors,
            BehaviorMix::with_freeriders(0.8)
        );
    }

    #[test]
    fn cheating_scenario_crosses_mixes_and_protections() {
        use crate::BehaviorKind;
        let mixes = [
            BehaviorMix::with_freeriders(0.5),
            BehaviorMix::weighted([
                (BehaviorKind::Honest, 0.5),
                (BehaviorKind::JunkSender, 0.25),
                (BehaviorKind::Middleman, 0.25),
            ]),
        ];
        let scenario = cheating_scenario(&tiny_base(), &mixes, &Protection::all_basic());
        let points = scenario.points();
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].config.protection, Protection::None);
        assert_eq!(points[2].config.protection, Protection::Mediated);
        assert_eq!(points[5].config.behaviors, mixes[1]);
    }

    #[test]
    fn scheduler_scenario_covers_every_kind() {
        let points = scheduler_scenario(&tiny_base()).points();
        assert_eq!(points.len(), credit::SchedulerKind::all().len());
    }

    #[test]
    fn figure_kinds_are_ordered_and_complete() {
        let kinds = figure_session_kinds(5);
        assert_eq!(kinds.len(), 5);
        assert_eq!(kinds[0], SessionKind::NonExchange);
        assert_eq!(kinds[1], SessionKind::Exchange { ring_size: 2 });
        assert_eq!(kinds[4], SessionKind::Exchange { ring_size: 5 });
    }

    #[test]
    fn session_distribution_run_reports_kinds() {
        let report = session_distributions(&tiny_base(), 6);
        assert!(report.total_sessions() > 0);
    }
}
