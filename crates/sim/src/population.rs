//! Population dynamics: session churn, scripted catastrophes, flash-crowd
//! object releases, heterogeneous capacity classes and chunk-selection
//! strategies.
//!
//! The paper's evaluation assumes the scenario axes a real exchange network
//! has — peers joining and leaving, sudden demand spikes, unequal link
//! capacities — while the simulator's population used to be fixed for the
//! whole run.  This module holds the *plain-data* side of the subsystem
//! (configs, classes, mixes, strategies); the event-loop glue lives in
//! `simulation/population.rs`.
//!
//! All knobs default to "off" / homogeneous, and with the defaults the
//! engine draws no extra randomness: existing seeded runs stay bit-identical.

use std::fmt;

use des::DetRng;
use serde::{Deserialize, Serialize};

/// Session churn: every peer alternates online sessions and offline
/// downtimes, both drawn from per-event exponential distributions off a
/// dedicated RNG stream (existing streams are untouched, so enabling churn
/// never perturbs the workload draws of a churn-free run).
///
/// A departing peer tears down its in-flight transfers and standing rings,
/// withdraws its request-graph edges and leaves the object→holders index; it
/// keeps its stored objects and re-advertises them when it rejoins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Mean online-session length, in seconds (exponentially distributed).
    pub mean_session_s: f64,
    /// Mean offline downtime between sessions, in seconds (exponentially
    /// distributed).
    pub mean_downtime_s: f64,
}

impl ChurnConfig {
    /// A churn process with the given mean session and downtime lengths.
    #[must_use]
    pub fn new(mean_session_s: f64, mean_downtime_s: f64) -> Self {
        ChurnConfig {
            mean_session_s,
            mean_downtime_s,
        }
    }

    /// The label used on sweep axes.
    #[must_use]
    pub fn label(&self) -> String {
        format!("on{}s-off{}s", self.mean_session_s, self.mean_downtime_s)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("churn.mean_session_s", self.mean_session_s),
            ("churn.mean_downtime_s", self.mean_downtime_s),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        Ok(())
    }
}

/// A scripted catastrophic departure: at `at_s` the `top_k` online sharing
/// peers that have uploaded the most bytes leave permanently (they are never
/// rescheduled to rejoin, unlike churn departures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatastropheConfig {
    /// Simulated time of the departure, in seconds.
    pub at_s: f64,
    /// How many top providers vanish (ranked by uploaded bytes, ties to the
    /// lower peer id).
    pub top_k: usize,
}

impl CatastropheConfig {
    /// Removal of the `top_k` best providers at time `at_s`.
    #[must_use]
    pub fn new(at_s: f64, top_k: usize) -> Self {
        CatastropheConfig { at_s, top_k }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.at_s.is_finite() && self.at_s >= 0.0) {
            return Err(format!(
                "catastrophe.at_s must be non-negative, got {}",
                self.at_s
            ));
        }
        if self.top_k == 0 {
            return Err("catastrophe.top_k must be at least 1".into());
        }
        Ok(())
    }
}

/// A flash-crowd release: at `at_s` a brand-new object enters the catalog
/// (appended to the most popular category), is seeded into the storage of
/// the first `seed_holders` online sharing peers, and a burst of `requesters`
/// online peers immediately issue a request for it.  Organic request
/// generation also sees the new object from then on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdConfig {
    /// Simulated time of the release, in seconds.
    pub at_s: f64,
    /// Size of the burst: how many online peers request the object at
    /// release time (peers with no spare request budget are skipped).
    pub requesters: usize,
    /// How many online sharing peers are seeded with the object at release
    /// (the initial provider set the crowd stampedes).
    pub seed_holders: usize,
}

impl FlashCrowdConfig {
    /// A release at `at_s` with `requesters` immediate requesters and one
    /// seed holder.
    #[must_use]
    pub fn new(at_s: f64, requesters: usize) -> Self {
        FlashCrowdConfig {
            at_s,
            requesters,
            seed_holders: 1,
        }
    }

    /// Overrides the number of initial seed holders.
    #[must_use]
    pub fn with_seed_holders(mut self, seed_holders: usize) -> Self {
        self.seed_holders = seed_holders;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.at_s.is_finite() && self.at_s >= 0.0) {
            return Err(format!(
                "flash_crowd.at_s must be non-negative, got {}",
                self.at_s
            ));
        }
        if self.requesters == 0 {
            return Err("flash_crowd.requesters must be at least 1".into());
        }
        if self.seed_holders == 0 {
            return Err(
                "flash_crowd.seed_holders must be at least 1 (someone must hold the object)".into(),
            );
        }
        Ok(())
    }
}

/// A peer's access-link capacity class (coppa's `Speed`, adapted): a
/// multiplier on the per-slot transfer rate of the peer's *uploads*.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum CapacityClass {
    /// Twice the baseline per-slot rate.
    Fast,
    /// The baseline rate (the homogeneous default — a `×1.0` multiplier,
    /// which is bit-exact, so an all-`Medium` population reproduces the
    /// pre-class engine's transfers).
    #[default]
    Medium,
    /// Half the baseline rate.
    Slow,
}

impl CapacityClass {
    /// Every class, in reporting order.
    #[must_use]
    pub fn all() -> [CapacityClass; 3] {
        [
            CapacityClass::Fast,
            CapacityClass::Medium,
            CapacityClass::Slow,
        ]
    }

    /// The multiplier applied to the uploader's per-slot rate.
    #[must_use]
    pub fn rate_multiplier(&self) -> f64 {
        match self {
            CapacityClass::Fast => 2.0,
            CapacityClass::Medium => 1.0,
            CapacityClass::Slow => 0.5,
        }
    }

    /// The label used in reports and export columns.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CapacityClass::Fast => "fast",
            CapacityClass::Medium => "medium",
            CapacityClass::Slow => "slow",
        }
    }
}

impl fmt::Display for CapacityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The weighted population of capacity classes, mirroring
/// [`crate::BehaviorMix`]: largest-remainder head counts, then a
/// deterministic shuffle.
///
/// # Example
///
/// ```
/// use sim::{CapacityClass, ClassMix};
///
/// let mix = ClassMix::weighted([
///     (CapacityClass::Fast, 0.2),
///     (CapacityClass::Medium, 0.5),
///     (CapacityClass::Slow, 0.3),
/// ]);
/// assert!(mix.validate().is_ok());
/// assert_eq!(mix.counts(10), vec![
///     (CapacityClass::Fast, 2),
///     (CapacityClass::Medium, 5),
///     (CapacityClass::Slow, 3),
/// ]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    entries: Vec<(CapacityClass, f64)>,
}

impl ClassMix {
    /// The homogeneous default: every peer is `Medium` (a `×1.0` rate
    /// multiplier — the pre-class engine).
    #[must_use]
    pub fn uniform() -> Self {
        ClassMix {
            entries: vec![(CapacityClass::Medium, 1.0)],
        }
    }

    /// Builds a mix from `(class, weight)` pairs.  Weights need not sum
    /// to 1; they are normalised.
    #[must_use]
    pub fn weighted(entries: impl IntoIterator<Item = (CapacityClass, f64)>) -> Self {
        ClassMix {
            entries: entries.into_iter().collect(),
        }
    }

    /// Appends one more `(class, weight)` entry (builder style).
    #[must_use]
    pub fn and(mut self, class: CapacityClass, weight: f64) -> Self {
        self.entries.push((class, weight));
        self
    }

    /// The raw `(class, weight)` entries, in declaration order.
    #[must_use]
    pub fn entries(&self) -> &[(CapacityClass, f64)] {
        &self.entries
    }

    /// Whether every peer lands in one class (no draw needed, no rate
    /// heterogeneity).
    #[must_use]
    pub fn is_homogeneous(&self) -> bool {
        let mut classes = self.entries.iter().filter(|(_, w)| *w > 0.0);
        match classes.next() {
            Some((first, _)) => classes.all(|(class, _)| class == first),
            None => true,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: no entries,
    /// a duplicate class, a non-finite or negative weight, or an all-zero
    /// total weight.
    pub fn validate(&self) -> Result<(), String> {
        if self.entries.is_empty() {
            return Err("a class mix needs at least one entry".into());
        }
        for (class, weight) in &self.entries {
            if !weight.is_finite() || *weight < 0.0 {
                return Err(format!(
                    "class weight for {class} must be finite and non-negative, got {weight}"
                ));
            }
            if self.entries.iter().filter(|(c, _)| c == class).count() > 1 {
                return Err(format!("class {class} appears more than once in the mix"));
            }
        }
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return Err("class weights must not all be zero".into());
        }
        Ok(())
    }

    /// The per-class head counts for a population of `num_peers`, via
    /// largest-remainder rounding (ties broken towards earlier entries).
    /// The counts always sum to `num_peers`.
    #[must_use]
    pub fn counts(&self, num_peers: usize) -> Vec<(CapacityClass, usize)> {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        let mut counts: Vec<(CapacityClass, usize)> = Vec::with_capacity(self.entries.len());
        let mut fractions: Vec<(usize, f64)> = Vec::with_capacity(self.entries.len());
        let mut assigned = 0usize;
        for (index, (class, weight)) in self.entries.iter().enumerate() {
            let ideal = weight / total * num_peers as f64;
            let floor = ideal.floor() as usize;
            assigned += floor;
            counts.push((*class, floor));
            fractions.push((index, ideal - floor as f64));
        }
        fractions.sort_by(|(ia, fa), (ib, fb)| {
            fb.partial_cmp(fa)
                .expect("class fractions are finite")
                .then(ia.cmp(ib))
        });
        for (index, _) in fractions
            .into_iter()
            .take(num_peers.saturating_sub(assigned))
        {
            counts[index].1 += 1;
        }
        counts
    }

    /// Deterministically assigns one class per peer: expand the counts in
    /// entry order, then shuffle with `rng`.  A homogeneous mix skips the
    /// shuffle (its result is position-independent), so the default
    /// all-`Medium` mix consumes no randomness at all.
    #[must_use]
    pub fn assign(&self, num_peers: usize, rng: &mut DetRng) -> Vec<CapacityClass> {
        let mut classes = Vec::with_capacity(num_peers);
        for (class, count) in self.counts(num_peers) {
            classes.extend(std::iter::repeat_n(class, count));
        }
        if !self.is_homogeneous() {
            rng.shuffle(&mut classes);
        }
        classes
    }

    /// The label used on sweep axes: `class:weight` pairs joined with `+`.
    #[must_use]
    pub fn label(&self) -> String {
        self.entries
            .iter()
            .map(|(class, weight)| format!("{class}:{weight}"))
            .collect::<Vec<_>>()
            .join("+")
    }
}

impl Default for ClassMix {
    /// The homogeneous all-`Medium` population.
    fn default() -> Self {
        ClassMix::uniform()
    }
}

impl fmt::Display for ClassMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Which object a peer asks for next, within its interest categories
/// (coppa's chunk-selection `Strategy`, adapted to whole objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SelectionStrategy {
    /// The paper's workload: a power-law popularity draw within a
    /// popularity-weighted category (the default; byte-identical to the
    /// pre-strategy engine).
    #[default]
    Popularity,
    /// Prefer the eligible object held by the *fewest* sharing peers
    /// (BitTorrent's rarest-first; ties to the lower object id).
    RarestFirst,
    /// Prefer the eligible object held by the *most* sharing peers
    /// (ties to the lower object id).
    MostCommonFirst,
    /// A uniform draw over the eligible objects of a uniformly drawn
    /// interest category.
    Uniform,
}

impl SelectionStrategy {
    /// Every strategy, in reporting order.
    #[must_use]
    pub fn all() -> [SelectionStrategy; 4] {
        [
            SelectionStrategy::Popularity,
            SelectionStrategy::RarestFirst,
            SelectionStrategy::MostCommonFirst,
            SelectionStrategy::Uniform,
        ]
    }

    /// The label used in configs and sweep axes.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SelectionStrategy::Popularity => "popularity",
            SelectionStrategy::RarestFirst => "rarest-first",
            SelectionStrategy::MostCommonFirst => "most-common-first",
            SelectionStrategy::Uniform => "uniform",
        }
    }
}

impl fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One exponential draw with the given mean, floored at a millisecond so a
/// degenerate draw can never produce a zero-length session/downtime loop.
#[must_use]
pub(crate) fn exp_draw_s(rng: &mut DetRng, mean_s: f64) -> f64 {
    let u = rng.gen_unit();
    (-mean_s * (1.0 - u).ln()).max(1e-3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_config_validates_bounds() {
        assert!(ChurnConfig::new(600.0, 120.0).validate().is_ok());
        assert!(ChurnConfig::new(0.0, 120.0).validate().is_err());
        assert!(ChurnConfig::new(600.0, f64::NAN).validate().is_err());
        assert_eq!(ChurnConfig::new(600.0, 120.0).label(), "on600s-off120s");
    }

    #[test]
    fn catastrophe_and_flash_crowd_validate_bounds() {
        assert!(CatastropheConfig::new(100.0, 3).validate().is_ok());
        assert!(CatastropheConfig::new(-1.0, 3).validate().is_err());
        assert!(CatastropheConfig::new(100.0, 0).validate().is_err());
        assert!(FlashCrowdConfig::new(100.0, 10).validate().is_ok());
        assert!(FlashCrowdConfig::new(100.0, 0).validate().is_err());
        assert!(FlashCrowdConfig::new(100.0, 10)
            .with_seed_holders(0)
            .validate()
            .is_err());
    }

    #[test]
    fn class_mix_counts_use_largest_remainder() {
        let mix = ClassMix::weighted([
            (CapacityClass::Fast, 0.25),
            (CapacityClass::Medium, 0.5),
            (CapacityClass::Slow, 0.25),
        ]);
        assert_eq!(
            mix.counts(8),
            vec![
                (CapacityClass::Fast, 2),
                (CapacityClass::Medium, 4),
                (CapacityClass::Slow, 2),
            ]
        );
        let total: usize = mix.counts(7).iter().map(|(_, n)| n).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn class_mix_validation_catches_bad_mixes() {
        assert!(ClassMix::uniform().validate().is_ok());
        assert!(ClassMix::weighted([]).validate().is_err());
        assert!(ClassMix::weighted([(CapacityClass::Fast, -0.1)])
            .validate()
            .is_err());
        assert!(
            ClassMix::weighted([(CapacityClass::Fast, 0.5), (CapacityClass::Fast, 0.5)])
                .validate()
                .is_err()
        );
        assert!(ClassMix::weighted([(CapacityClass::Fast, 0.0)])
            .validate()
            .is_err());
    }

    #[test]
    fn homogeneous_mixes_draw_no_randomness() {
        let mix = ClassMix::uniform();
        assert!(mix.is_homogeneous());
        let mut rng_a = DetRng::seed_from(1);
        let assigned = mix.assign(5, &mut rng_a);
        assert_eq!(assigned, vec![CapacityClass::Medium; 5]);
        // The rng must be untouched: the next draw equals a fresh stream's.
        let mut rng_b = DetRng::seed_from(1);
        assert_eq!(rng_a.gen_unit().to_bits(), rng_b.gen_unit().to_bits());
    }

    #[test]
    fn heterogeneous_assignment_is_deterministic_and_counted() {
        let mix = ClassMix::weighted([(CapacityClass::Fast, 0.5), (CapacityClass::Slow, 0.5)]);
        assert!(!mix.is_homogeneous());
        let mut rng_a = DetRng::seed_from(9);
        let mut rng_b = DetRng::seed_from(9);
        let a = mix.assign(20, &mut rng_a);
        let b = mix.assign(20, &mut rng_b);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|c| **c == CapacityClass::Fast).count(), 10);
    }

    #[test]
    fn capacity_class_multipliers_and_labels() {
        assert_eq!(CapacityClass::Fast.rate_multiplier(), 2.0);
        assert_eq!(CapacityClass::Medium.rate_multiplier(), 1.0);
        assert_eq!(CapacityClass::Slow.rate_multiplier(), 0.5);
        let labels: Vec<&str> = CapacityClass::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["fast", "medium", "slow"]);
    }

    #[test]
    fn selection_strategy_labels_are_distinct() {
        let labels: Vec<&str> = SelectionStrategy::all().iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn exponential_draws_are_positive_and_mean_scaled() {
        let mut rng = DetRng::seed_from(3);
        let mut sum = 0.0;
        for _ in 0..4_000 {
            let d = exp_draw_s(&mut rng, 500.0);
            assert!(d >= 1e-3);
            sum += d;
        }
        let mean = sum / 4_000.0;
        assert!((350.0..650.0).contains(&mean), "sample mean {mean}");
    }
}
