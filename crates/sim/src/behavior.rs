//! First-class peer behaviors: the strategic peers of Section III-B and the
//! countermeasures the paper proposes against them.
//!
//! The simulator used to model exactly one axis of behavior — a binary
//! `sharing` flag drawn from a free-rider fraction.  This module generalises
//! that into an object-safe [`PeerBehavior`] trait (mirroring the
//! [`credit::UploadScheduler`] redesign) with lifecycle hooks the event loop
//! consults, five concrete behaviors, a validated weighted population
//! ([`BehaviorMix`]), and the selectable [`Protection`] countermeasures:
//!
//! * [`Honest`] — shares its stored objects, serves valid blocks, reports its
//!   true participation level.
//! * [`FreeRider`] — never uploads (the paper's "non-sharing" peers).
//! * [`JunkSender`] — uploads garbage blocks to harvest exchange priority and
//!   pairwise credit without spending real content.
//! * [`ParticipationCheater`] — never uploads but announces an inflated
//!   KaZaA-style participation level.
//! * [`Middleman`] — advertises objects it does not store and relays blocks
//!   between peers that could have traded directly, collecting exchange
//!   priority while contributing nothing of its own.
//!
//! [`Protection`] selects the Section III-B countermeasure wired into the
//! transfer path: windowed synchronous block validation
//! ([`exchange::cheat::WindowedExchange`]) or the trusted mediator
//! ([`exchange::cheat::Mediator`]'s key-release scheme).

use std::fmt;

use des::DetRng;
use serde::{Deserialize, Serialize};

use crate::PeerClass;

/// The participation level a [`ParticipationCheater`] announces regardless of
/// what it actually uploaded.  Any value this large dominates every honest
/// report under the [`credit::ParticipationLevel`] scheduler.
pub const INFLATED_PARTICIPATION_LEVEL: f64 = 1.0e6;

/// A peer's strategic behavior, consulted by the simulation's event loop.
///
/// The trait is object-safe: the simulation holds one boxed behavior per
/// peer, built from the plain-data [`BehaviorKind`] named in the
/// configuration ([`BehaviorKind::build`]), exactly like
/// [`credit::SchedulerKind`] builds an [`credit::UploadScheduler`].
///
/// Every hook has an honest default, so a custom behavior only overrides the
/// axes on which it cheats.
///
/// # Example
///
/// ```
/// use sim::{BehaviorKind, PeerBehavior};
///
/// let honest = BehaviorKind::Honest.build();
/// assert!(honest.shares_honestly() && honest.block_validity());
///
/// let middleman = BehaviorKind::Middleman.build();
/// // Middlemen advertise sourceable objects they do not store.
/// assert!(middleman.advertised_holdings(false, true));
/// assert!(!middleman.shares_honestly());
/// ```
pub trait PeerBehavior: fmt::Debug + Send + Sync {
    /// The plain-data name of this behavior (for configs and reports).
    fn kind(&self) -> BehaviorKind;

    /// Whether the peer offers upload service at all.  `false` for peers
    /// that only download (free-riders, participation cheaters).
    fn uploads(&self) -> bool {
        true
    }

    /// Whether the peer's uploads are genuine own content: it serves valid
    /// blocks of objects it actually stores.  `false` for junk senders
    /// (garbage blocks) and middlemen (relayed content) as well as for peers
    /// that do not upload; only honest holders can source a middleman relay.
    fn shares_honestly(&self) -> bool {
        self.uploads()
    }

    /// Whether the peer advertises holding an object, given whether it
    /// actually `stores` it and whether the object is `sourceable` from some
    /// honest holder elsewhere.  Middlemen answer `true` for sourceable
    /// objects they do not store — the Section III-B middleman attack.
    fn advertised_holdings(&self, stores: bool, sourceable: bool) -> bool {
        let _ = sourceable;
        stores
    }

    /// Capability probe: can this behavior ever advertise an object it does
    /// not store?  Derived from [`PeerBehavior::advertised_holdings`] in the
    /// most permissive case; the event loop uses it to decide whether a
    /// peer's claims can exceed its storage at all, before evaluating the
    /// per-object facts.
    fn advertises_unstored(&self) -> bool {
        self.advertised_holdings(false, true)
    }

    /// The participation level the peer announces, given the level its real
    /// upload volume would honestly justify.  Participation cheaters inflate
    /// this (the KaZaA exploit the paper dismisses in Section III-B).
    fn reported_participation(&self, honest_level: f64) -> f64 {
        honest_level
    }

    /// Whether blocks this peer uploads carry valid data.  `false` for junk
    /// senders; countermeasures decide how quickly the garbage is caught.
    fn block_validity(&self) -> bool {
        true
    }

    /// A short, stable label for reports and figures.
    fn label(&self) -> &'static str {
        self.kind().label()
    }
}

/// The honest baseline: shares stored objects, serves valid blocks, reports
/// its true participation level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Honest;

impl PeerBehavior for Honest {
    fn kind(&self) -> BehaviorKind {
        BehaviorKind::Honest
    }
}

/// A peer that never uploads (the paper's "non-sharing" population).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FreeRider;

impl PeerBehavior for FreeRider {
    fn kind(&self) -> BehaviorKind {
        BehaviorKind::FreeRider
    }

    fn uploads(&self) -> bool {
        false
    }
}

/// A peer that uploads garbage: it stores and advertises real objects, but
/// the blocks it serves are junk, harvesting exchange priority and pairwise
/// credit at zero content cost (Section III-B's "cheat by sending junk").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JunkSender;

impl PeerBehavior for JunkSender {
    fn kind(&self) -> BehaviorKind {
        BehaviorKind::JunkSender
    }

    fn shares_honestly(&self) -> bool {
        false
    }

    fn block_validity(&self) -> bool {
        false
    }
}

/// A peer that never uploads but announces an inflated participation level,
/// jumping KaZaA-style queues without contributing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParticipationCheater;

impl PeerBehavior for ParticipationCheater {
    fn kind(&self) -> BehaviorKind {
        BehaviorKind::ParticipationCheater
    }

    fn uploads(&self) -> bool {
        false
    }

    fn reported_participation(&self, honest_level: f64) -> f64 {
        honest_level + INFLATED_PARTICIPATION_LEVEL
    }
}

/// The Section III-B middleman: it advertises objects it does not store
/// (as long as some honest peer could source them) and relays blocks between
/// peers that could have exchanged directly, collecting exchange priority
/// while never contributing content of its own.  The mediator countermeasure
/// leaves it holding ciphertext only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Middleman;

impl PeerBehavior for Middleman {
    fn kind(&self) -> BehaviorKind {
        BehaviorKind::Middleman
    }

    fn shares_honestly(&self) -> bool {
        false
    }

    fn advertised_holdings(&self, stores: bool, sourceable: bool) -> bool {
        stores || sourceable
    }
}

/// Plain-data name of a [`PeerBehavior`], used in configurations, sweep axes
/// and per-behavior report breakdowns.  [`BehaviorKind::build`] constructs
/// the matching trait object for a run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum BehaviorKind {
    /// [`Honest`].
    #[default]
    Honest,
    /// [`FreeRider`].
    FreeRider,
    /// [`JunkSender`].
    JunkSender,
    /// [`ParticipationCheater`].
    ParticipationCheater,
    /// [`Middleman`].
    Middleman,
}

impl BehaviorKind {
    /// Every selectable behavior, in presentation order.
    #[must_use]
    pub fn all() -> Vec<BehaviorKind> {
        vec![
            BehaviorKind::Honest,
            BehaviorKind::FreeRider,
            BehaviorKind::JunkSender,
            BehaviorKind::ParticipationCheater,
            BehaviorKind::Middleman,
        ]
    }

    /// The Section III-B adversaries (everything except [`Honest`] and the
    /// merely passive [`FreeRider`]).
    #[must_use]
    pub fn adversarial() -> Vec<BehaviorKind> {
        vec![
            BehaviorKind::JunkSender,
            BehaviorKind::ParticipationCheater,
            BehaviorKind::Middleman,
        ]
    }

    /// Instantiates the behavior for one peer.
    #[must_use]
    pub fn build(&self) -> Box<dyn PeerBehavior> {
        match self {
            BehaviorKind::Honest => Box::new(Honest),
            BehaviorKind::FreeRider => Box::new(FreeRider),
            BehaviorKind::JunkSender => Box::new(JunkSender),
            BehaviorKind::ParticipationCheater => Box::new(ParticipationCheater),
            BehaviorKind::Middleman => Box::new(Middleman),
        }
    }

    /// The label used in configs, figures and report breakdowns.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BehaviorKind::Honest => "honest",
            BehaviorKind::FreeRider => "free-rider",
            BehaviorKind::JunkSender => "junk-sender",
            BehaviorKind::ParticipationCheater => "participation-cheater",
            BehaviorKind::Middleman => "middleman",
        }
    }

    /// The binary class this behavior falls into for the paper's
    /// sharing/non-sharing figures: peers that upload (honestly or not)
    /// count as sharing.  Must agree with [`PeerBehavior::uploads`] of the
    /// built behavior (asserted in tests); spelled out as a match so the
    /// hot reporting paths never allocate a trait object.
    #[must_use]
    pub fn class(&self) -> PeerClass {
        match self {
            BehaviorKind::Honest | BehaviorKind::JunkSender | BehaviorKind::Middleman => {
                PeerClass::Sharing
            }
            BehaviorKind::FreeRider | BehaviorKind::ParticipationCheater => PeerClass::NonSharing,
        }
    }
}

impl fmt::Display for BehaviorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A validated, weighted population of [`BehaviorKind`]s.
///
/// The mix replaces the old `SimConfig::freerider_fraction` field: it maps a
/// peer count onto per-behavior head counts (largest-remainder rounding, so
/// the counts always sum to the population) and deterministically shuffles
/// the assignment with the run's setup RNG stream.
///
/// # Example
///
/// ```
/// use sim::{BehaviorKind, BehaviorMix};
///
/// let mix = BehaviorMix::weighted([
///     (BehaviorKind::Honest, 0.6),
///     (BehaviorKind::FreeRider, 0.2),
///     (BehaviorKind::Middleman, 0.2),
/// ]);
/// assert!(mix.validate().is_ok());
/// assert_eq!(mix.counts(10), vec![
///     (BehaviorKind::Honest, 6),
///     (BehaviorKind::FreeRider, 2),
///     (BehaviorKind::Middleman, 2),
/// ]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorMix {
    entries: Vec<(BehaviorKind, f64)>,
}

impl BehaviorMix {
    /// A population of honest sharers only.
    #[must_use]
    pub fn honest() -> Self {
        BehaviorMix {
            entries: vec![(BehaviorKind::Honest, 1.0)],
        }
    }

    /// The paper's classic binary population: `fraction` free-riders, the
    /// rest honest.  Degenerates to a single-entry mix at 0 and 1.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` lies in `[0, 1]` — preserving the error the
    /// old `freerider_fraction` config field raised on out-of-range values
    /// (a silently clamped `50` instead of `0.5` would sweep the wrong
    /// population).
    #[must_use]
    pub fn with_freeriders(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "freerider fraction must be in [0, 1], got {fraction}"
        );
        if fraction <= 0.0 {
            return BehaviorMix::honest();
        }
        if fraction >= 1.0 {
            return BehaviorMix {
                entries: vec![(BehaviorKind::FreeRider, 1.0)],
            };
        }
        // Free-riders first: mirrors the legacy flag layout, so the shuffled
        // assignment is bit-identical to the old `freerider_fraction` code
        // for the same seed.
        BehaviorMix {
            entries: vec![
                (BehaviorKind::FreeRider, fraction),
                (BehaviorKind::Honest, 1.0 - fraction),
            ],
        }
    }

    /// Builds a mix from `(kind, weight)` pairs.  Weights need not sum to 1;
    /// they are normalised.  Call [`BehaviorMix::validate`] (or let
    /// [`crate::SimConfig::validate`] do it) before running.
    #[must_use]
    pub fn weighted(entries: impl IntoIterator<Item = (BehaviorKind, f64)>) -> Self {
        BehaviorMix {
            entries: entries.into_iter().collect(),
        }
    }

    /// Appends one more `(kind, weight)` entry (builder style).
    #[must_use]
    pub fn and(mut self, kind: BehaviorKind, weight: f64) -> Self {
        self.entries.push((kind, weight));
        self
    }

    /// The raw `(kind, weight)` entries, in declaration order.
    #[must_use]
    pub fn entries(&self) -> &[(BehaviorKind, f64)] {
        &self.entries
    }

    /// The normalised population share of `kind` (0 if absent).
    #[must_use]
    pub fn share(&self, kind: BehaviorKind) -> f64 {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.entries
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, w)| w / total)
            .sum()
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: no entries,
    /// a duplicate kind, a non-finite or negative weight, or an all-zero
    /// total weight.
    pub fn validate(&self) -> Result<(), String> {
        if self.entries.is_empty() {
            return Err("a behavior mix needs at least one entry".into());
        }
        for (kind, weight) in &self.entries {
            if !weight.is_finite() || *weight < 0.0 {
                return Err(format!(
                    "behavior weight for {kind} must be finite and non-negative, got {weight}"
                ));
            }
            if self.entries.iter().filter(|(k, _)| k == kind).count() > 1 {
                return Err(format!("behavior {kind} appears more than once in the mix"));
            }
        }
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return Err("behavior weights must not all be zero".into());
        }
        Ok(())
    }

    /// The per-behavior head counts for a population of `num_peers`, via
    /// largest-remainder rounding (ties broken towards earlier entries).
    /// The counts always sum to `num_peers`.
    #[must_use]
    pub fn counts(&self, num_peers: usize) -> Vec<(BehaviorKind, usize)> {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        let mut counts: Vec<(BehaviorKind, usize)> = Vec::with_capacity(self.entries.len());
        let mut fractions: Vec<(usize, f64)> = Vec::with_capacity(self.entries.len());
        let mut assigned = 0usize;
        for (index, (kind, weight)) in self.entries.iter().enumerate() {
            let ideal = weight / total * num_peers as f64;
            let floor = ideal.floor() as usize;
            assigned += floor;
            counts.push((*kind, floor));
            fractions.push((index, ideal - floor as f64));
        }
        // Hand the leftover heads to the largest fractional parts; ties go to
        // the earlier entry, which reproduces round() for the legacy
        // two-entry free-rider mix.
        fractions.sort_by(|(ia, fa), (ib, fb)| {
            fb.partial_cmp(fa)
                .expect("behavior fractions are finite")
                .then(ia.cmp(ib))
        });
        for (index, _) in fractions
            .into_iter()
            .take(num_peers.saturating_sub(assigned))
        {
            counts[index].1 += 1;
        }
        counts
    }

    /// Deterministically assigns one behavior per peer: expand the counts in
    /// entry order, then shuffle with `rng`.
    #[must_use]
    pub fn assign(&self, num_peers: usize, rng: &mut DetRng) -> Vec<BehaviorKind> {
        let mut kinds = Vec::with_capacity(num_peers);
        for (kind, count) in self.counts(num_peers) {
            kinds.extend(std::iter::repeat_n(kind, count));
        }
        rng.shuffle(&mut kinds);
        kinds
    }

    /// The label used on sweep axes: `kind:weight` pairs joined with `+`.
    #[must_use]
    pub fn label(&self) -> String {
        self.entries
            .iter()
            .map(|(kind, weight)| format!("{kind}:{weight}"))
            .collect::<Vec<_>>()
            .join("+")
    }
}

impl Default for BehaviorMix {
    /// The paper's Table II population: half free-riders.
    fn default() -> Self {
        BehaviorMix::with_freeriders(0.5)
    }
}

impl fmt::Display for BehaviorMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The Section III-B countermeasure wired into the transfer path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Protection {
    /// No protection: junk is discovered only after a full object's worth of
    /// garbage arrived, and middlemen keep everything they receive.
    #[default]
    None,
    /// Synchronous windowed block validation
    /// ([`exchange::cheat::WindowedExchange`]): each exchange session
    /// validates block-by-block, so a junk sender is caught on its first
    /// block, at the price of capping the exchange rate at
    /// `window × block / rtt` while the trust window grows to `max_window`.
    Windowed {
        /// Upper bound of the adaptive validation window, in blocks.
        max_window: u32,
    },
    /// The trusted mediator ([`exchange::cheat::Mediator`]): transfers are
    /// encrypted end-to-end and keys are released only to the peer the true
    /// origin named, so junk is caught at the first sampled block and a
    /// relaying middleman is left with ciphertext it can never decrypt.
    Mediated,
}

impl Protection {
    /// The canonical comparison set: unprotected, windowed (window 8), and
    /// mediated.
    #[must_use]
    pub fn all_basic() -> Vec<Protection> {
        vec![
            Protection::None,
            Protection::Windowed { max_window: 8 },
            Protection::Mediated,
        ]
    }

    /// The label used in configs, sweep axes and figures.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Protection::None => "none".to_string(),
            Protection::Windowed { max_window } => format!("windowed-{max_window}"),
            Protection::Mediated => "mediated".to_string(),
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint (a zero validation
    /// window).
    pub fn validate(&self) -> Result<(), String> {
        if let Protection::Windowed { max_window } = self {
            if *max_window == 0 {
                return Err("windowed protection needs max_window >= 1".into());
            }
        }
        Ok(())
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_matching_behaviors() {
        for kind in BehaviorKind::all() {
            let behavior = kind.build();
            assert_eq!(behavior.kind(), kind);
            assert_eq!(behavior.label(), kind.label());
        }
    }

    #[test]
    fn hook_matrix_matches_section_iii_b() {
        let honest = BehaviorKind::Honest.build();
        assert!(honest.uploads() && honest.shares_honestly() && honest.block_validity());
        assert!(!honest.advertised_holdings(false, true));
        assert_eq!(honest.reported_participation(7.0), 7.0);

        let freerider = BehaviorKind::FreeRider.build();
        assert!(!freerider.uploads());
        assert!(!freerider.shares_honestly());

        let junk = BehaviorKind::JunkSender.build();
        assert!(junk.uploads() && !junk.shares_honestly() && !junk.block_validity());
        assert!(
            junk.advertised_holdings(true, false),
            "advertises real holdings"
        );

        let cheater = BehaviorKind::ParticipationCheater.build();
        assert!(!cheater.uploads());
        assert!(cheater.reported_participation(1.0) >= INFLATED_PARTICIPATION_LEVEL);

        let middleman = BehaviorKind::Middleman.build();
        assert!(middleman.uploads() && !middleman.shares_honestly());
        assert!(middleman.advertised_holdings(false, true));
        assert!(!middleman.advertised_holdings(false, false));
        assert!(middleman.block_validity(), "relayed blocks are real data");
    }

    #[test]
    fn classes_split_on_uploading() {
        assert_eq!(BehaviorKind::Honest.class(), PeerClass::Sharing);
        assert_eq!(BehaviorKind::JunkSender.class(), PeerClass::Sharing);
        assert_eq!(BehaviorKind::Middleman.class(), PeerClass::Sharing);
        assert_eq!(BehaviorKind::FreeRider.class(), PeerClass::NonSharing);
        assert_eq!(
            BehaviorKind::ParticipationCheater.class(),
            PeerClass::NonSharing
        );
        // The allocation-free match must agree with the trait hook.
        for kind in BehaviorKind::all() {
            assert_eq!(
                kind.class() == PeerClass::Sharing,
                kind.build().uploads(),
                "{kind}"
            );
        }
    }

    #[test]
    fn freerider_mix_reproduces_legacy_rounding() {
        let mix = BehaviorMix::with_freeriders(0.5);
        assert_eq!(
            mix.counts(31),
            vec![(BehaviorKind::FreeRider, 16), (BehaviorKind::Honest, 15)],
            "ties round towards the free-rider entry, like round()"
        );
        assert_eq!(
            mix.counts(30),
            vec![(BehaviorKind::FreeRider, 15), (BehaviorKind::Honest, 15)]
        );
        for n in [0usize, 1, 7, 100] {
            let total: usize = mix.counts(n).iter().map(|(_, c)| c).sum();
            assert_eq!(total, n);
        }
    }

    #[test]
    fn degenerate_freerider_fractions_collapse() {
        assert_eq!(BehaviorMix::with_freeriders(0.0), BehaviorMix::honest());
        let all = BehaviorMix::with_freeriders(1.0);
        assert_eq!(all.counts(5), vec![(BehaviorKind::FreeRider, 5)]);
        assert_eq!(all.share(BehaviorKind::FreeRider), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_freerider_fractions_are_rejected() {
        let _ = BehaviorMix::with_freeriders(1.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn nan_freerider_fractions_are_rejected() {
        let _ = BehaviorMix::with_freeriders(f64::NAN);
    }

    #[test]
    fn only_the_middleman_advertises_unstored_objects() {
        for kind in BehaviorKind::all() {
            assert_eq!(
                kind.build().advertises_unstored(),
                kind == BehaviorKind::Middleman,
                "{kind}"
            );
        }
    }

    #[test]
    fn counts_cover_the_population_for_uneven_weights() {
        let mix = BehaviorMix::weighted([
            (BehaviorKind::Honest, 1.0),
            (BehaviorKind::JunkSender, 1.0),
            (BehaviorKind::Middleman, 1.0),
        ]);
        let counts = mix.counts(10);
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 10);
        for (_, c) in counts {
            assert!((3..=4).contains(&c));
        }
    }

    #[test]
    fn assignment_is_deterministic_and_complete() {
        let mix = BehaviorMix::weighted([
            (BehaviorKind::Honest, 0.5),
            (BehaviorKind::FreeRider, 0.25),
            (BehaviorKind::Middleman, 0.25),
        ]);
        let a = mix.assign(40, &mut DetRng::seed_from(9));
        let b = mix.assign(40, &mut DetRng::seed_from(9));
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        assert_eq!(
            a.iter().filter(|k| **k == BehaviorKind::Middleman).count(),
            10
        );
    }

    #[test]
    fn validation_rejects_bad_mixes() {
        assert!(BehaviorMix::weighted([]).validate().is_err());
        assert!(BehaviorMix::weighted([(BehaviorKind::Honest, -1.0)])
            .validate()
            .is_err());
        assert!(BehaviorMix::weighted([(BehaviorKind::Honest, f64::NAN)])
            .validate()
            .is_err());
        assert!(BehaviorMix::weighted([(BehaviorKind::Honest, 0.0)])
            .validate()
            .is_err());
        assert!(
            BehaviorMix::weighted([(BehaviorKind::Honest, 0.5), (BehaviorKind::Honest, 0.5)])
                .validate()
                .is_err()
        );
        assert!(BehaviorMix::honest()
            .and(BehaviorKind::JunkSender, 0.25)
            .validate()
            .is_ok());
    }

    #[test]
    fn shares_are_normalised() {
        let mix =
            BehaviorMix::weighted([(BehaviorKind::Honest, 3.0), (BehaviorKind::FreeRider, 1.0)]);
        assert!((mix.share(BehaviorKind::Honest) - 0.75).abs() < 1e-12);
        assert!((mix.share(BehaviorKind::FreeRider) - 0.25).abs() < 1e-12);
        assert_eq!(mix.share(BehaviorKind::Middleman), 0.0);
    }

    #[test]
    fn labels_are_stable() {
        let mix =
            BehaviorMix::weighted([(BehaviorKind::Honest, 0.5), (BehaviorKind::JunkSender, 0.5)]);
        assert_eq!(mix.label(), "honest:0.5+junk-sender:0.5");
        assert_eq!(Protection::None.label(), "none");
        assert_eq!(Protection::Windowed { max_window: 8 }.label(), "windowed-8");
        assert_eq!(Protection::Mediated.to_string(), "mediated");
    }

    #[test]
    fn protection_validation() {
        assert!(Protection::None.validate().is_ok());
        assert!(Protection::Windowed { max_window: 1 }.validate().is_ok());
        assert!(Protection::Windowed { max_window: 0 }.validate().is_err());
        assert!(Protection::Mediated.validate().is_ok());
        assert_eq!(Protection::all_basic().len(), 3);
    }
}
