//! Per-peer simulation state.

use std::collections::BTreeMap;

use des::SimTime;
use netsim::SlotPool;
use workload::{ObjectId, PeerId, PeerInterests, Storage};

use crate::{BehaviorKind, CapacityClass, PeerClass};

/// The state of one pending download (one "outstanding request").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WantState {
    /// When the request was issued (used for waiting- and download-time
    /// metrics).
    pub issued_at: SimTime,
    /// Bytes of the object received so far, across all sessions.
    pub received_bytes: u64,
    /// The providers discovered by the lookup for this object.
    pub providers: Vec<PeerId>,
    /// Number of currently active sessions delivering this object.
    pub active_sessions: usize,
}

impl WantState {
    /// Creates a fresh want issued at `issued_at` with the given provider list.
    #[must_use]
    pub fn new(issued_at: SimTime, providers: Vec<PeerId>) -> Self {
        WantState {
            issued_at,
            received_bytes: 0,
            providers,
            active_sessions: 0,
        }
    }
}

/// The complete state of one peer.
#[derive(Debug, Clone)]
pub struct PeerState {
    /// The peer's identifier.
    pub id: PeerId,
    /// The peer's strategic behavior (see [`crate::PeerBehavior`]).  The
    /// boxed trait object lives in the simulation; this is its plain-data
    /// name.
    pub behavior: BehaviorKind,
    /// Whether the peer uploads at all.  Derived from `behavior`
    /// (`PeerBehavior::uploads`); cached here because the scheduling hot
    /// paths read it constantly.
    pub sharing: bool,
    /// Whether the peer is currently in the system.  Always `true` without
    /// churn; a departed peer holds no slots, no transfers, no request-graph
    /// edges and no holders-index entries until it rejoins.
    pub online: bool,
    /// The peer's access-link capacity class: a multiplier on the per-slot
    /// rate of its uploads (assigned from [`crate::ClassMix`] at setup).
    pub capacity: CapacityClass,
    /// The categories the peer is interested in.
    pub interests: PeerInterests,
    /// The objects the peer currently stores.
    pub storage: Storage,
    /// Upload transfer slots.
    pub upload_slots: SlotPool,
    /// Download transfer slots.
    pub download_slots: SlotPool,
    /// Outstanding downloads, keyed by object.
    pub wants: BTreeMap<ObjectId, WantState>,
    /// Total bytes this peer has downloaded over the run (for Figure 10).
    pub downloaded_bytes: u64,
    /// Total bytes this peer has uploaded over the run.
    pub uploaded_bytes: u64,
    /// Bytes received that turned out to be junk (a cheating uploader).
    pub junk_bytes: u64,
    /// Bytes received that the peer can never decrypt (a middleman under
    /// [`crate::Protection::Mediated`]).
    pub ciphertext_bytes: u64,
}

impl PeerState {
    /// The peer's class label for reporting.
    #[must_use]
    pub fn class(&self) -> PeerClass {
        self.behavior.class()
    }

    /// Bytes received as genuine, decryptable content.
    #[must_use]
    pub fn usable_bytes(&self) -> u64 {
        self.downloaded_bytes
            .saturating_sub(self.junk_bytes)
            .saturating_sub(self.ciphertext_bytes)
    }

    /// Whether the peer can accept one more outstanding download.
    #[must_use]
    pub fn can_issue_request(&self, max_pending: usize) -> bool {
        self.wants.len() < max_pending
    }

    /// Whether the peer already stores or is already downloading `object`.
    #[must_use]
    pub fn has_or_wants(&self, object: ObjectId) -> bool {
        self.storage.contains(object) || self.wants.contains_key(&object)
    }

    /// The objects this peer currently wants, in id order.
    #[must_use]
    pub fn wanted_objects(&self) -> Vec<ObjectId> {
        self.wants.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::DetRng;
    use workload::{Catalog, WorkloadConfig};

    fn test_peer(behavior: BehaviorKind) -> PeerState {
        let config = WorkloadConfig::small();
        let mut rng = DetRng::seed_from(1);
        let catalog = Catalog::generate(&config, &mut rng);
        let interests = PeerInterests::generate(&catalog, &config, &mut rng);
        PeerState {
            id: PeerId::new(0),
            behavior,
            sharing: behavior.build().uploads(),
            online: true,
            capacity: CapacityClass::Medium,
            interests,
            storage: Storage::new(5),
            upload_slots: SlotPool::new(8),
            download_slots: SlotPool::new(80),
            wants: BTreeMap::new(),
            downloaded_bytes: 0,
            uploaded_bytes: 0,
            junk_bytes: 0,
            ciphertext_bytes: 0,
        }
    }

    #[test]
    fn class_follows_behavior() {
        assert_eq!(test_peer(BehaviorKind::Honest).class(), PeerClass::Sharing);
        assert_eq!(
            test_peer(BehaviorKind::FreeRider).class(),
            PeerClass::NonSharing
        );
        assert_eq!(
            test_peer(BehaviorKind::Middleman).class(),
            PeerClass::Sharing
        );
        assert!(test_peer(BehaviorKind::JunkSender).sharing);
        assert!(!test_peer(BehaviorKind::ParticipationCheater).sharing);
    }

    #[test]
    fn usable_bytes_subtract_junk_and_ciphertext() {
        let mut peer = test_peer(BehaviorKind::Honest);
        peer.downloaded_bytes = 100;
        peer.junk_bytes = 30;
        peer.ciphertext_bytes = 20;
        assert_eq!(peer.usable_bytes(), 50);
        peer.junk_bytes = 200; // defensive: never underflows
        assert_eq!(peer.usable_bytes(), 0);
    }

    #[test]
    fn pending_request_budget() {
        let mut peer = test_peer(BehaviorKind::Honest);
        assert!(peer.can_issue_request(2));
        peer.wants
            .insert(ObjectId::new(1), WantState::new(SimTime::ZERO, vec![]));
        peer.wants
            .insert(ObjectId::new(2), WantState::new(SimTime::ZERO, vec![]));
        assert!(!peer.can_issue_request(2));
        assert!(peer.can_issue_request(3));
    }

    #[test]
    fn has_or_wants_covers_storage_and_pending() {
        let mut peer = test_peer(BehaviorKind::Honest);
        peer.storage.insert(ObjectId::new(7));
        peer.wants
            .insert(ObjectId::new(9), WantState::new(SimTime::ZERO, vec![]));
        assert!(peer.has_or_wants(ObjectId::new(7)));
        assert!(peer.has_or_wants(ObjectId::new(9)));
        assert!(!peer.has_or_wants(ObjectId::new(11)));
        assert_eq!(peer.wanted_objects(), vec![ObjectId::new(9)]);
    }

    #[test]
    fn want_state_starts_clean() {
        let want = WantState::new(SimTime::from_secs_f64(5.0), vec![PeerId::new(3)]);
        assert_eq!(want.received_bytes, 0);
        assert_eq!(want.active_sessions, 0);
        assert_eq!(want.providers, vec![PeerId::new(3)]);
    }
}
