//! Simulation configuration (the paper's Table II plus engine knobs).

use credit::SchedulerKind;
use exchange::ExchangePolicy;
use netsim::LinkConfig;
use serde::{Deserialize, Serialize};
use workload::WorkloadConfig;

use crate::{
    BehaviorMix, CacheGranularity, CatastropheConfig, ChurnConfig, ClassMix, FlashCrowdConfig,
    Protection, SelectionStrategy,
};

/// Full configuration of one simulation run.
///
/// [`SimConfig::paper_defaults`] reproduces Table II of the paper;
/// [`SimConfig::quick_test`] is a drastically scaled-down variant for unit
/// tests and doc examples.
///
/// # Example
///
/// ```
/// use sim::SimConfig;
///
/// let config = SimConfig::paper_defaults();
/// assert_eq!(config.num_peers, 200);
/// assert_eq!(config.max_pending_objects, 6);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of peers in the system.
    pub num_peers: usize,
    /// The weighted population of peer behaviors (honest sharers,
    /// free-riders, and the Section III-B adversaries).  Replaces the old
    /// binary `freerider_fraction` field; see
    /// [`SimConfig::with_freerider_fraction`] for the migration shim.
    pub behaviors: BehaviorMix,
    /// The Section III-B countermeasure active on the transfer path.
    pub protection: Protection,
    /// Round-trip time between peers, in seconds.  Only read by
    /// [`Protection::Windowed`], whose synchronous validation caps the
    /// exchange rate at `window × block / rtt`.
    pub rtt_s: f64,
    /// Content and storage parameters.
    pub workload: WorkloadConfig,
    /// Access-link capacities and slot size.
    pub link: LinkConfig,
    /// The exchange discipline under evaluation.
    pub discipline: ExchangePolicy,
    /// The upload scheduler ordering non-exchange requests (and, under
    /// [`ExchangePolicy::NoExchange`], all requests).  Built into a
    /// [`credit::UploadScheduler`] trait object per run.
    pub scheduler: SchedulerKind,
    /// Whether a newly feasible exchange may preempt an ongoing non-exchange
    /// upload (the paper reclaims such slots "as soon as another exchange
    /// becomes possible").
    pub preemption: bool,
    /// Maximum number of objects a peer downloads concurrently
    /// ("max pending objects" in Table II).
    pub max_pending_objects: usize,
    /// Capacity of each peer's incoming-request queue.
    pub irq_capacity: usize,
    /// Maximum number of providers a lookup returns for one object
    /// (the paper: "locate up to a certain fraction of peers").
    pub lookup_max_providers: usize,
    /// Bytes moved per transfer block.
    pub block_bytes: u64,
    /// Maximum nodes visited per ring search (bounds the per-scheduling-step
    /// cost on providers with very busy incoming-request queues).
    pub ring_search_budget: usize,
    /// Maximum incoming-request entries followed per node during ring search
    /// (the effective branching factor of the shipped request tree).
    pub ring_search_fanout: usize,
    /// How many discovered candidate rings a provider probes per scheduling
    /// step before giving up (the paper's peers pick the first feasible
    /// exchange rather than exhaustively trying every proposal).
    pub ring_attempts_per_schedule: usize,
    /// Whether discovered ring candidates are memoised across scheduling
    /// rounds (see [`crate::RingCandidateCache`]).  The cache is exact —
    /// runs produce identical reports with it on or off — so this knob
    /// exists for benchmarking and debugging, not for accuracy trade-offs.
    pub ring_candidate_cache: bool,
    /// How precisely deltas invalidate cached ring candidates (see
    /// [`crate::CacheGranularity`]).  Both granularities are exact; entry
    /// level (the default) drops strictly fewer entries per delta and is the
    /// difference between tractable and hopeless at 10⁴ peers.  Ignored when
    /// [`ring_candidate_cache`](Self::ring_candidate_cache) is off.
    pub ring_cache_granularity: CacheGranularity,
    /// Number of worker shards the scheduling hot path fans out to (1 =
    /// fully sequential, the default).  Within one event timestamp, the
    /// ring searches and serve-queue assemblies of a `TrySchedule` batch are
    /// partitioned by provider across a **persistent pool** of this many
    /// worker threads (spawned lazily at the first sharded batch, joined
    /// when the simulation drops), each with its own long-lived
    /// [`exchange::SearchScratch`]; the resulting candidate decisions are
    /// then applied by a single-threaded merge in the event queue's
    /// deterministic order.  Reports are **bit-identical** for every shard
    /// count — the knob trades threads for wall-clock, never accuracy (see
    /// `tests/sharded_equivalence.rs` and `tests/shard_pool.rs`).
    pub shards: usize,
    /// Minimum number of distinct plannable providers a same-timestamp
    /// `TrySchedule` batch needs before it fans out to the worker pool;
    /// smaller batches are handled inline.  `0` (the default) means
    /// `max(shards, 2)`, the pre-knob behavior.  Purely a
    /// latency/throughput trade — planned and inline handling are
    /// bit-identical, so this never affects results.
    pub shard_min_batch: usize,
    /// Interval between on-disk checkpoints of the full simulation state,
    /// in virtual seconds (`None` = no checkpointing, the default).  Resuming
    /// from any checkpoint is **bit-identical** to the uninterrupted run,
    /// including [`crate::RingCacheStats`] (see
    /// [`crate::Simulation::checkpoint`] and `tests/checkpoint_equivalence.rs`).
    pub checkpoint_every_s: Option<f64>,
    /// Virtual length of the run, in seconds.
    pub sim_duration_s: f64,
    /// Warm-up period excluded from all reported statistics, in seconds.
    /// The system starts empty, so early completions are unrepresentative;
    /// figures use a warm-up of a few simulated hours.
    pub warmup_s: f64,
    /// Interval between a peer's storage-maintenance passes, in seconds.
    pub storage_maintenance_interval_s: f64,
    /// Interval at which a peer retries generating requests for which no
    /// provider was found, in seconds.
    pub request_retry_interval_s: f64,
    /// Session churn: peers alternate exponentially distributed online
    /// sessions and offline downtimes (`None` = the fixed population the
    /// paper simulates, the default).
    pub churn: Option<ChurnConfig>,
    /// Scripted catastrophic departure of the top-k providers (`None` = off,
    /// the default).
    pub catastrophe: Option<CatastropheConfig>,
    /// Scripted flash-crowd object release (`None` = off, the default).
    pub flash_crowd: Option<FlashCrowdConfig>,
    /// The weighted population of capacity classes (rate multipliers on
    /// uploads).  Defaults to the homogeneous all-`Medium` mix, which is
    /// bit-identical to the pre-class engine.
    pub classes: ClassMix,
    /// How peers pick the next object to request within their interests.
    /// Defaults to the paper's popularity-weighted draw.
    pub chunk_selection: SelectionStrategy,
}

impl SimConfig {
    /// The configuration of Table II in the paper.
    #[must_use]
    pub fn paper_defaults() -> Self {
        SimConfig {
            num_peers: 200,
            behaviors: BehaviorMix::with_freeriders(0.5),
            protection: Protection::None,
            rtt_s: 0.2,
            workload: WorkloadConfig::paper_defaults(),
            link: LinkConfig::paper_defaults(),
            discipline: ExchangePolicy::two_five_way(),
            scheduler: SchedulerKind::Fifo,
            preemption: true,
            max_pending_objects: 6,
            irq_capacity: 1000,
            lookup_max_providers: 10,
            block_bytes: 256 * 1024,
            ring_search_budget: 6_000,
            ring_search_fanout: 16,
            ring_attempts_per_schedule: 8,
            ring_candidate_cache: true,
            ring_cache_granularity: CacheGranularity::Entry,
            shards: 1,
            shard_min_batch: 0,
            checkpoint_every_s: None,
            sim_duration_s: 48.0 * 3600.0,
            warmup_s: 8.0 * 3600.0,
            storage_maintenance_interval_s: 600.0,
            request_retry_interval_s: 300.0,
            churn: None,
            catastrophe: None,
            flash_crowd: None,
            classes: ClassMix::uniform(),
            chunk_selection: SelectionStrategy::Popularity,
        }
    }

    /// A small, fast configuration for tests and doc examples: 30 peers,
    /// small objects, a short horizon.
    #[must_use]
    pub fn quick_test() -> Self {
        let mut workload = WorkloadConfig::small();
        workload.object_size_bytes = 2 * 1024 * 1024;
        SimConfig {
            num_peers: 30,
            behaviors: BehaviorMix::with_freeriders(0.5),
            protection: Protection::None,
            rtt_s: 0.2,
            workload,
            link: LinkConfig::paper_defaults(),
            discipline: ExchangePolicy::two_five_way(),
            scheduler: SchedulerKind::Fifo,
            preemption: true,
            max_pending_objects: 4,
            irq_capacity: 200,
            lookup_max_providers: 8,
            block_bytes: 128 * 1024,
            ring_search_budget: 4_000,
            ring_search_fanout: 8,
            ring_attempts_per_schedule: 8,
            ring_candidate_cache: true,
            ring_cache_granularity: CacheGranularity::Entry,
            shards: 1,
            shard_min_batch: 0,
            checkpoint_every_s: None,
            sim_duration_s: 3_000.0,
            warmup_s: 0.0,
            storage_maintenance_interval_s: 300.0,
            request_retry_interval_s: 120.0,
            churn: None,
            catastrophe: None,
            flash_crowd: None,
            classes: ClassMix::uniform(),
            chunk_selection: SelectionStrategy::Popularity,
        }
    }

    /// Scales the run length and warm-up by `factor`, for quick looks at
    /// otherwise paper-sized experiments.
    #[must_use]
    pub fn with_duration_scale(mut self, factor: f64) -> Self {
        self.sim_duration_s *= factor.max(0.0);
        self.warmup_s *= factor.max(0.0);
        self
    }

    /// Migration shim for the removed `freerider_fraction` field: sets the
    /// population to `fraction` free-riders, the rest honest.
    #[deprecated(
        since = "0.3.0",
        note = "the binary free-rider fraction became `SimConfig::behaviors`; \
                set it to `BehaviorMix::with_freeriders(fraction)` (or any richer mix) directly"
    )]
    #[must_use]
    pub fn with_freerider_fraction(mut self, fraction: f64) -> Self {
        self.behaviors = BehaviorMix::with_freeriders(fraction);
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_peers < 2 {
            return Err("a file-sharing system needs at least two peers".into());
        }
        self.behaviors.validate()?;
        self.protection.validate()?;
        if !(self.rtt_s.is_finite() && self.rtt_s > 0.0) {
            return Err(format!("rtt_s must be positive, got {}", self.rtt_s));
        }
        self.workload.validate()?;
        self.link.validate()?;
        if self.max_pending_objects == 0 {
            return Err("max_pending_objects must be positive".into());
        }
        if self.irq_capacity == 0 {
            return Err("irq_capacity must be positive".into());
        }
        if self.lookup_max_providers == 0 {
            return Err("lookup_max_providers must be positive".into());
        }
        if self.block_bytes == 0 {
            return Err("block_bytes must be positive".into());
        }
        if self.ring_search_budget == 0 {
            return Err("ring_search_budget must be positive".into());
        }
        if self.ring_search_fanout == 0 {
            return Err("ring_search_fanout must be positive".into());
        }
        if self.ring_attempts_per_schedule == 0 {
            return Err("ring_attempts_per_schedule must be at least 1".into());
        }
        if self.shards == 0 {
            return Err("shards must be at least 1 (1 = sequential scheduling)".into());
        }
        if !(self.sim_duration_s.is_finite() && self.sim_duration_s > 0.0) {
            return Err("sim_duration_s must be positive".into());
        }
        if let Some(every) = self.checkpoint_every_s {
            if !(every.is_finite() && every > 0.0) {
                return Err(format!("checkpoint_every_s must be positive, got {every}"));
            }
        }
        if !(self.warmup_s.is_finite() && self.warmup_s >= 0.0) {
            return Err("warmup_s must be non-negative".into());
        }
        if self.warmup_s >= self.sim_duration_s {
            return Err(format!(
                "warmup_s ({}) must be shorter than sim_duration_s ({})",
                self.warmup_s, self.sim_duration_s
            ));
        }
        for (name, v) in [
            (
                "storage_maintenance_interval_s",
                self.storage_maintenance_interval_s,
            ),
            ("request_retry_interval_s", self.request_retry_interval_s),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if let Some(churn) = &self.churn {
            churn.validate()?;
        }
        if let Some(catastrophe) = &self.catastrophe {
            catastrophe.validate()?;
            if catastrophe.top_k >= self.num_peers {
                return Err(format!(
                    "catastrophe.top_k ({}) must leave at least one peer in a \
                     {}-peer system",
                    catastrophe.top_k, self.num_peers
                ));
            }
        }
        if let Some(flash_crowd) = &self.flash_crowd {
            flash_crowd.validate()?;
        }
        self.classes.validate()?;
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BehaviorKind;

    #[test]
    fn paper_defaults_match_table_ii() {
        let c = SimConfig::paper_defaults();
        assert_eq!(c.num_peers, 200);
        assert_eq!(c.behaviors.share(BehaviorKind::FreeRider), 0.5);
        assert_eq!(c.protection, Protection::None);
        assert_eq!(c.max_pending_objects, 6);
        assert_eq!(c.irq_capacity, 1000);
        assert_eq!(c.link.upload_kbps, 80.0);
        assert_eq!(c.link.download_kbps, 800.0);
        assert_eq!(c.workload.num_categories, 300);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn quick_test_is_valid_and_small() {
        let c = SimConfig::quick_test();
        assert!(c.validate().is_ok());
        assert!(c.num_peers < 50);
        assert!(c.sim_duration_s < 10_000.0);
    }

    #[test]
    fn duration_scaling() {
        let c = SimConfig::paper_defaults().with_duration_scale(0.5);
        assert_eq!(c.sim_duration_s, 24.0 * 3600.0);
        assert_eq!(c.warmup_s, 4.0 * 3600.0);
    }

    #[test]
    fn warmup_must_fit_inside_duration() {
        let mut c = SimConfig::quick_test();
        c.warmup_s = c.sim_duration_s;
        assert!(c.validate().is_err());
        c.warmup_s = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = SimConfig::quick_test();
        c.num_peers = 1;
        assert!(c.validate().is_err());

        let mut c = SimConfig::quick_test();
        c.behaviors = BehaviorMix::weighted([(BehaviorKind::Honest, -1.0)]);
        assert!(c.validate().is_err());

        let mut c = SimConfig::quick_test();
        c.protection = Protection::Windowed { max_window: 0 };
        assert!(c.validate().is_err());

        let mut c = SimConfig::quick_test();
        c.rtt_s = 0.0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::quick_test();
        c.block_bytes = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::quick_test();
        c.sim_duration_s = -1.0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::quick_test();
        c.lookup_max_providers = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::quick_test();
        c.ring_attempts_per_schedule = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::quick_test();
        c.shards = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::quick_test();
        c.churn = Some(ChurnConfig::new(0.0, 100.0));
        assert!(c.validate().is_err());

        let mut c = SimConfig::quick_test();
        c.catastrophe = Some(CatastropheConfig::new(100.0, c.num_peers));
        assert!(c.validate().is_err());

        let mut c = SimConfig::quick_test();
        c.flash_crowd = Some(FlashCrowdConfig::new(100.0, 0));
        assert!(c.validate().is_err());

        let mut c = SimConfig::quick_test();
        c.classes = ClassMix::weighted([]);
        assert!(c.validate().is_err());
    }

    #[test]
    fn population_knobs_default_off_and_validate_on() {
        for c in [SimConfig::paper_defaults(), SimConfig::quick_test()] {
            assert!(c.churn.is_none());
            assert!(c.catastrophe.is_none());
            assert!(c.flash_crowd.is_none());
            assert_eq!(c.classes, ClassMix::uniform());
            assert_eq!(c.chunk_selection, SelectionStrategy::Popularity);
        }
        let mut c = SimConfig::quick_test();
        c.churn = Some(ChurnConfig::new(600.0, 120.0));
        c.catastrophe = Some(CatastropheConfig::new(500.0, 2));
        c.flash_crowd = Some(FlashCrowdConfig::new(200.0, 8));
        c.classes = crate::ClassMix::weighted([
            (crate::CapacityClass::Fast, 0.3),
            (crate::CapacityClass::Medium, 0.4),
            (crate::CapacityClass::Slow, 0.3),
        ]);
        c.chunk_selection = SelectionStrategy::RarestFirst;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ring_scheduling_knobs_default_to_paper_behaviour() {
        for c in [SimConfig::paper_defaults(), SimConfig::quick_test()] {
            assert_eq!(c.ring_attempts_per_schedule, 8);
            assert!(c.ring_candidate_cache);
            assert_eq!(c.ring_cache_granularity, CacheGranularity::Entry);
            assert_eq!(c.shards, 1, "sharding is strictly opt-in");
            assert_eq!(c.shard_min_batch, 0, "0 = the max(shards, 2) auto floor");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn freerider_fraction_shim_rewrites_the_mix() {
        let c = SimConfig::quick_test().with_freerider_fraction(0.25);
        assert_eq!(c.behaviors, BehaviorMix::with_freeriders(0.25));
        assert!(c.validate().is_ok());
    }
}
