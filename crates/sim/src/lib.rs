//! The file-sharing system simulator of the paper's Section IV.
//!
//! This crate ties the substrates together into the 200-node file-sharing
//! simulation the paper evaluates:
//!
//! * the content catalog, per-peer interests and request workload come from
//!   [`workload`];
//! * access links, transfer slots and block-level sessions come from
//!   [`netsim`];
//! * exchange-ring discovery, the token protocol and the exchange
//!   disciplines come from [`exchange`];
//! * the pluggable upload schedulers (FIFO, eMule credit, tit-for-tat,
//!   participation level, exchange priority) come from [`credit`], selected
//!   via [`SchedulerKind`] and driven through one object-safe
//!   [`UploadScheduler`] API;
//! * peer strategy — honest sharing, free-riding, and the Section III-B
//!   adversaries (junk senders, participation cheaters, middlemen) — is the
//!   object-safe [`PeerBehavior`] API, populated through a weighted
//!   [`BehaviorMix`] and countered via [`Protection`];
//! * everything is driven by the discrete-event engine in [`des`] and
//!   measured with [`metrics`].
//!
//! The central type is [`Simulation`]: build a [`SimConfig`] (defaults follow
//! the paper's Table II), run it, and read the resulting [`SimReport`].
//!
//! For families of runs, the builder-style [`Scenario`] engine executes a
//! config × seed grid in parallel and aggregates the per-point results:
//!
//! ```
//! use sim::{Axis, Scenario, PeerClass, SimConfig};
//!
//! let mut base = SimConfig::quick_test();
//! base.num_peers = 20;
//! base.sim_duration_s = 1_000.0;
//! let grid = Scenario::from(base)
//!     .vary(Axis::UploadKbps(vec![60.0, 100.0]))
//!     .seeds(0..2)
//!     .run();
//! assert_eq!(grid.rows().len(), 4); // 2 capacities x 2 seeds
//! let downloads = grid.aggregate(0, |r| Some(r.completed_downloads() as f64));
//! assert!(downloads.unwrap().mean >= 0.0);
//! # let _ = PeerClass::Sharing;
//! ```
//!
//! Module [`experiment`] provides the canonical scenarios behind every
//! figure of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod behavior;
mod config;
pub mod experiment;
mod peer;
mod population;
mod report;
mod scenario;
mod serialize;
mod simulation;
mod types;

pub use behavior::{
    BehaviorKind, BehaviorMix, FreeRider, Honest, JunkSender, Middleman, ParticipationCheater,
    PeerBehavior, Protection, INFLATED_PARTICIPATION_LEVEL,
};
pub use config::SimConfig;
pub use credit::{SchedulerKind, UploadScheduler};
pub use des::{SimDuration, SimTime};
pub use exchange::ExchangePolicy as ExchangeDiscipline;
pub use peer::{PeerState, WantState};
pub use population::{
    CapacityClass, CatastropheConfig, ChurnConfig, ClassMix, FlashCrowdConfig, SelectionStrategy,
};
pub use report::{BehaviorStats, SimReport};
pub use scenario::{Aggregate, Axis, Scenario, ScenarioPoint, SweepGrid, SweepRow};
#[cfg(feature = "audit")]
pub use simulation::audit;
pub use simulation::{
    CacheGranularity, CachedEntry, PhaseProfile, RingCacheStats, RingCandidateCache, SimSetup,
    Simulation, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use types::{PeerClass, SessionEnd, SessionKind};
