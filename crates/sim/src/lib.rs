//! The file-sharing system simulator of the paper's Section IV.
//!
//! This crate ties the substrates together into the 200-node file-sharing
//! simulation the paper evaluates:
//!
//! * the content catalog, per-peer interests and request workload come from
//!   [`workload`];
//! * access links, transfer slots and block-level sessions come from
//!   [`netsim`];
//! * exchange-ring discovery, the token protocol and the exchange
//!   disciplines come from [`exchange`];
//! * optional baseline upload schedulers come from [`credit`];
//! * everything is driven by the discrete-event engine in [`des`] and
//!   measured with [`metrics`].
//!
//! The central type is [`Simulation`]: build a [`SimConfig`] (defaults follow
//! the paper's Table II), run it, and read the resulting [`SimReport`].
//! Module [`experiment`] contains the parameter sweeps behind every figure of
//! the paper.
//!
//! # Example
//!
//! ```
//! use sim::{ExchangeDiscipline, SimConfig, Simulation};
//!
//! let mut config = SimConfig::quick_test();
//! config.discipline = ExchangeDiscipline::two_five_way();
//! let report = Simulation::new(config, 7).run();
//! assert!(report.completed_downloads() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
pub mod experiment;
mod peer;
mod report;
mod simulation;
mod types;

pub use config::{FallbackOrder, SimConfig};
pub use exchange::ExchangePolicy as ExchangeDiscipline;
pub use peer::{PeerState, WantState};
pub use report::SimReport;
pub use simulation::Simulation;
pub use types::{PeerClass, SessionEnd, SessionKind};
