//! The discrete-event file-sharing simulation.
//!
//! The run logic is split by concern:
//!
//! * [`events`] — the event vocabulary, request generation and storage
//!   maintenance;
//! * [`scheduling`] — filling upload slots: exchange-ring discovery,
//!   token-validated activation, preemption, and the pluggable
//!   [`UploadScheduler`] fallback;
//! * [`transfers`] — the block-by-block transfer lifecycle and its
//!   bookkeeping.

mod events;
mod ring_cache;
mod scheduling;
mod transfers;

pub use ring_cache::{RingCacheStats, RingCandidateCache};

use std::collections::HashMap;

use credit::UploadScheduler;
use des::{DetRng, Scheduler, SimTime};
use exchange::RequestGraph;
use netsim::SlotPool;
use workload::{Catalog, ObjectId, PeerId, PeerInterests, RequestGenerator, Storage};

use crate::{PeerBehavior, PeerState, SessionEnd, SimConfig, SimReport};

use events::Event;
use transfers::{ActiveRing, ActiveTransfer};

/// Identifier of an active transfer session within one run.
pub(crate) type TransferId = u64;
/// Identifier of an active exchange ring within one run.
pub(crate) type RingId = u64;

/// One run of the file-sharing system.
///
/// A `Simulation` is built from a [`SimConfig`] and a seed, run to its
/// configured horizon, and consumed into a [`SimReport`].  The upload
/// scheduler named by [`SimConfig::scheduler`] is instantiated as a single
/// boxed [`UploadScheduler`]; the simulation itself never names a concrete
/// mechanism.
///
/// # Example
///
/// ```
/// use sim::{SimConfig, Simulation};
///
/// let report = Simulation::new(SimConfig::quick_test(), 1).run();
/// assert!(report.total_sessions() > 0);
/// ```
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    catalog: Catalog,
    peers: Vec<PeerState>,
    /// One strategic behavior per peer, built from
    /// [`SimConfig::behaviors`]; indexed like `peers`.
    behaviors: Vec<Box<dyn PeerBehavior>>,
    graph: RequestGraph<PeerId, ObjectId>,
    request_gen: RequestGenerator,
    transfers: HashMap<TransferId, ActiveTransfer>,
    rings: HashMap<RingId, ActiveRing>,
    uploads_by_peer: HashMap<PeerId, Vec<TransferId>>,
    downloads_by_want: HashMap<(PeerId, ObjectId), Vec<TransferId>>,
    next_transfer_id: TransferId,
    next_ring_id: RingId,
    engine: Scheduler<Event>,
    report: SimReport,
    rng_requests: DetRng,
    rng_lookup: DetRng,
    rng_storage: DetRng,
    scheduler: Box<dyn UploadScheduler<PeerId>>,
    /// Memoised ring-search results (see [`RingCandidateCache`]); only
    /// consulted when [`SimConfig::ring_candidate_cache`] is set.
    ring_cache: RingCandidateCache,
    /// Bumped whenever a transfer starts or ends; lets the scheduling loop
    /// detect that an assembled non-exchange queue is still current.
    transfer_epoch: u64,
}

impl Simulation {
    /// Builds a simulation from `config`, deterministically seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    #[must_use]
    pub fn new(config: SimConfig, seed: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid simulation config: {e}"));
        let root_rng = DetRng::seed_from(seed);
        let mut rng_setup = root_rng.stream("setup");
        let catalog = Catalog::generate(&config.workload, &mut rng_setup);

        let num_peers = config.num_peers;
        let kinds = config.behaviors.assign(num_peers, &mut rng_setup);
        let behaviors: Vec<Box<dyn PeerBehavior>> =
            kinds.iter().map(crate::BehaviorKind::build).collect();

        let mut peers = Vec::with_capacity(num_peers);
        for (index, behavior) in kinds.into_iter().enumerate() {
            let mut peer_rng = root_rng.indexed_stream("peer-setup", index as u64);
            let interests = PeerInterests::generate(&catalog, &config.workload, &mut peer_rng);
            let (cap_lo, cap_hi) = config.workload.storage_capacity_objects;
            let capacity = peer_rng.gen_range(cap_lo..=cap_hi) as usize;
            let storage = Storage::initial_placement(
                capacity,
                &catalog,
                &interests,
                &config.workload,
                &mut peer_rng,
            );
            peers.push(PeerState {
                id: PeerId::new(index as u32),
                behavior,
                sharing: behaviors[index].uploads(),
                interests,
                storage,
                upload_slots: SlotPool::new(config.link.upload_slots()),
                download_slots: SlotPool::new(config.link.download_slots()),
                wants: Default::default(),
                downloaded_bytes: 0,
                uploaded_bytes: 0,
                junk_bytes: 0,
                ciphertext_bytes: 0,
            });
        }

        let horizon = SimTime::from_secs_f64(config.sim_duration_s);
        let mut engine = Scheduler::with_horizon(horizon);
        // Stagger the initial request generation and maintenance slightly so
        // that peers do not act in lock-step.
        for (index, _) in peers.iter().enumerate() {
            let peer = PeerId::new(index as u32);
            engine.schedule_at(
                SimTime::from_secs_f64(index as f64 * 0.25),
                Event::GenerateRequests(peer),
            );
            engine.schedule_at(
                SimTime::from_secs_f64(config.storage_maintenance_interval_s + index as f64 * 0.5),
                Event::StorageMaintenance(peer),
            );
        }

        let report = SimReport::new(num_peers);
        Simulation {
            request_gen: RequestGenerator::new(&config.workload),
            rng_requests: root_rng.stream("requests"),
            rng_lookup: root_rng.stream("lookup"),
            rng_storage: root_rng.stream("storage"),
            scheduler: config.scheduler.build(),
            config,
            catalog,
            peers,
            behaviors,
            graph: RequestGraph::new(),
            transfers: HashMap::new(),
            rings: HashMap::new(),
            uploads_by_peer: HashMap::new(),
            downloads_by_want: HashMap::new(),
            next_transfer_id: 0,
            next_ring_id: 0,
            engine,
            report,
            ring_cache: RingCandidateCache::new(),
            transfer_epoch: 0,
        }
    }

    /// The configuration this run uses.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Read access to the peers (useful for tests and examples).
    #[must_use]
    pub fn peers(&self) -> &[PeerState] {
        &self.peers
    }

    /// The label of the active upload scheduler.
    #[must_use]
    pub fn scheduler_label(&self) -> &'static str {
        self.scheduler.label()
    }

    /// Hit/miss/invalidation counters of the ring-candidate cache so far.
    /// All zeros when [`SimConfig::ring_candidate_cache`] is disabled.
    #[must_use]
    pub fn ring_cache_stats(&self) -> RingCacheStats {
        self.ring_cache.stats()
    }

    /// Runs the simulation to its horizon and returns the collected report.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        while let Some(event) = self.engine.next() {
            match event {
                Event::GenerateRequests(peer) => self.handle_generate_requests(peer),
                Event::TrySchedule(peer) => self.handle_try_schedule(peer),
                Event::BlockComplete(transfer) => self.handle_block_complete(transfer),
                Event::StorageMaintenance(peer) => self.handle_storage_maintenance(peer),
            }
        }
        self.finalize()
    }

    fn finalize(mut self) -> SimReport {
        // Close out still-active sessions so their bytes are accounted for.
        let open: Vec<TransferId> = self.transfers.keys().copied().collect();
        for tid in open {
            self.end_transfer(tid, SessionEnd::HorizonReached);
        }
        for peer in &self.peers {
            self.report
                .record_peer_volume(peer.class(), peer.downloaded_bytes);
            self.report.record_peer_behavior_totals(
                peer.behavior,
                peer.uploaded_bytes,
                peer.downloaded_bytes,
                peer.junk_bytes,
                peer.ciphertext_bytes,
            );
        }
        self.report.set_sim_seconds(self.engine.now().as_secs_f64());
        self.report.set_ring_cache_stats(self.ring_cache.stats());
        self.report
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Whether the current virtual time lies past the warm-up period, i.e.
    /// whether observations should enter the report.
    fn measuring(&self) -> bool {
        self.engine.now().as_secs_f64() >= self.config.warmup_s
    }

    fn peer(&self, id: PeerId) -> &PeerState {
        &self.peers[id.as_usize()]
    }

    fn peer_mut(&mut self, id: PeerId) -> &mut PeerState {
        &mut self.peers[id.as_usize()]
    }

    /// The strategic behavior of `id`.
    fn behavior(&self, id: PeerId) -> &dyn PeerBehavior {
        self.behaviors[id.as_usize()].as_ref()
    }

    /// Whether `peer` claims to be able to serve `object` — its advertised
    /// holdings.  Every uploading behavior claims its real storage; a
    /// middleman additionally claims any object someone has an accepted
    /// request for at it (such a request is only registered when an honest
    /// holder existed to source the relay, see
    /// [`Simulation::handle_generate_requests`]).
    ///
    /// The middleman claim depends only on `peer`'s storage and its incident
    /// request edges, both of which invalidate the ring-candidate cache when
    /// they change, so cached searches stay exact under every behavior mix.
    pub(crate) fn claims(&self, peer: PeerId, object: ObjectId) -> bool {
        let state = self.peer(peer);
        if !state.sharing {
            return false;
        }
        if state.storage.contains(object) {
            return true;
        }
        self.behavior(peer).advertises_unstored()
            && self.graph.incoming(peer).any(|r| r.object == object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeerClass, SessionKind};
    use credit::SchedulerKind;
    use exchange::ExchangePolicy;

    fn run_quick(discipline: ExchangePolicy, seed: u64) -> SimReport {
        let mut config = SimConfig::quick_test();
        config.discipline = discipline;
        Simulation::new(config, seed).run()
    }

    #[test]
    fn quick_run_completes_downloads() {
        let report = run_quick(ExchangePolicy::two_five_way(), 1);
        assert!(
            report.completed_downloads() > 0,
            "some downloads must finish"
        );
        assert!(report.total_sessions() > 0);
        assert!(report.sim_seconds() > 0.0);
    }

    #[test]
    fn no_exchange_policy_creates_no_exchange_sessions() {
        let report = run_quick(ExchangePolicy::NoExchange, 2);
        assert_eq!(report.exchange_session_fraction(), 0.0);
        assert_eq!(report.total_rings(), 0);
        assert!(report.completed_downloads() > 0);
    }

    #[test]
    fn pairwise_policy_only_forms_two_way_rings() {
        let report = run_quick(ExchangePolicy::Pairwise, 3);
        for (size, count) in report.rings_formed() {
            assert!(*size == 2 || *count == 0, "unexpected ring size {size}");
        }
        for kind in report.observed_kinds() {
            if let SessionKind::Exchange { ring_size } = kind {
                assert_eq!(ring_size, 2);
            }
        }
    }

    #[test]
    fn bounded_ring_sizes_are_respected() {
        let report = run_quick(ExchangePolicy::PreferShorter { max_ring: 3 }, 4);
        for size in report.rings_formed().keys() {
            assert!(*size <= 3);
        }
    }

    #[test]
    fn same_seed_gives_identical_results() {
        let a = run_quick(ExchangePolicy::two_five_way(), 42);
        let b = run_quick(ExchangePolicy::two_five_way(), 42);
        assert_eq!(a.completed_downloads(), b.completed_downloads());
        assert_eq!(a.total_sessions(), b.total_sessions());
        assert_eq!(a.total_rings(), b.total_rings());
        assert_eq!(
            a.mean_download_time_min(PeerClass::Sharing),
            b.mean_download_time_min(PeerClass::Sharing)
        );
    }

    #[test]
    fn different_seeds_give_different_runs() {
        let a = run_quick(ExchangePolicy::two_five_way(), 1);
        let b = run_quick(ExchangePolicy::two_five_way(), 2);
        // Not strictly guaranteed, but overwhelmingly likely for a whole run.
        assert!(
            a.total_sessions() != b.total_sessions()
                || a.completed_downloads() != b.completed_downloads()
        );
    }

    #[test]
    fn exchange_policies_produce_exchange_sessions() {
        let report = run_quick(ExchangePolicy::two_five_way(), 5);
        assert!(
            report.exchange_session_fraction() > 0.0,
            "exchanges should occur under an exchange discipline"
        );
        assert!(report.total_rings() > 0);
    }

    #[test]
    fn slot_accounting_is_clean_after_run() {
        let mut config = SimConfig::quick_test();
        config.discipline = ExchangePolicy::two_five_way();
        let sim = Simulation::new(config, 6);
        let report = sim.run();
        // All sessions are closed in finalize(), so every recorded session has
        // released its slots; the report totals must be internally consistent.
        assert_eq!(
            report.total_sessions(),
            report.session_counts().values().sum::<u64>()
        );
    }

    #[test]
    fn sharing_users_do_better_under_exchanges() {
        // Use a slightly longer quick run to reduce noise.
        let mut config = SimConfig::quick_test();
        config.sim_duration_s = 6_000.0;
        config.discipline = ExchangePolicy::two_five_way();
        let report = Simulation::new(config, 7).run();
        let sharing = report.mean_download_time_min(PeerClass::Sharing);
        let non_sharing = report.mean_download_time_min(PeerClass::NonSharing);
        if let (Some(s), Some(n)) = (sharing, non_sharing) {
            assert!(
                s <= n * 1.05,
                "sharing users should not be noticeably worse off (sharing={s:.1}min, non-sharing={n:.1}min)"
            );
        }
    }

    #[test]
    fn all_honest_and_all_freerider_mixes_are_valid() {
        let mut config = SimConfig::quick_test();
        config.behaviors = crate::BehaviorMix::honest();
        let all_sharing = Simulation::new(config.clone(), 8);
        assert!(all_sharing.peers().iter().all(|p| p.sharing));
        let _ = all_sharing.run();

        config.behaviors = crate::BehaviorMix::with_freeriders(1.0);
        let none_sharing = Simulation::new(config, 9);
        assert!(none_sharing.peers().iter().all(|p| !p.sharing));
        let report = none_sharing.run();
        // Nobody uploads, so nothing can complete.
        assert_eq!(report.completed_downloads(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn invalid_config_panics() {
        let mut config = SimConfig::quick_test();
        config.num_peers = 0;
        let _ = Simulation::new(config, 1);
    }

    #[test]
    fn every_scheduler_kind_runs_and_reports_its_label() {
        for kind in SchedulerKind::all() {
            let mut config = SimConfig::quick_test();
            config.scheduler = kind;
            let sim = Simulation::new(config, 11);
            assert_eq!(sim.scheduler_label(), kind.label());
            let report = sim.run();
            assert!(
                report.completed_downloads() > 0,
                "downloads must complete under the {} scheduler",
                kind.label()
            );
        }
    }

    #[test]
    fn scheduler_choice_does_not_perturb_setup_rng_streams() {
        // The initial placement draws from the setup/per-peer streams only;
        // swapping the upload scheduler must leave them untouched.
        let mut fifo_config = SimConfig::quick_test();
        fifo_config.scheduler = SchedulerKind::Fifo;
        let mut tft_config = SimConfig::quick_test();
        tft_config.scheduler = SchedulerKind::TitForTat;
        let a = Simulation::new(fifo_config, 13);
        let b = Simulation::new(tft_config, 13);
        for (pa, pb) in a.peers().iter().zip(b.peers().iter()) {
            assert_eq!(pa.sharing, pb.sharing);
            let objects_a: Vec<_> = pa.storage.iter().collect();
            let objects_b: Vec<_> = pb.storage.iter().collect();
            assert_eq!(objects_a, objects_b);
        }
    }
}
