//! The discrete-event file-sharing simulation.
//!
//! The run logic is split by concern:
//!
//! * [`events`] — the event vocabulary, request generation and storage
//!   maintenance;
//! * [`scheduling`] — filling upload slots: exchange-ring discovery,
//!   token-validated activation, preemption, and the pluggable
//!   [`UploadScheduler`] fallback;
//! * [`transfers`] — the block-by-block transfer lifecycle and its
//!   bookkeeping;
//! * [`population`] — population dynamics: churn departures/rejoins,
//!   catastrophic top-provider removal, flash-crowd releases.

#[cfg(feature = "audit")]
pub mod audit;
mod events;
mod maintenance;
mod pool;
mod population;
mod ring_cache;
mod scheduling;
mod shard;
mod snapshot;
mod transfers;

pub use ring_cache::{CacheGranularity, CachedEntry, RingCacheStats, RingCandidateCache};
pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

use credit::UploadScheduler;
use des::{DetRng, Scheduler, SimDuration, SimTime};
use exchange::{RequestGraph, SearchScratch};
use netsim::SlotPool;
use workload::{Catalog, ObjectId, PeerId, PeerInterests, RequestGenerator, Storage};

use crate::{BehaviorKind, PeerBehavior, PeerState, SessionEnd, SimConfig, SimReport};

use events::Event;
use maintenance::MaintenanceSchedule;
use transfers::{ActiveRing, ActiveTransfer};

/// Identifier of an active transfer session within one run.
pub(crate) type TransferId = u64;
/// Identifier of an active exchange ring within one run.
pub(crate) type RingId = u64;

/// The seed-dependent but *run-independent* setup of one configuration: the
/// generated catalog, the behavior assignment, and the pristine peer states
/// (interests, initial storage placement, empty slot pools).
///
/// Generating this is pure function of `(config, setup seed)` — building a
/// [`Simulation`] from a shared setup via [`Simulation::from_setup`] with the
/// same seed is bit-identical to [`Simulation::new`].  Warm restarts
/// ([`crate::Scenario::warm_restarts`]) generate one setup per grid point and
/// share it across that point's seeds, regenerating only the per-run RNG
/// streams (requests, lookups, storage eviction), so the catalog and peer
/// topology — the expensive part of setup at 10⁴ peers — is paid once.
#[derive(Debug, Clone)]
pub struct SimSetup {
    seed: u64,
    catalog: Catalog,
    kinds: Vec<BehaviorKind>,
    peers: Vec<PeerState>,
}

impl SimSetup {
    /// Generates the catalog and peer topology for `config`,
    /// deterministically seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    #[must_use]
    pub fn generate(config: &SimConfig, seed: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid simulation config: {e}"));
        let root_rng = DetRng::seed_from(seed);
        let mut rng_setup = root_rng.stream("setup");
        let catalog = Catalog::generate(&config.workload, &mut rng_setup);
        let num_peers = config.num_peers;
        let kinds = config.behaviors.assign(num_peers, &mut rng_setup);
        // Capacity classes draw from the setup stream *after* behaviors, and
        // the homogeneous default consumes no randomness at all — existing
        // seeded topologies are bit-identical.
        let classes = config.classes.assign(num_peers, &mut rng_setup);

        let mut peers = Vec::with_capacity(num_peers);
        for (index, behavior) in kinds.iter().enumerate() {
            let mut peer_rng = root_rng.indexed_stream("peer-setup", index as u64);
            let interests = PeerInterests::generate(&catalog, &config.workload, &mut peer_rng);
            let (cap_lo, cap_hi) = config.workload.storage_capacity_objects;
            let capacity = peer_rng.gen_range(cap_lo..=cap_hi) as usize;
            let storage = Storage::initial_placement(
                capacity,
                &catalog,
                &interests,
                &config.workload,
                &mut peer_rng,
            );
            peers.push(PeerState {
                id: PeerId::new(index as u32),
                behavior: *behavior,
                sharing: behavior.build().uploads(),
                online: true,
                capacity: classes[index],
                interests,
                storage,
                upload_slots: SlotPool::new(config.link.upload_slots()),
                download_slots: SlotPool::new(config.link.download_slots()),
                wants: Default::default(),
                downloaded_bytes: 0,
                uploaded_bytes: 0,
                junk_bytes: 0,
                ciphertext_bytes: 0,
            });
        }
        SimSetup {
            seed,
            catalog,
            kinds,
            peers,
        }
    }

    /// The seed this setup was generated from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of peers in the generated topology.
    #[must_use]
    pub fn num_peers(&self) -> usize {
        self.peers.len()
    }
}

/// Wall-clock breakdown of one [profiled](Simulation::run_profiled) run by
/// event phase.  `scheduling` includes `ring_search`; `event_loop` covers the
/// whole dispatch loop (the phases plus engine overhead).  Setup time is
/// not included — time [`Simulation::new`]/[`SimSetup::generate`] separately.
///
/// Sharded runs ([`SimConfig::shards`] > 1) additionally report
/// `shard_planning` — the wall clock of the parallel search/queue windows —
/// plus the planning breakdown `planned_searches`/`planned_consumed`.
/// Worker-side search time enters `ring_search` only when the merge
/// *consumes* the planned trace (as summed CPU time, which can exceed the
/// wall clock of the window it ran in); a speculative search the merge
/// discards stays inside `shard_planning`, so `ring_search`/`ring_searches`
/// match the sequential engine's totals exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Total events dispatched.
    pub events: u64,
    /// Wall-clock time of the whole event loop.
    pub event_loop: Duration,
    /// Time spent generating and registering requests (including arrivals).
    pub generate_requests: Duration,
    /// Time spent filling upload slots (ring discovery + activation + the
    /// non-exchange fallback).
    pub scheduling: Duration,
    /// Time spent inside fresh ring searches (a subset of `scheduling` for
    /// sequential runs; summed worker CPU time for sharded runs).
    pub ring_search: Duration,
    /// Number of fresh ring searches run.
    pub ring_searches: u64,
    /// Wall clock of the sharded batch-planning windows (zero when
    /// [`SimConfig::shards`] is 1).
    pub shard_planning: Duration,
    /// Searches shard workers ran ahead of the merge (zero for sequential
    /// runs).  `planned_searches - planned_consumed` is the speculative
    /// waste the worker-side eligibility + cache-peek filters left behind.
    pub planned_searches: u64,
    /// Worker-run searches the merge actually consumed in place of an
    /// inline search (each is also counted in `ring_searches`).
    pub planned_consumed: u64,
    /// Time spent completing transfer blocks.
    pub transfers: Duration,
    /// Time spent in storage-maintenance passes.
    pub maintenance: Duration,
    /// Time spent in population-dynamics events (churn departures and
    /// rejoins, catastrophic removals, flash-crowd releases).
    pub population: Duration,
}

/// One run of the file-sharing system.
///
/// A `Simulation` is built from a [`SimConfig`] and a seed, run to its
/// configured horizon, and consumed into a [`SimReport`].  The upload
/// scheduler named by [`SimConfig::scheduler`] is instantiated as a single
/// boxed [`UploadScheduler`]; the simulation itself never names a concrete
/// mechanism.
///
/// # Example
///
/// ```
/// use sim::{SimConfig, Simulation};
///
/// let report = Simulation::new(SimConfig::quick_test(), 1).run();
/// assert!(report.total_sessions() > 0);
/// ```
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    /// The seed the run's [`SimSetup`] was generated with.  Checkpoints
    /// store this instead of the setup itself: [`SimSetup::generate`] is
    /// pure, so restore regenerates the catalog and pristine peers and then
    /// overwrites only what the run mutated (see [`snapshot`]).
    setup_seed: u64,
    /// How many objects the setup catalog held before any flash-crowd
    /// release; the checkpoint serializes only the released delta.
    setup_objects: usize,
    catalog: Catalog,
    peers: Vec<PeerState>,
    /// One strategic behavior per peer, built from
    /// [`SimConfig::behaviors`]; indexed like `peers`.
    behaviors: Vec<Box<dyn PeerBehavior>>,
    graph: RequestGraph<PeerId, ObjectId>,
    request_gen: RequestGenerator,
    transfers: HashMap<TransferId, ActiveTransfer>,
    rings: HashMap<RingId, ActiveRing>,
    uploads_by_peer: HashMap<PeerId, Vec<TransferId>>,
    downloads_by_want: HashMap<(PeerId, ObjectId), Vec<TransferId>>,
    next_transfer_id: TransferId,
    next_ring_id: RingId,
    engine: Scheduler<Event>,
    report: SimReport,
    rng_requests: DetRng,
    rng_lookup: DetRng,
    rng_storage: DetRng,
    /// Drives the population-dynamics processes: per-peer session/downtime
    /// draws and flash-crowd requester sampling.  A dedicated keyed stream,
    /// so enabling churn never perturbs the request/lookup/storage draws.
    rng_churn: DetRng,
    scheduler: Box<dyn UploadScheduler<PeerId>>,
    /// Memoised ring-search results (see [`RingCandidateCache`]); only
    /// consulted when [`SimConfig::ring_candidate_cache`] is set.
    ring_cache: RingCandidateCache,
    /// Shared ring-search working memory: BFS buffers plus the
    /// per-generation adjacency snapshot reused across providers
    /// (see [`exchange::SearchScratch`]).  At entry granularity the
    /// snapshot additionally survives graph mutations: the dirty-edge drain
    /// advances it, forgetting only the queues that changed.
    scratch: SearchScratch<PeerId, ObjectId>,
    /// The graph generation up to which the dirty log has been drained
    /// (the `from` side of the scratch's incremental advance).
    drained_generation: u64,
    /// Sharing peers currently storing each object, indexed by object id and
    /// iterated in peer-id order — the lookup index that replaces the old
    /// O(peers) provider scan per issued request.  Maintained at every
    /// storage change (download completed, eviction).
    holders: Vec<std::collections::BTreeSet<PeerId>>,
    /// How many of [`holders`](Self::holders) per object also share
    /// honestly (a middleman advertisement is only as good as an honest
    /// source).
    honest_holders: Vec<u32>,
    /// The peers whose behavior may advertise unstored objects (middlemen),
    /// in id order; behaviors are fixed per run, so this is static.
    advertisers: Vec<PeerId>,
    /// Per-peer bitmap of [`advertisers`](Self::advertisers): lets the claims
    /// oracle — and the shard workers, which cannot touch the `dyn
    /// PeerBehavior` objects — answer `advertises_unstored` without a
    /// virtual call.  Behaviors are fixed per run, so this is static.
    advertises: Vec<bool>,
    /// Bumped whenever a transfer starts or ends; lets the scheduling loop
    /// detect that an assembled non-exchange queue is still current.
    transfer_epoch: u64,
    /// Bumped only when a transfer *ends*.  A serve queue whose graph/world
    /// stamps and end epoch still match saw at most transfer starts since it
    /// was built, and starts only shrink its eligible entry set — so it can
    /// be patched in place instead of rebuilt (see
    /// [`scheduling::ServeQueue`]).  Deliberately not serialized: serve
    /// queues are event-locals that never straddle a checkpoint, so a
    /// restored run safely restarts the counter at zero.
    transfer_end_epoch: u64,
    /// Bumped whenever a peer's storage (and with it the claims oracle)
    /// changes outside the request graph: a completed download entering the
    /// store, a maintenance eviction.  Together with
    /// [`RequestGraph::generation`] this stamps the state a sharded batch
    /// plan was computed against; a precomputed search is replayed only while
    /// both are unchanged.
    world_epoch: u64,
    /// The lazy maintenance timing wheel (see [`maintenance`]).
    maintenance: MaintenanceSchedule,
    /// Whether a `StorageMaintenance` event is currently queued per peer.
    maintenance_pending: Vec<bool>,
    /// How many `GenerateRequests` events are currently queued per peer.
    /// Retries only arm when this is zero, so the on-demand retry chain
    /// stays singular even across a completion's immediate regeneration.
    generate_queued: Vec<u32>,
    /// The persistent shard worker pool, spawned lazily by the first batch
    /// that fans out and joined when the simulation drops (`None` while
    /// [`SimConfig::shards`] is 1, after a restore, or before the first
    /// sharded batch).  Never serialized — a restored run respawns lazily.
    pool: Option<pool::ShardPool>,
    /// Live shard-worker thread count, shared with the pool's workers; the
    /// audit harness asserts it returns to zero once the simulation drops.
    shard_census: Arc<AtomicUsize>,
    /// Set by [`run_profiled`](Self::run_profiled): fresh ring searches time
    /// themselves into `ring_search_nanos`.
    profile_searches: bool,
    /// Test-only fault injection for the time-travel audit tests: when the
    /// engine's delivered-event count reaches this value,
    /// [`audit::run_audited`](Self::run_audited) corrupts one accounting
    /// tally so the audit trips deterministically.  Never serialized —
    /// callers re-arm it after [`Self::restore`] to replay the failure.
    #[cfg(feature = "audit")]
    audit_fault_at: Option<u64>,
    /// Explicit destination for the pre-failure checkpoint
    /// [`audit::run_audited`](Self::run_audited) dumps; falls back to
    /// `AUDIT_CHECKPOINT_PATH` or a temp-dir default.
    #[cfg(feature = "audit")]
    audit_dump_path: Option<std::path::PathBuf>,
    /// Nanoseconds spent in fresh ring searches (profiled runs only).
    ring_search_nanos: Cell<u64>,
    /// Number of fresh ring searches run (profiled runs only).
    ring_searches: Cell<u64>,
    /// Searches shard workers ran ahead of the merge (profiled runs only).
    planned_searches: Cell<u64>,
    /// Planned searches the merge consumed (profiled runs only).
    planned_consumed: Cell<u64>,
}

impl Simulation {
    /// Builds a simulation from `config`, deterministically seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    #[must_use]
    pub fn new(config: SimConfig, seed: u64) -> Self {
        let setup = SimSetup::generate(&config, seed);
        Simulation::from_setup(config, &setup, seed)
    }

    /// Builds a simulation on a pre-generated [`SimSetup`], regenerating only
    /// the per-run RNG streams from `seed`.
    ///
    /// `Simulation::from_setup(config, &SimSetup::generate(&config, s), s)`
    /// is bit-identical to `Simulation::new(config, s)`; sharing one setup
    /// across several run seeds is the warm-restart mode of
    /// [`crate::Scenario`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`] or the setup
    /// was generated for a different population size.
    #[must_use]
    pub fn from_setup(config: SimConfig, setup: &SimSetup, seed: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid simulation config: {e}"));
        assert_eq!(
            setup.num_peers(),
            config.num_peers,
            "setup was generated for a different number of peers"
        );
        let root_rng = DetRng::seed_from(seed);
        let behaviors: Vec<Box<dyn PeerBehavior>> =
            setup.kinds.iter().map(crate::BehaviorKind::build).collect();
        let peers = setup.peers.clone();
        let catalog = setup.catalog.clone();
        let num_peers = config.num_peers;

        let horizon = SimTime::from_secs_f64(config.sim_duration_s);
        let mut engine = Scheduler::with_horizon(horizon);
        // Peers arrive staggered (so they do not act in lock-step), but the
        // stagger is generated on demand: each arrival schedules the next,
        // keeping the queue at O(1) arrival entries instead of O(n) upfront
        // pushes.  Maintenance events materialise lazily when a peer goes
        // over capacity (see `events.rs`), so the queue starts with exactly
        // one entry regardless of the population size.
        if num_peers > 0 {
            engine.schedule_at(SimTime::ZERO, Event::Arrive(PeerId::new(0)));
        }
        // Scripted population events are fixed points on the timeline; the
        // engine's horizon naturally drops any scheduled past the end.
        if let Some(catastrophe) = &config.catastrophe {
            engine.schedule_at(SimTime::from_secs_f64(catastrophe.at_s), Event::Catastrophe);
        }
        if let Some(flash) = &config.flash_crowd {
            engine.schedule_at(SimTime::from_secs_f64(flash.at_s), Event::FlashCrowd);
        }

        let report = SimReport::new(num_peers);
        let ring_cache = RingCandidateCache::with_granularity(config.ring_cache_granularity);
        let mut holders = vec![std::collections::BTreeSet::new(); catalog.num_objects()];
        let mut honest_holders = vec![0u32; catalog.num_objects()];
        let mut advertisers = Vec::new();
        let mut advertises = vec![false; num_peers];
        for (peer, behavior) in peers.iter().zip(behaviors.iter()) {
            if !peer.sharing {
                continue;
            }
            let honest = behavior.shares_honestly();
            for object in peer.storage.iter() {
                holders[object.as_usize()].insert(peer.id);
                if honest {
                    honest_holders[object.as_usize()] += 1;
                }
            }
            if behavior.advertises_unstored() {
                advertisers.push(peer.id);
                advertises[peer.id.as_usize()] = true;
            }
        }
        let config_maintenance_interval = config.storage_maintenance_interval_s;
        Simulation {
            setup_seed: setup.seed(),
            setup_objects: catalog.num_objects(),
            request_gen: RequestGenerator::new(&config.workload),
            rng_requests: root_rng.stream("requests"),
            rng_lookup: root_rng.stream("lookup"),
            rng_storage: root_rng.stream("storage"),
            rng_churn: root_rng.stream("churn"),
            scheduler: config.scheduler.build(),
            config,
            catalog,
            peers,
            behaviors,
            graph: RequestGraph::new(),
            transfers: HashMap::new(),
            rings: HashMap::new(),
            uploads_by_peer: HashMap::new(),
            downloads_by_want: HashMap::new(),
            next_transfer_id: 0,
            next_ring_id: 0,
            engine,
            report,
            ring_cache,
            scratch: SearchScratch::new(),
            drained_generation: 0,
            holders,
            honest_holders,
            advertisers,
            advertises,
            transfer_epoch: 0,
            transfer_end_epoch: 0,
            world_epoch: 0,
            maintenance: MaintenanceSchedule::new(config_maintenance_interval),
            maintenance_pending: vec![false; num_peers],
            generate_queued: vec![0; num_peers],
            pool: None,
            shard_census: Arc::new(AtomicUsize::new(0)),
            profile_searches: false,
            #[cfg(feature = "audit")]
            audit_fault_at: None,
            #[cfg(feature = "audit")]
            audit_dump_path: None,
            ring_search_nanos: Cell::new(0),
            ring_searches: Cell::new(0),
            planned_searches: Cell::new(0),
            planned_consumed: Cell::new(0),
        }
    }

    /// The configuration this run uses.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Read access to the peers (useful for tests and examples).
    #[must_use]
    pub fn peers(&self) -> &[PeerState] {
        &self.peers
    }

    /// The label of the active upload scheduler.
    #[must_use]
    pub fn scheduler_label(&self) -> &'static str {
        self.scheduler.label()
    }

    /// Hit/miss/invalidation counters of the ring-candidate cache so far.
    /// All zeros when [`SimConfig::ring_candidate_cache`] is disabled.
    #[must_use]
    pub fn ring_cache_stats(&self) -> RingCacheStats {
        self.ring_cache.stats()
    }

    /// Swaps in a custom upload scheduler (instrumentation in tests).
    #[cfg(test)]
    pub(crate) fn set_scheduler(&mut self, scheduler: Box<dyn UploadScheduler<PeerId>>) {
        self.scheduler = scheduler;
    }

    /// The live shard-worker census, shared with the pool's threads.  It
    /// counts workers this simulation spawned; audit-mode tests hold a clone
    /// and assert it drains to zero once the simulation is dropped (no
    /// worker thread outlives its `Simulation`).
    #[cfg(feature = "audit")]
    #[must_use]
    pub fn shard_worker_census(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.shard_census)
    }

    /// Whether every pool worker is parked between batches with no unread
    /// results — trivially true before the pool exists.  The audit harness
    /// checks this after every merged batch.
    #[cfg(feature = "audit")]
    pub(crate) fn shard_pool_idle(&self) -> bool {
        self.pool.as_ref().is_none_or(pool::ShardPool::idle)
    }

    /// Runs the simulation to its horizon and returns the collected report.
    ///
    /// With [`SimConfig::shards`] > 1 the scheduling hot path runs sharded
    /// (see [`shard`]); the report is bit-identical either way.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        if self.config.shards > 1 {
            self.run_event_loop_sharded(None, None);
        } else {
            while let Some(event) = self.engine.next() {
                self.dispatch(event);
            }
        }
        self.finalize()
    }

    /// Processes every event with a timestamp `<= until`, then stops with
    /// the simulation still live (the clock rests on the last processed
    /// event).  Running to `T` in one go and running to `T/2` then `T` are
    /// bit-identical — this is the stepping primitive behind
    /// [`run_checkpointed`](Self::run_checkpointed).
    pub fn run_until(&mut self, until: SimTime) {
        if self.config.shards > 1 {
            self.run_event_loop_sharded(None, Some(until));
        } else {
            while matches!(self.engine.peek(), Some((t, _)) if t <= until) {
                let Some(event) = self.engine.next() else {
                    break;
                };
                self.dispatch(event);
            }
        }
    }

    /// Processes exactly the next event and returns its timestamp, or
    /// `None` once the horizon is reached (the simulation is then ready to
    /// [`run`](Self::run) straight to finalisation).  Stepping through a
    /// whole run event by event is bit-identical to [`run`](Self::run) —
    /// tests use this to checkpoint/restore at every event boundary.
    ///
    /// Under sharding a same-timestamp `TrySchedule` batch is one step, the
    /// same merged unit the sharded run loop applies atomically.
    pub fn step(&mut self) -> Option<SimTime> {
        let event = self.engine.next()?;
        let time = self.engine.now();
        if self.config.shards > 1 {
            if let Event::TrySchedule(first) = event {
                let batch = self.collect_try_schedule_batch(first);
                let mut plan = self.plan_batch(&batch);
                for &provider in &batch {
                    let planned = plan.as_mut().and_then(|p| p.provider_mut(provider));
                    self.handle_try_schedule_planned(provider, planned);
                }
                return Some(time);
            }
        }
        self.dispatch(event);
        Some(time)
    }

    /// Runs to the horizon like [`run`](Self::run), invoking `on_checkpoint`
    /// with `(checkpoint time, &self)` at every multiple of `every_s` virtual
    /// seconds strictly before the horizon.  The callback typically calls
    /// [`checkpoint`](Self::checkpoint) into a file; the report is
    /// bit-identical to an uninterrupted [`run`](Self::run).
    ///
    /// Checkpoint times are derived by integer multiplication of the
    /// microsecond-rounded interval, so long runs never accumulate float
    /// drift.
    ///
    /// # Panics
    ///
    /// Panics if `every_s` is not positive and finite (callers validate via
    /// [`SimConfig::checkpoint_every_s`]).
    #[must_use]
    pub fn run_checkpointed<F>(mut self, every_s: f64, mut on_checkpoint: F) -> SimReport
    where
        F: FnMut(SimTime, &Simulation),
    {
        assert!(
            every_s.is_finite() && every_s > 0.0,
            "checkpoint interval must be positive and finite"
        );
        let step = SimDuration::from_secs_f64(every_s).as_micros().max(1);
        let horizon = SimTime::from_secs_f64(self.config.sim_duration_s);
        let mut k: u64 = 1;
        loop {
            let target = SimTime::from_micros(step.saturating_mul(k));
            if target >= horizon {
                break;
            }
            // A run resumed from a checkpoint starts mid-timeline; targets
            // the original run already passed are skipped rather than
            // re-announced (a fresh run starts at zero, so this never
            // fires for it).
            if target <= self.engine.now() {
                k += 1;
                continue;
            }
            self.run_until(target);
            on_checkpoint(target, &self);
            k += 1;
        }
        self.run()
    }

    /// Handles one event (the shared body of every run loop).
    pub(crate) fn dispatch(&mut self, event: Event) {
        match event {
            Event::Arrive(peer) => self.handle_arrive(peer),
            Event::GenerateRequests(peer) => self.handle_generate_requests(peer),
            Event::TrySchedule(peer) => self.handle_try_schedule(peer),
            Event::BlockComplete(transfer) => self.handle_block_complete(transfer),
            Event::StorageMaintenance(peer) => self.handle_storage_maintenance(peer),
            Event::Depart(peer) => self.handle_depart(peer),
            Event::Rejoin(peer) => self.handle_rejoin(peer),
            Event::Catastrophe => self.handle_catastrophe(),
            Event::FlashCrowd => self.handle_flash_crowd(),
        }
    }

    /// [`dispatch`](Self::dispatch) with per-phase wall-clock attribution.
    fn dispatch_profiled(&mut self, event: Event, profile: &mut PhaseProfile) {
        profile.events += 1;
        // exchange-lint: allow(D002, reason = "profiling only: feeds PhaseProfile, never simulation state")
        let start = Instant::now();
        match event {
            Event::Arrive(peer) => {
                self.handle_arrive(peer);
                profile.generate_requests += start.elapsed();
            }
            Event::GenerateRequests(peer) => {
                self.handle_generate_requests(peer);
                profile.generate_requests += start.elapsed();
            }
            Event::TrySchedule(peer) => {
                self.handle_try_schedule(peer);
                profile.scheduling += start.elapsed();
            }
            Event::BlockComplete(transfer) => {
                self.handle_block_complete(transfer);
                profile.transfers += start.elapsed();
            }
            Event::StorageMaintenance(peer) => {
                self.handle_storage_maintenance(peer);
                profile.maintenance += start.elapsed();
            }
            Event::Depart(peer) => {
                self.handle_depart(peer);
                profile.population += start.elapsed();
            }
            Event::Rejoin(peer) => {
                self.handle_rejoin(peer);
                profile.population += start.elapsed();
            }
            Event::Catastrophe => {
                self.handle_catastrophe();
                profile.population += start.elapsed();
            }
            Event::FlashCrowd => {
                self.handle_flash_crowd();
                profile.population += start.elapsed();
            }
        }
    }

    /// Like [`run`](Self::run), but additionally times every event phase and
    /// the fresh ring searches, returning the wall-clock breakdown alongside
    /// the report.  The report is identical to an unprofiled run.
    #[must_use]
    pub fn run_profiled(mut self) -> (SimReport, PhaseProfile) {
        self.profile_searches = true;
        let mut profile = PhaseProfile::default();
        if self.config.shards > 1 {
            self.run_event_loop_sharded(Some(&mut profile), None);
        } else {
            // exchange-lint: allow(D002, reason = "profiling only: feeds PhaseProfile, never simulation state")
            let loop_start = Instant::now();
            while let Some(event) = self.engine.next() {
                self.dispatch_profiled(event, &mut profile);
            }
            profile.event_loop = loop_start.elapsed();
        }
        profile.ring_search = Duration::from_nanos(self.ring_search_nanos.get());
        profile.ring_searches = self.ring_searches.get();
        profile.planned_searches = self.planned_searches.get();
        profile.planned_consumed = self.planned_consumed.get();
        (self.finalize(), profile)
    }

    fn finalize(mut self) -> SimReport {
        // Close out still-active sessions so their bytes are accounted for.
        // Teardown walks only the open-transfer set the simulation already
        // tracks; the event queue it drops alongside is demand-driven (no
        // O(peers) standing maintenance/retry entries to deallocate).
        // exchange-lint: allow(D001, reason = "drained into a sorted Vec on the next line; teardown runs in TransferId order")
        let mut open: Vec<TransferId> = self.transfers.keys().copied().collect();
        open.sort_unstable();
        for tid in open {
            self.end_transfer(tid, SessionEnd::HorizonReached);
        }
        for peer in &self.peers {
            self.report
                .record_peer_volume(peer.class(), peer.downloaded_bytes);
            self.report.record_peer_behavior_totals(
                peer.behavior,
                peer.uploaded_bytes,
                peer.downloaded_bytes,
                peer.junk_bytes,
                peer.ciphertext_bytes,
            );
        }
        self.report.set_sim_seconds(self.engine.now().as_secs_f64());
        self.report.set_ring_cache_stats(self.ring_cache.stats());
        self.report
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Whether the current virtual time lies past the warm-up period, i.e.
    /// whether observations should enter the report.
    fn measuring(&self) -> bool {
        self.engine.now().as_secs_f64() >= self.config.warmup_s
    }

    fn peer(&self, id: PeerId) -> &PeerState {
        &self.peers[id.as_usize()]
    }

    fn peer_mut(&mut self, id: PeerId) -> &mut PeerState {
        &mut self.peers[id.as_usize()]
    }

    /// The strategic behavior of `id`.
    fn behavior(&self, id: PeerId) -> &dyn PeerBehavior {
        self.behaviors[id.as_usize()].as_ref()
    }

    /// Registers `peer` (which just stored `object`) in the lookup index.
    /// Only sharing peers serve, so only they are indexed.
    pub(crate) fn index_holding_gained(&mut self, peer: PeerId, object: ObjectId) {
        if !self.peer(peer).sharing {
            return;
        }
        if self.holders[object.as_usize()].insert(peer) && self.behavior(peer).shares_honestly() {
            self.honest_holders[object.as_usize()] += 1;
        }
    }

    /// Removes `peer` (which just evicted `object`) from the lookup index.
    pub(crate) fn index_holding_lost(&mut self, peer: PeerId, object: ObjectId) {
        if !self.peer(peer).sharing {
            return;
        }
        if self.holders[object.as_usize()].remove(&peer) && self.behavior(peer).shares_honestly() {
            self.honest_holders[object.as_usize()] -= 1;
        }
    }

    /// Whether `peer` claims to be able to serve `object` — its advertised
    /// holdings.  Every uploading behavior claims its real storage; a
    /// middleman additionally claims any object someone has an accepted
    /// request for at it (such a request is only registered when an honest
    /// holder existed to source the relay, see
    /// [`Simulation::handle_generate_requests`]).
    ///
    /// The middleman claim depends only on `peer`'s storage and its incident
    /// request edges, both of which invalidate the ring-candidate cache when
    /// they change, so cached searches stay exact under every behavior mix.
    pub(crate) fn claims(&self, peer: PeerId, object: ObjectId) -> bool {
        shard::claims_with(&self.peers, &self.graph, &self.advertises, peer, object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeerClass, SessionKind};
    use credit::SchedulerKind;
    use exchange::ExchangePolicy;

    fn run_quick(discipline: ExchangePolicy, seed: u64) -> SimReport {
        let mut config = SimConfig::quick_test();
        config.discipline = discipline;
        Simulation::new(config, seed).run()
    }

    #[test]
    fn quick_run_completes_downloads() {
        let report = run_quick(ExchangePolicy::two_five_way(), 1);
        assert!(
            report.completed_downloads() > 0,
            "some downloads must finish"
        );
        assert!(report.total_sessions() > 0);
        assert!(report.sim_seconds() > 0.0);
    }

    #[test]
    fn no_exchange_policy_creates_no_exchange_sessions() {
        let report = run_quick(ExchangePolicy::NoExchange, 2);
        assert_eq!(report.exchange_session_fraction(), 0.0);
        assert_eq!(report.total_rings(), 0);
        assert!(report.completed_downloads() > 0);
    }

    #[test]
    fn pairwise_policy_only_forms_two_way_rings() {
        let report = run_quick(ExchangePolicy::Pairwise, 3);
        for (size, count) in report.rings_formed() {
            assert!(*size == 2 || *count == 0, "unexpected ring size {size}");
        }
        for kind in report.observed_kinds() {
            if let SessionKind::Exchange { ring_size } = kind {
                assert_eq!(ring_size, 2);
            }
        }
    }

    #[test]
    fn bounded_ring_sizes_are_respected() {
        let report = run_quick(ExchangePolicy::PreferShorter { max_ring: 3 }, 4);
        for size in report.rings_formed().keys() {
            assert!(*size <= 3);
        }
    }

    #[test]
    fn same_seed_gives_identical_results() {
        let a = run_quick(ExchangePolicy::two_five_way(), 42);
        let b = run_quick(ExchangePolicy::two_five_way(), 42);
        assert_eq!(a.completed_downloads(), b.completed_downloads());
        assert_eq!(a.total_sessions(), b.total_sessions());
        assert_eq!(a.total_rings(), b.total_rings());
        assert_eq!(
            a.mean_download_time_min(PeerClass::Sharing),
            b.mean_download_time_min(PeerClass::Sharing)
        );
    }

    #[test]
    fn different_seeds_give_different_runs() {
        let a = run_quick(ExchangePolicy::two_five_way(), 1);
        let b = run_quick(ExchangePolicy::two_five_way(), 2);
        // Not strictly guaranteed, but overwhelmingly likely for a whole run.
        assert!(
            a.total_sessions() != b.total_sessions()
                || a.completed_downloads() != b.completed_downloads()
        );
    }

    #[test]
    fn exchange_policies_produce_exchange_sessions() {
        let report = run_quick(ExchangePolicy::two_five_way(), 5);
        assert!(
            report.exchange_session_fraction() > 0.0,
            "exchanges should occur under an exchange discipline"
        );
        assert!(report.total_rings() > 0);
    }

    #[test]
    fn slot_accounting_is_clean_after_run() {
        let mut config = SimConfig::quick_test();
        config.discipline = ExchangePolicy::two_five_way();
        let sim = Simulation::new(config, 6);
        let report = sim.run();
        // All sessions are closed in finalize(), so every recorded session has
        // released its slots; the report totals must be internally consistent.
        assert_eq!(
            report.total_sessions(),
            report.session_counts().values().sum::<u64>()
        );
    }

    #[test]
    fn sharing_users_do_better_under_exchanges() {
        // Use a slightly longer quick run to reduce noise.
        let mut config = SimConfig::quick_test();
        config.sim_duration_s = 6_000.0;
        config.discipline = ExchangePolicy::two_five_way();
        let report = Simulation::new(config, 7).run();
        let sharing = report.mean_download_time_min(PeerClass::Sharing);
        let non_sharing = report.mean_download_time_min(PeerClass::NonSharing);
        if let (Some(s), Some(n)) = (sharing, non_sharing) {
            assert!(
                s <= n * 1.05,
                "sharing users should not be noticeably worse off (sharing={s:.1}min, non-sharing={n:.1}min)"
            );
        }
    }

    #[test]
    fn all_honest_and_all_freerider_mixes_are_valid() {
        let mut config = SimConfig::quick_test();
        config.behaviors = crate::BehaviorMix::honest();
        let all_sharing = Simulation::new(config.clone(), 8);
        assert!(all_sharing.peers().iter().all(|p| p.sharing));
        let _ = all_sharing.run();

        config.behaviors = crate::BehaviorMix::with_freeriders(1.0);
        let none_sharing = Simulation::new(config, 9);
        assert!(none_sharing.peers().iter().all(|p| !p.sharing));
        let report = none_sharing.run();
        // Nobody uploads, so nothing can complete.
        assert_eq!(report.completed_downloads(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn invalid_config_panics() {
        let mut config = SimConfig::quick_test();
        config.num_peers = 0;
        let _ = Simulation::new(config, 1);
    }

    #[test]
    fn every_scheduler_kind_runs_and_reports_its_label() {
        for kind in SchedulerKind::all() {
            let mut config = SimConfig::quick_test();
            config.scheduler = kind;
            let sim = Simulation::new(config, 11);
            assert_eq!(sim.scheduler_label(), kind.label());
            let report = sim.run();
            assert!(
                report.completed_downloads() > 0,
                "downloads must complete under the {} scheduler",
                kind.label()
            );
        }
    }

    #[test]
    fn from_setup_with_the_setup_seed_matches_a_cold_start() {
        let config = SimConfig::quick_test();
        let setup = SimSetup::generate(&config, 17);
        assert_eq!(setup.seed(), 17);
        let warm = Simulation::from_setup(config.clone(), &setup, 17).run();
        let cold = Simulation::new(config, 17).run();
        assert_eq!(warm.completed_downloads(), cold.completed_downloads());
        assert_eq!(warm.total_sessions(), cold.total_sessions());
        assert_eq!(warm.total_rings(), cold.total_rings());
        assert_eq!(warm.session_counts(), cold.session_counts());
    }

    #[test]
    fn from_setup_varies_only_the_run_streams_across_seeds() {
        let config = SimConfig::quick_test();
        let setup = SimSetup::generate(&config, 3);
        let a = Simulation::from_setup(config.clone(), &setup, 3);
        let b = Simulation::from_setup(config.clone(), &setup, 4);
        // Identical topology...
        for (pa, pb) in a.peers().iter().zip(b.peers().iter()) {
            assert_eq!(pa.sharing, pb.sharing);
            assert_eq!(
                pa.storage.iter().collect::<Vec<_>>(),
                pb.storage.iter().collect::<Vec<_>>()
            );
        }
        // ...but different runs.
        let (ra, rb) = (a.run(), b.run());
        assert!(
            ra.total_sessions() != rb.total_sessions()
                || ra.completed_downloads() != rb.completed_downloads()
        );
    }

    #[test]
    #[should_panic(expected = "different number of peers")]
    fn from_setup_rejects_mismatched_population() {
        let config = SimConfig::quick_test();
        let setup = SimSetup::generate(&config, 1);
        let mut other = config;
        other.num_peers += 1;
        let _ = Simulation::from_setup(other, &setup, 1);
    }

    #[test]
    fn cache_granularities_produce_identical_reports() {
        for granularity in [CacheGranularity::Provider, CacheGranularity::Entry] {
            let mut config = SimConfig::quick_test();
            config.discipline = ExchangePolicy::two_five_way();
            config.ring_cache_granularity = granularity;
            let report = Simulation::new(config, 21).run();
            let mut baseline = SimConfig::quick_test();
            baseline.discipline = ExchangePolicy::two_five_way();
            baseline.ring_candidate_cache = false;
            let uncached = Simulation::new(baseline, 21).run();
            assert_eq!(
                report.completed_downloads(),
                uncached.completed_downloads(),
                "{granularity:?}"
            );
            assert_eq!(report.total_sessions(), uncached.total_sessions());
            assert_eq!(report.total_rings(), uncached.total_rings());
        }
    }

    #[test]
    fn entry_granularity_invalidates_no_more_than_provider_granularity() {
        let mut entry = SimConfig::quick_test();
        entry.ring_cache_granularity = CacheGranularity::Entry;
        let mut provider = SimConfig::quick_test();
        provider.ring_cache_granularity = CacheGranularity::Provider;
        let entry_stats = Simulation::new(entry, 8).run().ring_cache_stats();
        let provider_stats = Simulation::new(provider, 8).run().ring_cache_stats();
        assert!(
            entry_stats.invalidations <= provider_stats.invalidations,
            "entry granularity must be lazier: {} vs {}",
            entry_stats.invalidations,
            provider_stats.invalidations
        );
        assert!(
            entry_stats.hits >= provider_stats.hits,
            "lazier invalidation cannot lose hits on an identical event stream: {} vs {}",
            entry_stats.hits,
            provider_stats.hits
        );
    }

    #[test]
    fn profiled_runs_report_identical_results_plus_timings() {
        let mut config = SimConfig::quick_test();
        config.discipline = ExchangePolicy::two_five_way();
        let plain = Simulation::new(config.clone(), 31).run();
        let (profiled, profile) = Simulation::new(config, 31).run_profiled();
        assert_eq!(plain.completed_downloads(), profiled.completed_downloads());
        assert_eq!(plain.total_sessions(), profiled.total_sessions());
        assert!(profile.events > 0);
        assert!(profile.event_loop >= profile.scheduling);
        assert!(profile.scheduling >= profile.ring_search);
        assert!(profile.ring_searches > 0);
    }

    /// What one scheduler call was, for the participation-report regression
    /// test: `Request(requester)`, `Transfer(uploader)` or
    /// `Report(peer, level)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum SchedulerCall {
        Request(PeerId),
        Transfer(PeerId),
        Report(PeerId, f64),
    }

    /// A FIFO-ish scheduler that logs every lifecycle hook it receives.
    #[derive(Debug)]
    struct RecordingScheduler {
        log: std::sync::Arc<std::sync::Mutex<Vec<SchedulerCall>>>,
    }

    impl UploadScheduler<PeerId> for RecordingScheduler {
        fn on_request(&mut self, requester: PeerId, _provider: PeerId) {
            self.log
                .lock()
                .unwrap()
                .push(SchedulerCall::Request(requester));
        }

        fn on_transfer_complete(&mut self, uploader: PeerId, _downloader: PeerId, _bytes: u64) {
            self.log
                .lock()
                .unwrap()
                .push(SchedulerCall::Transfer(uploader));
        }

        fn on_participation_report(&mut self, peer: PeerId, level: f64) {
            self.log
                .lock()
                .unwrap()
                .push(SchedulerCall::Report(peer, level));
        }

        fn pick(
            &mut self,
            _provider: PeerId,
            queue: &[credit::QueuedRequest<PeerId>],
        ) -> Option<usize> {
            (!queue.is_empty()).then_some(0)
        }

        fn label(&self) -> &'static str {
            "recording"
        }
    }

    /// Regression test: `UploadScheduler::on_participation_report` must fire
    /// for peers that never upload — not only when they register a request,
    /// but also when one of their sessions ends, so a scheduler's view of a
    /// silent downloader stays current.
    #[test]
    fn participation_reports_flow_for_never_uploading_peers_and_on_session_end() {
        let mut config = SimConfig::quick_test();
        config.num_peers = 20;
        config.sim_duration_s = 2_000.0;
        config.behaviors = crate::BehaviorMix::weighted([
            (crate::BehaviorKind::Honest, 0.5),
            (crate::BehaviorKind::ParticipationCheater, 0.5),
        ]);
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut sim = Simulation::new(config, 23);
        sim.set_scheduler(Box::new(RecordingScheduler { log: log.clone() }));
        let report = sim.run();
        assert!(report.completed_downloads() > 0, "cheaters must get served");

        let log = log.lock().unwrap();
        let uploaders: std::collections::HashSet<PeerId> = log
            .iter()
            .filter_map(|call| match call {
                SchedulerCall::Transfer(uploader) => Some(*uploader),
                _ => None,
            })
            .collect();
        // (1) Never-uploading peers deliver reports at all, and cheaters'
        // announcements arrive behavior-inflated through the trait object.
        assert!(
            log.iter().any(|call| matches!(
                call,
                SchedulerCall::Report(peer, level)
                    if !uploaders.contains(peer)
                        && *level >= crate::INFLATED_PARTICIPATION_LEVEL
            )),
            "no inflated report from a never-uploading peer reached the scheduler"
        );
        // (2) Reports are delivered on session end too.  Registration-time
        // reports are immediately preceded by an `on_request` of the same
        // peer (the registration loop notifies edge by edge, then reports);
        // any report without that prefix came from a session ending.
        let session_end_reports = log
            .iter()
            .enumerate()
            .filter(|(index, call)| {
                matches!(call, SchedulerCall::Report(peer, _)
                    if *index == 0
                        || !matches!(&log[index - 1], SchedulerCall::Request(r) if r == peer))
            })
            .count();
        assert!(
            session_end_reports > 0,
            "no participation report was delivered outside request registration"
        );
        // (3) Never-uploading peers are among the session-end reporters.
        let session_end_from_silent = log.iter().enumerate().any(|(index, call)| {
            matches!(call, SchedulerCall::Report(peer, _)
                if !uploaders.contains(peer)
                    && (index == 0
                        || !matches!(&log[index - 1], SchedulerCall::Request(r) if r == peer)))
        });
        assert!(
            session_end_from_silent,
            "session-end reports never covered a never-uploading peer"
        );
    }

    #[test]
    fn scheduler_choice_does_not_perturb_setup_rng_streams() {
        // The initial placement draws from the setup/per-peer streams only;
        // swapping the upload scheduler must leave them untouched.
        let mut fifo_config = SimConfig::quick_test();
        fifo_config.scheduler = SchedulerKind::Fifo;
        let mut tft_config = SimConfig::quick_test();
        tft_config.scheduler = SchedulerKind::TitForTat;
        let a = Simulation::new(fifo_config, 13);
        let b = Simulation::new(tft_config, 13);
        for (pa, pb) in a.peers().iter().zip(b.peers().iter()) {
            assert_eq!(pa.sharing, pb.sharing);
            let objects_a: Vec<_> = pa.storage.iter().collect();
            let objects_b: Vec<_> = pb.storage.iter().collect();
            assert_eq!(objects_a, objects_b);
        }
    }
}
