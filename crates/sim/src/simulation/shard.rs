//! Sharded provider scheduling with a deterministic merge.
//!
//! `TrySchedule` is the hot event: at 10⁴–10⁵ peers, ring searches and
//! serve-queue assembly dominate the run.  The key structural fact is that
//! handling a `TrySchedule` event **never mutates what another provider's
//! search reads** — the request graph, peer storage, sharing flags and want
//! lists only change in `GenerateRequests`, `BlockComplete` and
//! `StorageMaintenance` handlers.  A run of consecutive same-timestamp
//! `TrySchedule` events can therefore be *planned* in parallel:
//!
//! 1. **Batch** — pop the maximal prefix of consecutive `TrySchedule` events
//!    sharing the current timestamp.
//! 2. **Plan** — hand the batch to the persistent
//!    [`ShardPool`](super::pool::ShardPool) of
//!    [`SimConfig::shards`](crate::SimConfig::shards) workers.  The state the
//!    workers read is *moved* into an owned
//!    [`BatchJob`](super::pool::BatchJob) for the duration of the barrier, so
//!    no `unsafe` and no scoped lifetimes are involved.  Each worker, with
//!    its own long-lived [`SearchScratch`], plans only work the merge is
//!    predicted to consume: a traced ring search for *slot-eligible*
//!    providers whose `RingCandidateCache::peek` predicts a miss, and the
//!    assembled non-exchange serve queue only where a free upload slot makes
//!    it reachable.
//! 3. **Merge** — a single thread replays the events **in their original
//!    queue order** (the event queue's deterministic FIFO sequence), running
//!    the exact sequential control flow — cache lookups and stores included,
//!    so hit/miss/invalidation stats match bit for bit — but substituting
//!    each precomputed trace for the BFS it replaces.  A precomputed result
//!    is only substituted while its stamps
//!    ([`RequestGraph::generation`] and the simulation's `world_epoch` for
//!    searches, additionally `transfer_epoch` for serve queues) still match;
//!    anything stale falls back to inline recomputation.  Worker completion
//!    order is irrelevant: workers never touch shared mutable state.
//!
//! The result is bit-identical to the sequential engine at every cache
//! granularity, behavior mix and protection — `tests/sharded_equivalence.rs`,
//! `tests/shard_pool.rs` and the `audit` feature prove it — while the
//! searches, the dominant cost, run on all shards, the planned searches are
//! exactly the ones the sequential engine would run (sharded `ring_searches`
//! counts consumed searches only, so it equals the sequential count), and
//! the worker threads persist across batches instead of being respawned
//! per batch.

// The event loop's panic policy (exchange-lint rule H001): no `.unwrap()` —
// every panicking access carries an `.expect()` stating the invariant that
// makes it unreachable.  Clippy enforces the same contract at module level.
#![deny(clippy::unwrap_used, clippy::get_unwrap)]

use std::collections::{HashMap, HashSet};
use std::mem;
use std::sync::Arc;
use std::time::Instant;

use credit::QueuedRequest;
use des::SimTime;
use exchange::{RequestGraph, RingSearch, SearchScratch, SearchTrace};
use workload::{ObjectId, PeerId};

use crate::PeerState;

use super::events::Event;
use super::pool::{self, BatchJob, ShardPool};
use super::scheduling::ServeQueue;
use super::transfers::ActiveTransfer;
use super::{PhaseProfile, Simulation, TransferId};

/// Whether `peer` claims to be able to serve `object` — its advertised
/// holdings.  Every uploading behavior claims its real storage; a middleman
/// (`advertises[peer]`) additionally claims any object someone has an
/// accepted request for at it.
///
/// This is the one claims oracle of the simulation: [`Simulation::claims`]
/// and the shard workers both call it, so sequential and sharded searches
/// can never diverge on what a peer advertises.
pub(super) fn claims_with(
    peers: &[PeerState],
    graph: &RequestGraph<PeerId, ObjectId>,
    advertises: &[bool],
    peer: PeerId,
    object: ObjectId,
) -> bool {
    let state = &peers[peer.as_usize()];
    // A departed peer claims nothing: its holdings are unreachable until it
    // rejoins, and a middleman's standing edges are torn down at departure.
    if !state.sharing || !state.online {
        return false;
    }
    if state.storage.contains(object) {
        return true;
    }
    advertises[peer.as_usize()] && graph.incoming(peer).any(|r| r.object == object)
}

/// The immutable slice of simulation state a shard worker reads — borrowed
/// either from the live simulation (the sequential serve-queue rebuild) or
/// from the [`BatchJob`] the state was moved into for a batch barrier.  The
/// mutable side (engine, report, upload scheduler, RNGs) never crosses a
/// thread boundary.  Fields are `pub(super)`-in-`pool` via the sibling
/// module's constructor ([`BatchJob::snapshot`]).
pub(super) struct BatchSnapshot<'a> {
    pub(super) graph: &'a RequestGraph<PeerId, ObjectId>,
    pub(super) peers: &'a [PeerState],
    pub(super) advertises: &'a [bool],
    pub(super) transfers: &'a HashMap<TransferId, ActiveTransfer>,
    pub(super) downloads_by_want: &'a HashMap<(PeerId, ObjectId), Vec<TransferId>>,
    pub(super) now: SimTime,
    pub(super) needs_reciprocal: bool,
    pub(super) transfer_epoch: u64,
    pub(super) transfer_end_epoch: u64,
    pub(super) generation: u64,
    pub(super) world_epoch: u64,
}

impl BatchSnapshot<'_> {
    fn claims(&self, peer: PeerId, object: ObjectId) -> bool {
        claims_with(self.peers, self.graph, self.advertises, peer, object)
    }

    /// Runs one traced ring search rooted at `provider` inside `scratch`.
    /// Identical to the sequential engine's fresh search: same policy
    /// object, same claims oracle, same graph.
    pub(super) fn search(
        &self,
        search: &RingSearch,
        scratch: &mut SearchScratch<PeerId, ObjectId>,
        provider: PeerId,
        wants: &[ObjectId],
    ) -> SearchTrace<PeerId, ObjectId> {
        search.find_traced_in(scratch, self.graph, provider, wants, |peer, object| {
            self.claims(*peer, *object)
        })
    }

    /// Assembles the eligible non-exchange queue at `provider` from scratch.
    ///
    /// This is *the* serve-queue builder — the sequential path calls it too
    /// (via [`Simulation::batch_snapshot`]), so a precomputed queue can only
    /// ever equal what an inline rebuild would produce.  The returned queue
    /// carries the snapshot's validity stamps; `serve_non_exchange` rebuilds
    /// if any of them moved.
    pub(super) fn build_serve_queue(&self, provider: PeerId) -> ServeQueue {
        let provider_state = &self.peers[provider.as_usize()];
        // The reciprocation flag costs a storage scan per queued request;
        // only compute it for schedulers that actually read it.
        let provider_wants = if self.needs_reciprocal {
            provider_state.wanted_objects()
        } else {
            Vec::new()
        };
        let mut queue: Vec<QueuedRequest<PeerId>> = Vec::new();
        let mut objects: Vec<ObjectId> = Vec::new();
        for req in self.graph.incoming(provider) {
            let requester_state = &self.peers[req.requester.as_usize()];
            let Some(want) = requester_state.wants.get(&req.object) else {
                continue;
            };
            // The provider must still claim the object.  This is `claims_with`
            // with its edge-existence scan elided: `req` IS an incoming edge
            // for exactly this object, so the capability probe alone decides,
            // and the queue rebuild stays O(queue) instead of O(queue²) at a
            // busy middleman.
            if !provider_state.storage.contains(req.object) && !self.advertises[provider.as_usize()]
            {
                continue;
            }
            if !requester_state.download_slots.has_free() {
                continue;
            }
            let already_serving = self
                .downloads_by_want
                .get(&(req.requester, req.object))
                .is_some_and(|tids| {
                    tids.iter().any(|tid| {
                        self.transfers
                            .get(tid)
                            .is_some_and(|t| t.uploader == provider)
                    })
                });
            if already_serving {
                continue;
            }
            let reciprocal = self.needs_reciprocal
                && requester_state.sharing
                && provider_wants
                    .iter()
                    .any(|object| requester_state.storage.contains(*object));
            queue.push(
                QueuedRequest::new(
                    req.requester,
                    self.now.saturating_since(want.issued_at).as_secs_f64(),
                )
                .with_reciprocal(reciprocal),
            );
            objects.push(req.object);
        }
        ServeQueue {
            queue,
            objects,
            transfer_epoch: self.transfer_epoch,
            transfer_end_epoch: self.transfer_end_epoch,
            generation: self.generation,
            world_epoch: self.world_epoch,
        }
    }
}

/// One provider's precomputed batch work.
pub(super) struct PlannedProvider {
    /// The provider's wanted objects at snapshot time (the search key).
    wants: Vec<ObjectId>,
    /// Fresh traced search against the snapshot — present when the planner
    /// predicted the merge would consume it: a slot-eligible provider whose
    /// candidate-cache peek predicted a miss (or the cache is disabled).
    /// *Moved* into the merge on consumption: it feeds the ring-candidate
    /// cache store directly, so the merge never clones or re-runs the
    /// search it replaces.
    trace: Option<SearchTrace<PeerId, ObjectId>>,
    /// Assembled non-exchange queue (only built where a free upload slot
    /// made it reachable), consumed by the provider's first event of the
    /// batch (later events rebuild lazily, exactly like sequential).
    serve_queue: Option<ServeQueue>,
    /// Worker-side nanoseconds of the search; folded into the `ring_search`
    /// phase if and when the trace is consumed.
    nanos: u64,
    /// Graph generation the plan was computed at.
    generation: u64,
    /// Simulation `world_epoch` (storage/claims state) at plan time.
    world_epoch: u64,
}

impl PlannedProvider {
    /// Takes the precomputed serve queue (first caller wins).
    pub(super) fn take_serve_queue(&mut self) -> Option<ServeQueue> {
        self.serve_queue.take()
    }

    /// Takes the precomputed trace and its search time, if the trace is
    /// provably identical to what a fresh search would return right now:
    /// same wants, and neither the request graph nor the storage/claims
    /// state has moved since the snapshot.
    pub(super) fn take_valid_trace(
        &mut self,
        wants: &[ObjectId],
        generation: u64,
        world_epoch: u64,
    ) -> Option<(SearchTrace<PeerId, ObjectId>, u64)> {
        if self.generation == generation && self.world_epoch == world_epoch && self.wants == wants {
            self.trace.take().map(|trace| (trace, self.nanos))
        } else {
            None
        }
    }
}

/// The worker output for one batch: per-provider plans plus the profiling
/// tallies of the parallel window.
pub(super) struct BatchPlan {
    providers: HashMap<PeerId, PlannedProvider>,
}

impl BatchPlan {
    pub(super) fn provider_mut(&mut self, provider: PeerId) -> Option<&mut PlannedProvider> {
        self.providers.get_mut(&provider)
    }

    /// Whether every plan entry's stamps still match the live simulation —
    /// the audit-mode invariant that a batch's precomputations are consumed
    /// within the window they were computed for.
    #[cfg(feature = "audit")]
    pub(super) fn stamps_current(&self, generation: u64, world_epoch: u64) -> bool {
        let fresh =
            |p: &PlannedProvider| p.generation == generation && p.world_epoch == world_epoch;
        // exchange-lint: allow(D001, reason = "order-independent all() over an invariant predicate; no simulation state derived")
        self.providers.values().all(fresh)
    }
}

impl Simulation {
    /// The immutable view of the current state that shard workers (and the
    /// sequential serve-queue builder) read.
    pub(super) fn batch_snapshot(&self) -> BatchSnapshot<'_> {
        BatchSnapshot {
            graph: &self.graph,
            peers: &self.peers,
            advertises: &self.advertises,
            transfers: &self.transfers,
            downloads_by_want: &self.downloads_by_want,
            now: self.now(),
            needs_reciprocal: self.scheduler.needs_reciprocal(),
            transfer_epoch: self.transfer_epoch,
            transfer_end_epoch: self.transfer_end_epoch,
            generation: self.graph.generation(),
            world_epoch: self.world_epoch,
        }
    }

    /// Pops the maximal run of consecutive `TrySchedule` events sharing the
    /// current timestamp (`first` is the one already popped).  Events the
    /// merge schedules while applying the batch land *after* the batch in
    /// the queue — exactly where the sequential engine would pop them — so
    /// batching never reorders delivery.
    pub(super) fn collect_try_schedule_batch(&mut self, first: PeerId) -> Vec<PeerId> {
        let now = self.engine.now();
        let mut batch = vec![first];
        while matches!(self.engine.peek(), Some((t, Event::TrySchedule(_))) if t == now) {
            match self.engine.next() {
                Some(Event::TrySchedule(peer)) => batch.push(peer),
                _ => unreachable!("peeked a TrySchedule event at the current timestamp"),
            }
        }
        batch
    }

    /// Fans the batch's read-only work out across the persistent worker
    /// pool (created lazily on the first batch that reaches it).
    ///
    /// Returns `None` (fall back to fully sequential handling) for batches
    /// too small to amortise the barrier
    /// ([`SimConfig::shard_min_batch`](crate::SimConfig::shard_min_batch)).
    /// Before planning, the graph dirty log is drained iff the first
    /// scheduling attempt of the batch would drain it — between the two
    /// possible drain points no cache operation can occur, so invalidation
    /// totals are unchanged.  Slot eligibility and the candidate-cache
    /// `peek` are evaluated *worker-side* against the moved-out state, so
    /// workers only run searches the merge is predicted to consume.
    pub(super) fn plan_batch(&mut self, batch: &[PeerId]) -> Option<BatchPlan> {
        let policy = self.config.discipline.search_policy();
        if self.config.ring_candidate_cache && policy.is_some() {
            self.drain_graph_deltas();
        }
        // Distinct sharing providers, first-occurrence order.
        let mut seen: HashSet<PeerId> = HashSet::with_capacity(batch.len());
        let mut tasks: Vec<(PeerId, Vec<ObjectId>)> = Vec::with_capacity(batch.len());
        for &provider in batch {
            if !seen.insert(provider) || !self.peer(provider).sharing || !self.peer(provider).online
            {
                continue;
            }
            tasks.push((provider, self.peer(provider).wanted_objects()));
        }
        let min_batch = match self.config.shard_min_batch {
            0 => self.config.shards.max(2),
            floor => floor.max(2),
        };
        if tasks.len() < min_batch {
            return None;
        }

        let search = policy.map(|p| {
            RingSearch::new(p)
                .with_expansion_budget(self.config.ring_search_budget)
                .with_fanout(self.config.ring_search_fanout)
        });
        let profiling = self.profile_searches;
        // Scalars first (struct literal fields evaluate in order), then the
        // owned state moves out for the duration of the barrier.
        let job = BatchJob {
            now: self.now(),
            needs_reciprocal: self.scheduler.needs_reciprocal(),
            transfer_epoch: self.transfer_epoch,
            transfer_end_epoch: self.transfer_end_epoch,
            generation: self.graph.generation(),
            world_epoch: self.world_epoch,
            search,
            cache_enabled: self.config.ring_candidate_cache,
            allows_exchange: self.config.discipline.allows_exchange(),
            preemption: self.config.preemption,
            profiling,
            tasks,
            graph: mem::take(&mut self.graph),
            peers: mem::take(&mut self.peers),
            advertises: mem::take(&mut self.advertises),
            transfers: mem::take(&mut self.transfers),
            downloads_by_want: mem::take(&mut self.downloads_by_want),
            uploads_by_peer: mem::take(&mut self.uploads_by_peer),
            ring_cache: mem::take(&mut self.ring_cache),
        };
        let shards = self.config.shards;
        let census = Arc::clone(&self.shard_census);
        let pool = self
            .pool
            .get_or_insert_with(|| ShardPool::new(shards, census));
        let (job, results) = pool.run(job);

        self.graph = job.graph;
        self.peers = job.peers;
        self.advertises = job.advertises;
        self.transfers = job.transfers;
        self.downloads_by_want = job.downloads_by_want;
        self.uploads_by_peer = job.uploads_by_peer;
        self.ring_cache = job.ring_cache;

        let mut providers = HashMap::with_capacity(results.len());
        for (provider, slot) in results {
            if profiling && slot.trace.is_some() {
                // A worker ran a search; whether it was wasted speculation
                // is only known at consumption time, where `ring_searches`
                // and `ring_search_nanos` are advanced (`planned_consumed`)
                // so the sharded totals equal the sequential engine's.
                self.planned_searches.set(self.planned_searches.get() + 1);
            }
            let pool::PlannedSlot {
                wants,
                trace,
                serve_queue,
                nanos,
            } = slot;
            providers.insert(
                provider,
                PlannedProvider {
                    wants,
                    trace,
                    serve_queue,
                    nanos,
                    generation: job.generation,
                    world_epoch: job.world_epoch,
                },
            );
        }
        Some(BatchPlan { providers })
    }

    /// The sharded main loop: event semantics identical to the sequential
    /// loop, with same-timestamp `TrySchedule` runs planned in parallel and
    /// merged in queue order.
    ///
    /// With `until` set, stops before the first event past that time (the
    /// checkpoint stepping bound, see [`Simulation::run_until`]).  A batch
    /// shares one timestamp, so the bound never splits a batch.
    pub(super) fn run_event_loop_sharded(
        &mut self,
        mut profile: Option<&mut PhaseProfile>,
        until: Option<SimTime>,
    ) {
        // exchange-lint: allow(D002, reason = "profiling only: feeds PhaseProfile, never simulation state")
        let loop_start = Instant::now();
        loop {
            if let Some(until) = until {
                match self.engine.peek() {
                    Some((t, _)) if t <= until => {}
                    _ => break,
                }
            }
            let Some(event) = self.engine.next() else {
                break;
            };
            match event {
                Event::TrySchedule(first) => {
                    let batch = self.collect_try_schedule_batch(first);
                    // exchange-lint: allow(D002, reason = "profiling only: feeds PhaseProfile, never simulation state")
                    let planning = profile.is_some().then(Instant::now);
                    let mut plan = self.plan_batch(&batch);
                    if let (Some(profile), Some(started)) = (profile.as_deref_mut(), planning) {
                        profile.shard_planning += started.elapsed();
                    }
                    for &provider in &batch {
                        let planned = plan.as_mut().and_then(|p| p.provider_mut(provider));
                        match profile.as_deref_mut() {
                            Some(profile) => {
                                profile.events += 1;
                                // exchange-lint: allow(D002, reason = "profiling only: feeds PhaseProfile, never simulation state")
                                let started = Instant::now();
                                self.handle_try_schedule_planned(provider, planned);
                                profile.scheduling += started.elapsed();
                            }
                            None => self.handle_try_schedule_planned(provider, planned),
                        }
                    }
                }
                other => match profile.as_deref_mut() {
                    Some(profile) => self.dispatch_profiled(other, profile),
                    None => self.dispatch(other),
                },
            }
        }
        if let Some(profile) = profile {
            profile.event_loop = loop_start.elapsed();
        }
    }
}
