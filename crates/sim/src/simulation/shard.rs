//! Sharded provider scheduling with a deterministic merge.
//!
//! `TrySchedule` is the hot event: at 10⁴–10⁵ peers, ring searches and
//! serve-queue assembly dominate the run.  The key structural fact is that
//! handling a `TrySchedule` event **never mutates what another provider's
//! search reads** — the request graph, peer storage, sharing flags and want
//! lists only change in `GenerateRequests`, `BlockComplete` and
//! `StorageMaintenance` handlers.  A run of consecutive same-timestamp
//! `TrySchedule` events can therefore be *planned* in parallel:
//!
//! 1. **Batch** — pop the maximal prefix of consecutive `TrySchedule` events
//!    sharing the current timestamp.
//! 2. **Plan** — partition the distinct providers across
//!    [`SimConfig::shards`](crate::SimConfig::shards) scoped worker threads.
//!    Each worker, against an immutable [`BatchSnapshot`] and with its own
//!    [`SearchScratch`], emits candidate decisions: the traced ring search
//!    (for providers the planner predicts will miss the candidate cache) and
//!    the assembled non-exchange serve queue.
//! 3. **Merge** — a single thread replays the events **in their original
//!    queue order** (the event queue's deterministic FIFO sequence), running
//!    the exact sequential control flow — cache lookups and stores included,
//!    so hit/miss/invalidation stats match bit for bit — but substituting
//!    each precomputed trace for the BFS it replaces.  A precomputed result
//!    is only substituted while its stamps
//!    ([`RequestGraph::generation`] and the simulation's `world_epoch` for
//!    searches, additionally `transfer_epoch` for serve queues) still match;
//!    anything stale falls back to inline recomputation.  Worker completion
//!    order is irrelevant: workers never touch shared mutable state.
//!
//! The result is bit-identical to the sequential engine at every cache
//! granularity, behavior mix and protection — `tests/sharded_equivalence.rs`
//! and the `audit` feature prove it — while the searches, the dominant cost,
//! run on all shards.

// The event loop's panic policy (exchange-lint rule H001): no `.unwrap()` —
// every panicking access carries an `.expect()` stating the invariant that
// makes it unreachable.  Clippy enforces the same contract at module level.
#![deny(clippy::unwrap_used, clippy::get_unwrap)]

use std::collections::{HashMap, HashSet};
use std::mem;
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use credit::QueuedRequest;
use des::SimTime;
use exchange::{RequestGraph, RingSearch, SearchScratch, SearchTrace};
use workload::{ObjectId, PeerId};

use crate::PeerState;

use super::events::Event;
use super::scheduling::ServeQueue;
use super::transfers::ActiveTransfer;
use super::{PhaseProfile, Simulation, TransferId};

/// Whether `peer` claims to be able to serve `object` — its advertised
/// holdings.  Every uploading behavior claims its real storage; a middleman
/// (`advertises[peer]`) additionally claims any object someone has an
/// accepted request for at it.
///
/// This is the one claims oracle of the simulation: [`Simulation::claims`]
/// and the shard workers both call it, so sequential and sharded searches
/// can never diverge on what a peer advertises.
pub(super) fn claims_with(
    peers: &[PeerState],
    graph: &RequestGraph<PeerId, ObjectId>,
    advertises: &[bool],
    peer: PeerId,
    object: ObjectId,
) -> bool {
    let state = &peers[peer.as_usize()];
    // A departed peer claims nothing: its holdings are unreachable until it
    // rejoins, and a middleman's standing edges are torn down at departure.
    if !state.sharing || !state.online {
        return false;
    }
    if state.storage.contains(object) {
        return true;
    }
    advertises[peer.as_usize()] && graph.incoming(peer).any(|r| r.object == object)
}

/// The immutable slice of simulation state a shard worker reads.  Built once
/// per batch on the merge thread; the mutable side (engine, report, upload
/// scheduler, ring cache, RNGs) never crosses a thread boundary.
pub(super) struct BatchSnapshot<'a> {
    graph: &'a RequestGraph<PeerId, ObjectId>,
    peers: &'a [PeerState],
    advertises: &'a [bool],
    transfers: &'a HashMap<TransferId, ActiveTransfer>,
    downloads_by_want: &'a HashMap<(PeerId, ObjectId), Vec<TransferId>>,
    now: SimTime,
    needs_reciprocal: bool,
    transfer_epoch: u64,
    generation: u64,
    world_epoch: u64,
}

impl BatchSnapshot<'_> {
    fn claims(&self, peer: PeerId, object: ObjectId) -> bool {
        claims_with(self.peers, self.graph, self.advertises, peer, object)
    }

    /// Runs one traced ring search rooted at `provider` inside `scratch`.
    /// Identical to the sequential engine's fresh search: same policy
    /// object, same claims oracle, same graph.
    fn search(
        &self,
        search: &RingSearch,
        scratch: &mut SearchScratch<PeerId, ObjectId>,
        provider: PeerId,
        wants: &[ObjectId],
    ) -> SearchTrace<PeerId, ObjectId> {
        search.find_traced_in(scratch, self.graph, provider, wants, |peer, object| {
            self.claims(*peer, *object)
        })
    }

    /// Assembles the eligible non-exchange queue at `provider` from scratch.
    ///
    /// This is *the* serve-queue builder — the sequential path calls it too
    /// (via [`Simulation::batch_snapshot`]), so a precomputed queue can only
    /// ever equal what an inline rebuild would produce.  The returned queue
    /// carries the snapshot's validity stamps; `serve_non_exchange` rebuilds
    /// if any of them moved.
    pub(super) fn build_serve_queue(&self, provider: PeerId) -> ServeQueue {
        let provider_state = &self.peers[provider.as_usize()];
        // The reciprocation flag costs a storage scan per queued request;
        // only compute it for schedulers that actually read it.
        let provider_wants = if self.needs_reciprocal {
            provider_state.wanted_objects()
        } else {
            Vec::new()
        };
        let mut queue: Vec<QueuedRequest<PeerId>> = Vec::new();
        let mut objects: Vec<ObjectId> = Vec::new();
        for req in self.graph.incoming(provider) {
            let requester_state = &self.peers[req.requester.as_usize()];
            let Some(want) = requester_state.wants.get(&req.object) else {
                continue;
            };
            // The provider must still claim the object.  This is `claims_with`
            // with its edge-existence scan elided: `req` IS an incoming edge
            // for exactly this object, so the capability probe alone decides,
            // and the queue rebuild stays O(queue) instead of O(queue²) at a
            // busy middleman.
            if !provider_state.storage.contains(req.object) && !self.advertises[provider.as_usize()]
            {
                continue;
            }
            if !requester_state.download_slots.has_free() {
                continue;
            }
            let already_serving = self
                .downloads_by_want
                .get(&(req.requester, req.object))
                .is_some_and(|tids| {
                    tids.iter().any(|tid| {
                        self.transfers
                            .get(tid)
                            .is_some_and(|t| t.uploader == provider)
                    })
                });
            if already_serving {
                continue;
            }
            let reciprocal = self.needs_reciprocal
                && requester_state.sharing
                && provider_wants
                    .iter()
                    .any(|object| requester_state.storage.contains(*object));
            queue.push(
                QueuedRequest::new(
                    req.requester,
                    self.now.saturating_since(want.issued_at).as_secs_f64(),
                )
                .with_reciprocal(reciprocal),
            );
            objects.push(req.object);
        }
        ServeQueue {
            queue,
            objects,
            transfer_epoch: self.transfer_epoch,
            generation: self.generation,
            world_epoch: self.world_epoch,
        }
    }
}

/// One provider's precomputed batch work.
pub(super) struct PlannedProvider {
    /// The provider's wanted objects at snapshot time (the search key).
    wants: Vec<ObjectId>,
    /// Fresh traced search against the snapshot — present when the planner
    /// predicted a cache miss (or the cache is disabled), absent when a live
    /// cache entry will answer the lookup.
    trace: Option<SearchTrace<PeerId, ObjectId>>,
    /// Assembled non-exchange queue, consumed by the provider's first event
    /// of the batch (later events rebuild lazily, exactly like sequential).
    serve_queue: Option<ServeQueue>,
    /// Graph generation the plan was computed at.
    generation: u64,
    /// Simulation `world_epoch` (storage/claims state) at plan time.
    world_epoch: u64,
}

impl PlannedProvider {
    /// Takes the precomputed serve queue (first caller wins).
    pub(super) fn take_serve_queue(&mut self) -> Option<ServeQueue> {
        self.serve_queue.take()
    }

    /// The precomputed trace, if it is provably identical to what a fresh
    /// search would return right now: same wants, and neither the request
    /// graph nor the storage/claims state has moved since the snapshot.
    pub(super) fn valid_trace(
        &self,
        wants: &[ObjectId],
        generation: u64,
        world_epoch: u64,
    ) -> Option<&SearchTrace<PeerId, ObjectId>> {
        if self.generation == generation && self.world_epoch == world_epoch && self.wants == wants {
            self.trace.as_ref()
        } else {
            None
        }
    }
}

/// The worker output for one batch: per-provider plans plus the profiling
/// tallies of the parallel window.
pub(super) struct BatchPlan {
    providers: HashMap<PeerId, PlannedProvider>,
}

impl BatchPlan {
    pub(super) fn provider_mut(&mut self, provider: PeerId) -> Option<&mut PlannedProvider> {
        self.providers.get_mut(&provider)
    }
}

impl Simulation {
    /// The immutable view of the current state that shard workers (and the
    /// sequential serve-queue builder) read.
    pub(super) fn batch_snapshot(&self) -> BatchSnapshot<'_> {
        BatchSnapshot {
            graph: &self.graph,
            peers: &self.peers,
            advertises: &self.advertises,
            transfers: &self.transfers,
            downloads_by_want: &self.downloads_by_want,
            now: self.now(),
            needs_reciprocal: self.scheduler.needs_reciprocal(),
            transfer_epoch: self.transfer_epoch,
            generation: self.graph.generation(),
            world_epoch: self.world_epoch,
        }
    }

    /// Pops the maximal run of consecutive `TrySchedule` events sharing the
    /// current timestamp (`first` is the one already popped).  Events the
    /// merge schedules while applying the batch land *after* the batch in
    /// the queue — exactly where the sequential engine would pop them — so
    /// batching never reorders delivery.
    pub(super) fn collect_try_schedule_batch(&mut self, first: PeerId) -> Vec<PeerId> {
        let now = self.engine.now();
        let mut batch = vec![first];
        while matches!(self.engine.peek(), Some((t, Event::TrySchedule(_))) if t == now) {
            match self.engine.next() {
                Some(Event::TrySchedule(peer)) => batch.push(peer),
                _ => unreachable!("peeked a TrySchedule event at the current timestamp"),
            }
        }
        batch
    }

    /// Fans the batch's read-only work out across the shard workers.
    ///
    /// Returns `None` (fall back to fully sequential handling) for batches
    /// too small to amortise the thread fan-out.  Before planning, the graph
    /// dirty log is drained iff the first scheduling attempt of the batch
    /// would drain it — between the two possible drain points no cache
    /// operation can occur, so invalidation totals are unchanged.
    pub(super) fn plan_batch(&mut self, batch: &[PeerId]) -> Option<BatchPlan> {
        let shards = self.config.shards;
        let policy = self.config.discipline.search_policy();
        if self.config.ring_candidate_cache && policy.is_some() {
            self.drain_graph_deltas();
        }
        // Distinct sharing providers, first-occurrence order.
        let mut seen: HashSet<PeerId> = HashSet::with_capacity(batch.len());
        let mut tasks: Vec<(PeerId, Vec<ObjectId>, bool)> = Vec::with_capacity(batch.len());
        for &provider in batch {
            if !seen.insert(provider) || !self.peer(provider).sharing || !self.peer(provider).online
            {
                continue;
            }
            let wants = self.peer(provider).wanted_objects();
            let want_search = policy.is_some()
                && !wants.is_empty()
                && (!self.config.ring_candidate_cache || !self.ring_cache.peek(provider, &wants));
            tasks.push((provider, wants, want_search));
        }
        if tasks.len() < shards.max(2) {
            return None;
        }

        let search = policy.map(|p| {
            RingSearch::new(p)
                .with_expansion_budget(self.config.ring_search_budget)
                .with_fanout(self.config.ring_search_fanout)
        });
        let mut scratches = mem::take(&mut self.shard_scratches);
        if scratches.len() < shards {
            scratches.resize_with(shards, SearchScratch::new);
        }
        let profiling = self.profile_searches;
        type Slot = (Option<SearchTrace<PeerId, ObjectId>>, ServeQueue, u64);
        let slots: Vec<Mutex<Option<Slot>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
        {
            let snapshot = self.batch_snapshot();
            let tasks = &tasks;
            let slots = &slots;
            let search = &search;
            let snapshot = &snapshot;
            thread::scope(|scope| {
                for (worker, scratch) in scratches.iter_mut().enumerate().take(shards) {
                    scope.spawn(move || {
                        for (index, (provider, wants, want_search)) in tasks.iter().enumerate() {
                            if index % shards != worker {
                                continue;
                            }
                            let mut nanos = 0u64;
                            let trace = want_search.then(|| {
                                let search = search.as_ref().expect("want_search implies a policy");
                                // exchange-lint: allow(D002, reason = "profiling only: feeds PhaseProfile, never simulation state")
                                let started = profiling.then(Instant::now);
                                let trace = snapshot.search(search, scratch, *provider, wants);
                                if let Some(started) = started {
                                    nanos = started.elapsed().as_nanos() as u64;
                                }
                                trace
                            });
                            let queue = snapshot.build_serve_queue(*provider);
                            *slots
                                .get(index)
                                .expect("slots was sized to tasks, which index enumerates")
                                .lock()
                                .expect("a worker panicked mid-batch") =
                                Some((trace, queue, nanos));
                        }
                    });
                }
            });
        }
        self.shard_scratches = scratches;

        let generation = self.graph.generation();
        let world_epoch = self.world_epoch;
        let mut providers = HashMap::with_capacity(tasks.len());
        for ((provider, wants, _), slot) in tasks.into_iter().zip(slots) {
            let (trace, serve_queue, nanos) = slot
                .into_inner()
                .expect("a worker panicked mid-batch")
                .expect("every task slot is filled by its worker");
            if profiling {
                self.ring_search_nanos
                    .set(self.ring_search_nanos.get() + nanos);
                if trace.is_some() {
                    self.ring_searches.set(self.ring_searches.get() + 1);
                }
            }
            providers.insert(
                provider,
                PlannedProvider {
                    wants,
                    trace,
                    serve_queue: Some(serve_queue),
                    generation,
                    world_epoch,
                },
            );
        }
        Some(BatchPlan { providers })
    }

    /// The sharded main loop: event semantics identical to the sequential
    /// loop, with same-timestamp `TrySchedule` runs planned in parallel and
    /// merged in queue order.
    ///
    /// With `until` set, stops before the first event past that time (the
    /// checkpoint stepping bound, see [`Simulation::run_until`]).  A batch
    /// shares one timestamp, so the bound never splits a batch.
    pub(super) fn run_event_loop_sharded(
        &mut self,
        mut profile: Option<&mut PhaseProfile>,
        until: Option<SimTime>,
    ) {
        // exchange-lint: allow(D002, reason = "profiling only: feeds PhaseProfile, never simulation state")
        let loop_start = Instant::now();
        loop {
            if let Some(until) = until {
                match self.engine.peek() {
                    Some((t, _)) if t <= until => {}
                    _ => break,
                }
            }
            let Some(event) = self.engine.next() else {
                break;
            };
            match event {
                Event::TrySchedule(first) => {
                    let batch = self.collect_try_schedule_batch(first);
                    // exchange-lint: allow(D002, reason = "profiling only: feeds PhaseProfile, never simulation state")
                    let planning = profile.is_some().then(Instant::now);
                    let mut plan = self.plan_batch(&batch);
                    if let (Some(profile), Some(started)) = (profile.as_deref_mut(), planning) {
                        profile.shard_planning += started.elapsed();
                    }
                    for &provider in &batch {
                        let planned = plan.as_mut().and_then(|p| p.provider_mut(provider));
                        match profile.as_deref_mut() {
                            Some(profile) => {
                                profile.events += 1;
                                // exchange-lint: allow(D002, reason = "profiling only: feeds PhaseProfile, never simulation state")
                                let started = Instant::now();
                                self.handle_try_schedule_planned(provider, planned);
                                profile.scheduling += started.elapsed();
                            }
                            None => self.handle_try_schedule_planned(provider, planned),
                        }
                    }
                }
                other => match profile.as_deref_mut() {
                    Some(profile) => self.dispatch_profiled(other, profile),
                    None => self.dispatch(other),
                },
            }
        }
        if let Some(profile) = profile {
            profile.event_loop = loop_start.elapsed();
        }
    }
}
