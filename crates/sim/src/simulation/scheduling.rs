//! Upload-slot scheduling: exchange-ring discovery and activation,
//! preemption, and the pluggable non-exchange fallback.

// The event loop's panic policy (exchange-lint rule H001): no `.unwrap()` —
// every panicking access carries an `.expect()` stating the invariant that
// makes it unreachable.  Clippy enforces the same contract at module level.
#![deny(clippy::unwrap_used, clippy::get_unwrap)]

use credit::QueuedRequest;
use exchange::{ExchangeRing, RingSearch, RingToken, SearchTrace, TokenOutcome};
use workload::{ObjectId, PeerId};

use crate::{SessionEnd, SessionKind};

use super::shard::PlannedProvider;
use super::Simulation;

/// The non-exchange request queue assembled for one provider, reused across
/// iterations of the scheduling loop — and seeded from a shard worker's
/// precomputation — as long as its validity stamps still match.
///
/// Reuse is tiered by what actually moved since the queue was built:
///
/// * nothing (`transfer_epoch` equal) — reuse verbatim;
/// * only transfer **starts** (`transfer_end_epoch`, `generation` and
///   `world_epoch` equal, `transfer_epoch` moved) — patch in place:
///   under starts-only drift the eligible entry set can only *shrink*
///   (download slots fill, `already_serving` pairs appear), so dropping the
///   newly ineligible entries is provably identical to a full rebuild;
/// * anything else (a transfer ended, a request edge changed, storage or
///   claims moved) — rebuild from scratch.
///
/// In the scheduling loop only the transfer epochs can actually move
/// between iterations; the graph stamps are insurance that keeps a future
/// graph-mutating scheduling step from silently replaying a stale queue.
pub(super) struct ServeQueue {
    pub(super) queue: Vec<QueuedRequest<PeerId>>,
    pub(super) objects: Vec<ObjectId>,
    pub(super) transfer_epoch: u64,
    pub(super) transfer_end_epoch: u64,
    pub(super) generation: u64,
    pub(super) world_epoch: u64,
}

impl Simulation {
    pub(super) fn handle_try_schedule(&mut self, provider: PeerId) {
        self.handle_try_schedule_planned(provider, None);
    }

    /// [`handle_try_schedule`](Self::handle_try_schedule), optionally seeded
    /// with a shard worker's precomputed plan.  With `plan = None` this *is*
    /// the sequential engine; with a plan, precomputed results replace the
    /// searches and queue assemblies they are provably identical to, and
    /// everything else — cache lookups and stores, activation, preemption,
    /// the scheduler's pick — runs unchanged, so the two paths cannot
    /// diverge.
    pub(super) fn handle_try_schedule_planned(
        &mut self,
        provider: PeerId,
        mut plan: Option<&mut PlannedProvider>,
    ) {
        // A departed peer serves nobody; a stale TrySchedule queued before
        // its departure is a no-op.
        if !self.peer(provider).sharing || !self.peer(provider).online {
            return;
        }
        let mut serve_queue = plan
            .as_deref_mut()
            .and_then(PlannedProvider::take_serve_queue);
        loop {
            let free_slot = self.peer(provider).upload_slots.has_free();
            let can_preempt = self.config.preemption && self.has_preemptible_upload(provider);
            let mut progressed = false;

            if self.config.discipline.allows_exchange() && (free_slot || can_preempt) {
                progressed = self.try_form_exchange(provider, plan.as_deref_mut());
            }
            if !progressed && self.peer(provider).upload_slots.has_free() {
                progressed = self.serve_non_exchange(provider, &mut serve_queue);
            }
            if !progressed {
                break;
            }
        }
    }

    pub(super) fn has_preemptible_upload(&self, uploader: PeerId) -> bool {
        self.uploads_by_peer.get(&uploader).is_some_and(|tids| {
            tids.iter().any(|tid| {
                self.transfers
                    .get(tid)
                    .is_some_and(|t| !t.kind.is_exchange())
            })
        })
    }

    /// Attempts to discover and activate one exchange ring rooted at
    /// `provider`.  Returns `true` if a ring was activated.
    ///
    /// Candidate discovery goes through the [`super::RingCandidateCache`]
    /// when enabled: the last search's rings are reused verbatim until a
    /// graph or holdings delta touches a peer that search depended on, so
    /// repeated scheduling rounds at a quiet provider skip the BFS entirely.
    /// When a shard `plan` carries a still-valid precomputed trace, it
    /// replaces the fresh BFS a miss would otherwise run — nothing else.
    fn try_form_exchange(&mut self, provider: PeerId, plan: Option<&mut PlannedProvider>) -> bool {
        let Some(policy) = self.config.discipline.search_policy() else {
            return false;
        };
        let wants = self.peer(provider).wanted_objects();
        if wants.is_empty() {
            return false;
        }
        // Try only a handful of candidates: the paper's peers pick the first
        // feasible exchange rather than exhaustively probing every proposal.
        let attempts = self.config.ring_attempts_per_schedule;
        let candidates: Vec<ExchangeRing<PeerId, ObjectId>> = if self.config.ring_candidate_cache {
            self.drain_graph_deltas();
            if let Some(rings) = self.ring_cache.lookup(provider, &wants) {
                rings.iter().take(attempts).cloned().collect()
            } else {
                let trace = self.planned_or_fresh_trace(policy, provider, &wants, plan);
                let candidates = trace.rings.iter().take(attempts).cloned().collect();
                self.ring_cache.store(provider, wants, trace);
                candidates
            }
        } else {
            let mut rings = self
                .planned_or_fresh_trace(policy, provider, &wants, plan)
                .rings;
            rings.truncate(attempts);
            rings
        };
        for ring in &candidates {
            if self.activate_ring(provider, ring) {
                return true;
            }
        }
        false
    }

    /// The shard-precomputed trace when it is provably identical to a fresh
    /// search (same wants, graph generation and world epoch unchanged since
    /// the snapshot), a fresh inline search otherwise.
    ///
    /// A consumed plan trace is *moved* out of the plan and counted as the
    /// one `ring_search` it replaced (with the worker-side search time), so
    /// the sharded engine's `ring_searches`/`ring_search_nanos` totals equal
    /// the sequential engine's exactly — speculative worker searches the
    /// merge never consumes appear only in `planned_searches`.
    fn planned_or_fresh_trace(
        &mut self,
        policy: exchange::SearchPolicy,
        provider: PeerId,
        wants: &[ObjectId],
        plan: Option<&mut PlannedProvider>,
    ) -> SearchTrace<PeerId, ObjectId> {
        if let Some((trace, nanos)) =
            plan.and_then(|p| p.take_valid_trace(wants, self.graph.generation(), self.world_epoch))
        {
            if self.profile_searches {
                self.ring_search_nanos
                    .set(self.ring_search_nanos.get() + nanos);
                self.ring_searches.set(self.ring_searches.get() + 1);
                self.planned_consumed.set(self.planned_consumed.get() + 1);
            }
            return trace;
        }
        self.search_rings(policy, provider, wants)
    }

    /// Drains the request graph's dirty log into the ring-candidate cache
    /// and the search scratch, at the configured granularity.
    ///
    /// At entry granularity the `(provider, object)` edge view drives both
    /// consumers: the cache drops only the entries whose search read a
    /// changed aspect, and the scratch's adjacency snapshot *advances* —
    /// forgetting only the queues that actually changed, so hub peers'
    /// materialised queues stay warm across mutations.  At provider
    /// granularity (the PR-2 baseline semantics) the peer view nukes
    /// coarsely and the snapshot is left to reset wholesale on its next
    /// generation check.
    pub(super) fn drain_graph_deltas(&mut self) {
        if !self.graph.has_dirty() {
            return;
        }
        match self.ring_cache.granularity() {
            super::CacheGranularity::Provider => {
                self.ring_cache.apply_graph_deltas(&mut self.graph);
                self.drained_generation = self.graph.generation();
            }
            super::CacheGranularity::Entry => {
                let edges = self.graph.take_dirty_edges();
                let to = self.graph.generation();
                // Edges back claims only for behaviors that advertise
                // unstored objects; without middlemen in the population the
                // whole probe-side pass is provably irrelevant.
                let edges_back_claims = !self.advertisers.is_empty();
                let mut scratch_updates: Vec<(PeerId, bool)> = Vec::new();
                for &(provider, requester, object) in &edges {
                    if scratch_updates.last().map(|(p, _)| *p) != Some(provider) {
                        // First — therefore smallest — changed edge of this
                        // provider's group: every queue entry sorting before
                        // it is untouched by the whole batch, so the
                        // fanout-bounded prefix interior expansions read
                        // survives iff `fanout` untouched entries precede it.
                        let prefix_changed =
                            self.edge_in_search_prefix(provider, requester, object);
                        if prefix_changed {
                            self.ring_cache.invalidate_edge_readers(provider);
                        } else {
                            self.ring_cache.invalidate_root(provider);
                        }
                        scratch_updates.push((provider, prefix_changed));
                    }
                    if edges_back_claims {
                        // Claim probes scan the whole queue; prefix position
                        // is irrelevant to them.
                        self.ring_cache.invalidate_claims(provider, object);
                    }
                }
                self.scratch
                    .advance(self.drained_generation, to, scratch_updates);
                self.drained_generation = to;
            }
        }
    }

    /// Whether fewer than `ring_search_fanout` entries of `provider`'s
    /// current incoming queue sort before the changed edge
    /// `(requester, object)` — i.e. whether the change can reach the queue
    /// prefix a depth-limited search expands.  Entries before the edge are
    /// unaffected by adding or removing it, so `fanout` of them shield the
    /// prefix entirely.
    fn edge_in_search_prefix(&self, provider: PeerId, requester: PeerId, object: ObjectId) -> bool {
        let fanout = self.config.ring_search_fanout;
        let mut smaller = 0usize;
        for req in self.graph.incoming(provider) {
            if (req.requester, req.object) >= (requester, object) {
                break;
            }
            smaller += 1;
            if smaller >= fanout {
                return false;
            }
        }
        true
    }

    /// Runs one fresh ring search rooted at `provider`, inside the
    /// simulation's shared [`exchange::SearchScratch`] so consecutive
    /// searches of a round reuse their buffers and adjacency snapshot.
    ///
    /// A peer in the request tree can close a ring if it shares and *claims*
    /// an object the provider wants — its advertised holdings, which for a
    /// middleman exceed its real storage ([`Simulation::claims`]).
    /// (Following the paper, the provider examines its pending requests
    /// against what the peers in its request tree advertise; it is not
    /// limited to the providers its own lookups sampled.)
    fn search_rings(
        &mut self,
        policy: exchange::SearchPolicy,
        provider: PeerId,
        wants: &[ObjectId],
    ) -> exchange::SearchTrace<PeerId, ObjectId> {
        // The scratch is taken out of `self` for the duration of the search
        // so the `claims` oracle can borrow the rest of the simulation.
        let mut scratch = std::mem::take(&mut self.scratch);
        // exchange-lint: allow(D002, reason = "profiling only: feeds PhaseProfile, never simulation state")
        let start = self.profile_searches.then(std::time::Instant::now);
        let trace = RingSearch::new(policy)
            .with_expansion_budget(self.config.ring_search_budget)
            .with_fanout(self.config.ring_search_fanout)
            .find_traced_in(
                &mut scratch,
                &self.graph,
                provider,
                wants,
                |peer, object| self.claims(*peer, *object),
            );
        if let Some(start) = start {
            self.ring_search_nanos
                .set(self.ring_search_nanos.get() + start.elapsed().as_nanos() as u64);
            self.ring_searches.set(self.ring_searches.get() + 1);
        }
        self.scratch = scratch;
        trace
    }

    /// Whether `peer` could take on the upload described by `edge` as part of
    /// an exchange ring (the token-confirmation predicate).
    fn can_confirm_ring_member(
        &self,
        peer: PeerId,
        edge: &exchange::RingEdge<PeerId, ObjectId>,
    ) -> bool {
        if !self.claims(peer, edge.object) {
            return false;
        }
        let uploader = self.peer(peer);
        let slot_available = uploader.upload_slots.has_free()
            || (self.config.preemption && self.has_preemptible_upload(peer));
        if !slot_available {
            return false;
        }
        let downloader = self.peer(edge.downloader);
        if !downloader.download_slots.has_free() {
            return false;
        }
        if !downloader.wants.contains_key(&edge.object) {
            return false;
        }
        // An identical transfer already part of an exchange means this edge is
        // already served at exchange priority; re-forming it would double-count.
        let duplicate_exchange = self
            .downloads_by_want
            .get(&(edge.downloader, edge.object))
            .is_some_and(|tids| {
                tids.iter().any(|tid| {
                    self.transfers
                        .get(tid)
                        .is_some_and(|t| t.uploader == peer && t.kind.is_exchange())
                })
            });
        !duplicate_exchange
    }

    /// Validates `ring` with a token pass and, if confirmed, activates it.
    fn activate_ring(&mut self, initiator: PeerId, ring: &ExchangeRing<PeerId, ObjectId>) -> bool {
        let token = RingToken::new(initiator);
        let outcome = token.circulate(ring, |peer, edge| self.can_confirm_ring_member(*peer, edge));
        if let TokenOutcome::Declined { .. } = outcome {
            if self.measuring() {
                self.report.record_token_decline();
            }
            return false;
        }

        let ring_id = self.next_ring_id;
        self.next_ring_id += 1;
        let kind = SessionKind::Exchange {
            ring_size: ring.len(),
        };
        let mut created = Vec::new();
        for edge in ring.edges() {
            // Replace any ongoing low-priority transfer on the same edge, and
            // free a slot by preemption if the uploader is saturated.
            self.preempt_duplicate(edge.uploader, edge.downloader, edge.object);
            let slot_free = self.peer(edge.uploader).upload_slots.has_free()
                || (self.config.preemption && self.preempt_one_upload(edge.uploader));
            if !slot_free {
                break;
            }
            match self.start_transfer(
                edge.uploader,
                edge.downloader,
                edge.object,
                kind,
                Some(ring_id),
            ) {
                Some(tid) => created.push(tid),
                None => break,
            }
        }
        if created.len() != ring.len() {
            // A member became infeasible between confirmation and activation
            // (e.g. its slot was consumed while activating an earlier edge).
            // Distinct from a token decline: the ring passed validation and
            // fell apart while being wired up.
            for tid in created {
                self.end_transfer(tid, SessionEnd::RingDissolved);
            }
            if self.measuring() {
                self.report.record_ring_dissolved_at_activation();
            }
            return false;
        }
        self.rings
            .insert(ring_id, super::ActiveRing { transfers: created });
        if self.measuring() {
            self.report.record_ring(ring.len());
        }
        true
    }

    /// Ends a low-priority transfer on exactly this edge, if one is running.
    fn preempt_duplicate(&mut self, uploader: PeerId, downloader: PeerId, object: ObjectId) {
        let duplicate = self
            .downloads_by_want
            .get(&(downloader, object))
            .into_iter()
            .flatten()
            .copied()
            .find(|tid| {
                self.transfers
                    .get(tid)
                    .is_some_and(|t| t.uploader == uploader && !t.kind.is_exchange())
            });
        if let Some(tid) = duplicate {
            self.end_transfer(tid, SessionEnd::Preempted);
            if self.measuring() {
                self.report.record_preemption();
            }
        }
    }

    /// Preempts one arbitrary non-exchange upload of `uploader`, freeing a slot.
    fn preempt_one_upload(&mut self, uploader: PeerId) -> bool {
        let victim = self
            .uploads_by_peer
            .get(&uploader)
            .into_iter()
            .flatten()
            .copied()
            .find(|tid| {
                self.transfers
                    .get(tid)
                    .is_some_and(|t| !t.kind.is_exchange())
            });
        if let Some(tid) = victim {
            self.end_transfer(tid, SessionEnd::Preempted);
            if self.measuring() {
                self.report.record_preemption();
            }
            true
        } else {
            false
        }
    }

    /// Serves one non-exchange request at `provider`, if any is eligible.
    ///
    /// The queue is assembled from the provider's incoming requests and
    /// handed to the configured [`credit::UploadScheduler`], which picks the
    /// winner; the simulation itself imposes no ordering policy.
    ///
    /// The assembled queue is kept in `cached` between iterations of the
    /// scheduling loop.  It is reused verbatim while no transfer started or
    /// ended since it was built; when only transfer *starts* intervened
    /// (the epoch taxonomy [`ServeQueue`] documents) it is patched in place
    /// instead of rebuilt — this is what lets a shard worker's precomputed
    /// queue survive the earlier events of its batch, which can start
    /// transfers but, within one timestamp, never complete them.
    fn serve_non_exchange(&mut self, provider: PeerId, cached: &mut Option<ServeQueue>) -> bool {
        let reusable = matches!(cached, Some(sq) if sq.generation == self.graph.generation()
            && sq.world_epoch == self.world_epoch
            && sq.transfer_end_epoch == self.transfer_end_epoch);
        match cached.as_mut() {
            Some(sq) if reusable && sq.transfer_epoch == self.transfer_epoch => {}
            Some(sq) if reusable => self.patch_serve_queue(provider, sq),
            _ => *cached = Some(self.batch_snapshot().build_serve_queue(provider)),
        }
        let sq = cached.as_mut().expect("serve queue was just built");
        if sq.queue.is_empty() {
            return false;
        }
        let Some(index) = self.scheduler.pick(provider, &sq.queue) else {
            return false;
        };
        if index >= sq.queue.len() {
            // A custom scheduler returned a nonsense index; treat the slot as
            // idle rather than panicking the whole run.
            debug_assert!(
                false,
                "scheduler {} picked index {index} from a queue of {}",
                self.scheduler.label(),
                sq.queue.len()
            );
            return false;
        }
        let requester = sq
            .queue
            .get(index)
            .expect("pick index validated against queue length above")
            .requester;
        let object = *sq
            .objects
            .get(index)
            .expect("serve queue keeps objects parallel to queue");
        // A successful serve bumps only `transfer_epoch`; the next loop
        // iteration's stamp check patches the queue lazily — there is no
        // next iteration to pay for when the serve failed or the loop ends.
        self.start_transfer(provider, requester, object, SessionKind::NonExchange, None)
            .is_some()
    }

    /// Brings a starts-only-stale [`ServeQueue`] back to current, dropping
    /// exactly the entries a full rebuild would now exclude.
    ///
    /// Transfer starts never touch the request graph, want issue times,
    /// storage, claims, sharing flags or the clock (the graph/world stamps
    /// already matched, and a batch shares one timestamp), so of
    /// [`BatchSnapshot::build_serve_queue`]'s per-entry conditions only two
    /// can have changed — and both only towards exclusion: the requester's
    /// download slots may have filled, and the `(requester, object)` pair
    /// may now be served by this provider.  Filtering on those two live
    /// probes therefore reproduces the rebuild, at O(queue) with no graph
    /// walk, no want lookups and no reciprocity scans.
    ///
    /// [`BatchSnapshot::build_serve_queue`]: super::shard::BatchSnapshot::build_serve_queue
    fn patch_serve_queue(&self, provider: PeerId, sq: &mut ServeQueue) {
        let mut kept_queue = Vec::with_capacity(sq.queue.len());
        let mut kept_objects = Vec::with_capacity(sq.objects.len());
        let entries = std::mem::take(&mut sq.queue)
            .into_iter()
            .zip(std::mem::take(&mut sq.objects));
        for (entry, object) in entries {
            if !self.peer(entry.requester).download_slots.has_free() {
                continue;
            }
            let already_serving = self
                .downloads_by_want
                .get(&(entry.requester, object))
                .is_some_and(|tids| {
                    tids.iter().any(|tid| {
                        self.transfers
                            .get(tid)
                            .is_some_and(|t| t.uploader == provider)
                    })
                });
            if already_serving {
                continue;
            }
            kept_queue.push(entry);
            kept_objects.push(object);
        }
        sq.queue = kept_queue;
        sq.objects = kept_objects;
        sq.transfer_epoch = self.transfer_epoch;
    }
}
