//! The persistent shard worker pool.
//!
//! PR 10 replaces the per-batch `thread::scope` fan-out with long-lived
//! workers owned by [`Simulation`](super::Simulation): spawned lazily at the
//! first sharded batch, fed one [`BatchJob`] per batch over channels, and
//! joined when the simulation drops.  At 10⁵-peer scale the sharded run
//! dispatches millions of `TrySchedule` batches; paying thread spawn and
//! teardown per batch was a measurable slice of the planning overhead the
//! nightly `speedup_sharded` figure showed.
//!
//! The handoff protocol keeps the engine free of `unsafe` and of scoped
//! lifetimes:
//!
//! 1. The merge thread `mem::take`s the state the workers read (graph,
//!    peers, transfer tables, ring cache) into an owned [`BatchJob`], wraps
//!    it in an `Arc`, and sends one clone to every worker.
//! 2. Each worker plans the task indices congruent to its own index, **drops
//!    its `Arc` handle first**, and then reports its
//!    `(provider, PlannedSlot)` results on its private result channel.
//! 3. The merge thread receives every worker's result batch (a panicked
//!    worker drops its sole result sender, so the `recv` fails immediately
//!    instead of deadlocking), unwraps the now-unique `Arc`, and moves the
//!    state back into the simulation.
//!
//! Workers keep their [`SearchScratch`] alive across batches, so the warm
//! adjacency snapshots that make repeated searches cheap survive from batch
//! to batch — under `thread::scope` they had to be shuttled through the
//! simulation object instead.
//!
//! What a worker plans is strictly the work the merge is predicted to
//! consume: a traced ring search only for a slot-eligible provider whose
//! candidate-cache peek predicts a miss, and a serve queue only when the
//! provider has a free upload slot.  Mispredictions (an earlier event of the
//! batch freeing a slot, say) fall back to inline recomputation at merge —
//! exactly the sequential control flow — so results stay bit-identical.

// The event loop's panic policy (exchange-lint rule H001): no `.unwrap()` —
// every panicking access carries an `.expect()` stating the invariant that
// makes it unreachable.  Clippy enforces the same contract at module level.
#![deny(clippy::unwrap_used, clippy::get_unwrap)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Instant;

use des::SimTime;
use exchange::{RequestGraph, RingSearch, SearchScratch, SearchTrace};
use workload::{ObjectId, PeerId};

use crate::PeerState;

use super::ring_cache::RingCandidateCache;
use super::scheduling::ServeQueue;
use super::shard::BatchSnapshot;
use super::transfers::ActiveTransfer;
use super::TransferId;

/// Everything a shard worker reads for one batch, moved out of the
/// simulation for the duration of the planning barrier.  Scalars are
/// captured first (struct literal fields evaluate in order); the owned
/// collections are `mem::take`n and restored by the merge when the barrier
/// completes.
pub(super) struct BatchJob {
    /// Current virtual time (the batch's shared timestamp).
    pub(super) now: SimTime,
    /// Whether the upload scheduler reads the reciprocation flag.
    pub(super) needs_reciprocal: bool,
    pub(super) transfer_epoch: u64,
    pub(super) transfer_end_epoch: u64,
    /// Request-graph generation at the snapshot.
    pub(super) generation: u64,
    /// Storage/claims epoch at the snapshot.
    pub(super) world_epoch: u64,
    /// The configured ring search, `None` under a no-search discipline.
    pub(super) search: Option<RingSearch>,
    /// Whether the ring-candidate cache is consulted at all.
    pub(super) cache_enabled: bool,
    /// Whether the discipline forms exchanges (gates the search).
    pub(super) allows_exchange: bool,
    /// Whether preemption can free a saturated provider's slot.
    pub(super) preemption: bool,
    /// Whether workers should time their searches.
    pub(super) profiling: bool,
    /// The batch's distinct plannable providers with their wanted objects,
    /// in first-occurrence order; workers own indices congruent to their id.
    pub(super) tasks: Vec<(PeerId, Vec<ObjectId>)>,
    pub(super) graph: RequestGraph<PeerId, ObjectId>,
    pub(super) peers: Vec<PeerState>,
    pub(super) advertises: Vec<bool>,
    pub(super) transfers: HashMap<TransferId, ActiveTransfer>,
    pub(super) downloads_by_want: HashMap<(PeerId, ObjectId), Vec<TransferId>>,
    pub(super) uploads_by_peer: HashMap<PeerId, Vec<TransferId>>,
    /// The ring-candidate cache, read-only here: workers `peek` it to skip
    /// searches a merge-side lookup will answer from cache.  Stats are only
    /// ever advanced by the merge thread's real lookups.
    pub(super) ring_cache: RingCandidateCache,
}

/// One provider's planned batch work, as produced by a worker.
pub(super) struct PlannedSlot {
    /// The provider's wanted objects at snapshot time (the search key).
    pub(super) wants: Vec<ObjectId>,
    /// Traced search, present only for slot-eligible predicted cache misses.
    pub(super) trace: Option<SearchTrace<PeerId, ObjectId>>,
    /// Assembled non-exchange queue, present only when the provider had a
    /// free upload slot at snapshot time.
    pub(super) serve_queue: Option<ServeQueue>,
    /// Worker-side nanoseconds of the search (profiled runs only); folded
    /// into the `ring_search` phase if and when the trace is consumed.
    pub(super) nanos: u64,
}

impl BatchJob {
    fn snapshot(&self) -> BatchSnapshot<'_> {
        BatchSnapshot {
            graph: &self.graph,
            peers: &self.peers,
            advertises: &self.advertises,
            transfers: &self.transfers,
            downloads_by_want: &self.downloads_by_want,
            now: self.now,
            needs_reciprocal: self.needs_reciprocal,
            transfer_epoch: self.transfer_epoch,
            transfer_end_epoch: self.transfer_end_epoch,
            generation: self.generation,
            world_epoch: self.world_epoch,
        }
    }

    /// Mirror of [`Simulation::has_preemptible_upload`] against the job's
    /// moved-in tables (the slot-eligibility half the sequential scheduling
    /// loop evaluates before searching).
    ///
    /// [`Simulation::has_preemptible_upload`]: super::Simulation
    fn has_preemptible_upload(&self, uploader: PeerId) -> bool {
        self.uploads_by_peer.get(&uploader).is_some_and(|tids| {
            tids.iter().any(|tid| {
                self.transfers
                    .get(tid)
                    .is_some_and(|t| !t.kind.is_exchange())
            })
        })
    }

    /// Plans one provider: the traced search (only if the merge is predicted
    /// to consume it — slot-eligible, exchange-forming, and a predicted
    /// candidate-cache miss) and the serve queue (only reachable when a free
    /// slot exists).
    fn plan_provider(
        &self,
        scratch: &mut SearchScratch<PeerId, ObjectId>,
        provider: PeerId,
        wants: &[ObjectId],
    ) -> PlannedSlot {
        let state = &self.peers[provider.as_usize()];
        let free_slot = state.upload_slots.has_free();
        let slot_eligible = free_slot || (self.preemption && self.has_preemptible_upload(provider));
        let want_search = slot_eligible
            && self.allows_exchange
            && !wants.is_empty()
            && (!self.cache_enabled || !self.ring_cache.peek(provider, wants));
        let mut nanos = 0u64;
        let trace = match (&self.search, want_search) {
            (Some(search), true) => {
                // exchange-lint: allow(D002, reason = "profiling only: feeds PhaseProfile, never simulation state")
                let started = self.profiling.then(Instant::now);
                let trace = self.snapshot().search(search, scratch, provider, wants);
                if let Some(started) = started {
                    nanos = started.elapsed().as_nanos() as u64;
                }
                Some(trace)
            }
            _ => None,
        };
        let serve_queue = free_slot.then(|| self.snapshot().build_serve_queue(provider));
        PlannedSlot {
            wants: wants.to_vec(),
            trace,
            serve_queue,
            nanos,
        }
    }
}

/// One worker's merge-side endpoints.
#[derive(Debug)]
struct WorkerHandle {
    result_rx: mpsc::Receiver<Vec<(PeerId, PlannedSlot)>>,
    handle: thread::JoinHandle<()>,
}

/// The persistent worker pool: created lazily at the first sharded batch,
/// joined when the owning [`Simulation`](super::Simulation) drops (dropping
/// the job senders ends every worker's receive loop).
#[derive(Debug)]
pub(super) struct ShardPool {
    job_txs: Vec<mpsc::Sender<Arc<BatchJob>>>,
    workers: Vec<WorkerHandle>,
}

impl ShardPool {
    /// Spawns `shards` workers.  `census` counts live worker threads (the
    /// audit harness asserts it returns to zero when the simulation drops).
    pub(super) fn new(shards: usize, census: Arc<AtomicUsize>) -> Self {
        let shards = shards.max(1);
        let mut job_txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for index in 0..shards {
            let (job_tx, job_rx) = mpsc::channel::<Arc<BatchJob>>();
            let (result_tx, result_rx) = mpsc::channel();
            let census = Arc::clone(&census);
            census.fetch_add(1, Ordering::SeqCst);
            let handle = thread::Builder::new()
                .name(format!("shard-worker-{index}"))
                .spawn(move || {
                    // Decrements even if planning panics, so the census
                    // cannot leak a phantom live worker.
                    struct CensusGuard(Arc<AtomicUsize>);
                    impl Drop for CensusGuard {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    let _guard = CensusGuard(census);
                    // The scratch lives as long as the worker: adjacency
                    // snapshots stay warm across batches.
                    let mut scratch = SearchScratch::new();
                    while let Ok(job) = job_rx.recv() {
                        let mut out = Vec::new();
                        for (slot, (provider, wants)) in job.tasks.iter().enumerate() {
                            if slot % shards == index {
                                out.push((
                                    *provider,
                                    job.plan_provider(&mut scratch, *provider, wants),
                                ));
                            }
                        }
                        // Drop the job handle BEFORE reporting: once the
                        // merge has received every result, its Arc is
                        // provably unique and `try_unwrap` restores the
                        // state without a copy.
                        drop(job);
                        if result_tx.send(out).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawning a shard worker thread");
            job_txs.push(job_tx);
            workers.push(WorkerHandle { result_rx, handle });
        }
        ShardPool { job_txs, workers }
    }

    /// Runs one batch barrier: hands `job` to every worker, collects every
    /// worker's planned slots, and returns the job's state for restoration.
    ///
    /// # Panics
    ///
    /// Panics if a worker exited or panicked — a dead worker would otherwise
    /// silently drop its share of the batch and corrupt determinism.
    pub(super) fn run(&self, job: BatchJob) -> (BatchJob, Vec<(PeerId, PlannedSlot)>) {
        let job = Arc::new(job);
        for job_tx in &self.job_txs {
            job_tx
                .send(Arc::clone(&job))
                .expect("a shard worker exited before the simulation dropped");
        }
        let mut results = Vec::with_capacity(job.tasks.len());
        for worker in &self.workers {
            let planned = worker
                .result_rx
                .recv()
                .expect("a shard worker panicked mid-batch");
            results.extend(planned);
        }
        let job = Arc::try_unwrap(job)
            .ok()
            .expect("workers drop their job handle before reporting");
        (job, results)
    }

    /// Whether every worker is parked on its job channel with no unread
    /// results — the between-batches steady state the audit asserts.
    #[cfg(feature = "audit")]
    pub(super) fn idle(&self) -> bool {
        self.workers
            .iter()
            .all(|w| matches!(w.result_rx.try_recv(), Err(mpsc::TryRecvError::Empty)))
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the job channels ends every worker's receive loop; join
        // so no worker thread outlives the simulation that spawned it.  A
        // worker that panicked already surfaced at the batch barrier — the
        // join result is deliberately ignored to avoid a double panic.
        self.job_txs.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.handle.join();
        }
    }
}
