//! Between-events invariant audit (feature `audit`).
//!
//! [`Simulation::run_audited`] drives the same event loop as
//! [`Simulation::run`] but re-checks the simulator's structural invariants
//! after every event, and the report-level accounting identities after
//! finalisation:
//!
//! * slot accounting — each peer's reserved upload/download slots equal its
//!   live transfer count, and the transfer indexes agree with the transfer
//!   table;
//! * provision — every active transfer's uploader stores the object or is a
//!   behavior that may advertise unstored objects (a relaying middleman);
//! * rings — every active exchange ring's sessions form one cycle over
//!   distinct peers;
//! * byte conservation — total bytes uploaded equal total bytes downloaded,
//!   and no peer's junk/ciphertext tallies exceed its downloads;
//! * cache exactness — every live [`super::RingCandidateCache`] entry equals
//!   a fresh [`exchange::RingSearch::find_traced`] run against the current
//!   graph and claims oracle, dependency sets included;
//! * report accounting ([`check_report`]) — per-behavior totals sum to the
//!   global totals.
//!
//! The checks are deliberately exhaustive and therefore expensive (the cache
//! check re-runs every cached search per event); the feature exists for
//! tests, not production runs.
//!
//! **Time travel.**  Before dispatching each event, [`Simulation::run_audited`]
//! serializes the complete pre-event state into a reusable buffer (the event
//! still queued).  When an invariant trips, that buffer is dumped to disk —
//! [`Simulation::audit_checkpoint_path`], else `AUDIT_CHECKPOINT_PATH`, else
//! `audit_failure.ckpt` in the temp dir — and the panic message names the
//! file.  [`Simulation::restore`]-ing the dump and calling `run_audited`
//! again replays the identical failing event first, reproducing the failure
//! in isolation.

use std::collections::BTreeMap;
use std::path::PathBuf;

use exchange::RingSearch;
use workload::PeerId;

use crate::SimReport;

use super::events::Event;
use super::Simulation;

impl Simulation {
    /// Runs the simulation to its horizon, checking every invariant after
    /// every event and the report identities after finalisation.
    ///
    /// The returned report is identical to [`Simulation::run`]'s.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant, after
    /// dumping the pre-event checkpoint (see the module docs).
    #[must_use]
    pub fn run_audited(mut self) -> SimReport {
        self.audit()
            .unwrap_or_else(|e| panic!("invariant violated before the first event: {e}"));
        // Reused across events: the complete pre-event state, captured while
        // the event is still queued so a restore replays it first.
        let mut pre_event: Vec<u8> = Vec::new();
        loop {
            pre_event.clear();
            if self.engine.peek().is_some() {
                self.checkpoint(&mut pre_event)
                    .expect("serializing into a Vec cannot fail");
            }
            let Some(event) = self.engine.next() else {
                break;
            };
            match event {
                // The sharded engine batches same-timestamp TrySchedule runs;
                // audit each merged event application individually, so a
                // violation is pinned to the exact event that introduced it.
                Event::TrySchedule(first) if self.config.shards > 1 => {
                    let batch = self.collect_try_schedule_batch(first);
                    let mut plan = self.plan_batch(&batch);
                    // Pool-protocol invariants, checked with plain panics:
                    // the pool and plan are not serialized, so the
                    // checkpoint-dumping audit path could not replay them
                    // anyway.  A plan must be stamped at the live state it
                    // was computed against, and every worker must be parked
                    // again once the batch barrier returns.
                    if let Some(plan) = &plan {
                        assert!(
                            plan.stamps_current(self.graph.generation(), self.world_epoch),
                            "a batch plan carries stale stamps at merge time"
                        );
                    }
                    assert!(
                        self.shard_pool_idle(),
                        "a shard worker is still busy after its batch barrier"
                    );
                    for &provider in &batch {
                        let planned = plan.as_mut().and_then(|p| p.provider_mut(provider));
                        self.handle_try_schedule_planned(provider, planned);
                        self.audit_after(Event::TrySchedule(provider), &pre_event);
                    }
                    continue;
                }
                other => self.dispatch(other),
            }
            self.audit_after(event, &pre_event);
        }
        let report = self.finalize();
        check_report(&report).unwrap_or_else(|e| panic!("report accounting violated: {e}"));
        report
    }

    /// Arms the test-only fault hook: once the engine has delivered
    /// `delivered` events, [`run_audited`](Self::run_audited) deliberately
    /// corrupts one byte-conservation tally so the next audit trips.  Used
    /// by the time-travel tests to produce a failure at a known event; the
    /// hook is not serialized, so replaying a restored checkpoint requires
    /// re-arming it with the same value.
    pub fn inject_audit_fault_at(&mut self, delivered: u64) {
        self.audit_fault_at = Some(delivered);
    }

    /// Overrides where [`run_audited`](Self::run_audited) dumps the
    /// pre-failure checkpoint (default: `AUDIT_CHECKPOINT_PATH`, else
    /// `audit_failure.ckpt` in the temp dir).
    pub fn audit_checkpoint_path(&mut self, path: impl Into<PathBuf>) {
        self.audit_dump_path = Some(path.into());
    }

    /// Drains pending graph deltas (exactly what the next cached lookup
    /// would do, so the audited run stays identical to an unaudited one) and
    /// re-checks every invariant; on a violation, dumps the pre-event
    /// checkpoint and panics naming the offending `event` and the dump.
    fn audit_after(&mut self, event: Event, pre_event: &[u8]) {
        self.drain_graph_deltas();
        if self.audit_fault_at == Some(self.engine.delivered()) {
            // Deliberate, detectable corruption: one phantom uploaded byte
            // breaks byte conservation without touching control flow.
            self.peers[0].uploaded_bytes += 1;
        }
        if let Err(e) = self.audit() {
            let dump = self.dump_pre_event_checkpoint(pre_event);
            panic!(
                "invariant violated after {event:?} at t={:.1}s: {e}{dump}",
                self.engine.now().as_secs_f64()
            )
        }
    }

    /// Writes the pre-event snapshot next to the failure and describes the
    /// outcome for the panic message (a dump failure must not mask the
    /// audit failure itself).
    fn dump_pre_event_checkpoint(&self, pre_event: &[u8]) -> String {
        if pre_event.is_empty() {
            return String::new();
        }
        let path = self.audit_dump_path.clone().unwrap_or_else(|| {
            std::env::var_os("AUDIT_CHECKPOINT_PATH").map_or_else(
                || std::env::temp_dir().join("audit_failure.ckpt"),
                Into::into,
            )
        });
        match std::fs::write(&path, pre_event) {
            Ok(()) => format!("; pre-failure checkpoint written to {}", path.display()),
            Err(e) => format!(
                "; FAILED to write pre-failure checkpoint to {}: {e}",
                path.display()
            ),
        }
    }

    /// Checks every between-events invariant once.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn audit(&self) -> Result<(), String> {
        self.audit_slots_and_indexes()?;
        self.audit_transfer_provision()?;
        self.audit_rings()?;
        self.audit_byte_conservation()?;
        self.audit_ring_cache()?;
        self.audit_maintenance_wheel()?;
        self.audit_population()?;
        Ok(())
    }

    /// A departed peer holds nothing live: no reserved slots, no transfers,
    /// no outstanding wants, no request-graph edges in either direction, no
    /// holders-index entries, and no ring-cache entry rooted at it or
    /// depending on it.  (Byte conservation over sessions that spanned the
    /// departure is covered by the byte-conservation audit: `end_transfer`
    /// accounts both ends before teardown, so the global identity holds
    /// through churn.)
    fn audit_population(&self) -> Result<(), String> {
        for peer in &self.peers {
            if peer.online {
                continue;
            }
            let id = peer.id;
            if peer.upload_slots.in_use() != 0 || peer.download_slots.in_use() != 0 {
                return Err(format!("departed peer {id:?} still holds transfer slots"));
            }
            if !peer.wants.is_empty() {
                return Err(format!("departed peer {id:?} still has outstanding wants"));
            }
            if self.graph.incoming(id).next().is_some() {
                return Err(format!("departed peer {id:?} still has incoming requests"));
            }
            if self.graph.outgoing(id).next().is_some() {
                return Err(format!("departed peer {id:?} still has outgoing requests"));
            }
            for (object, holders) in self.holders.iter().enumerate() {
                if holders.contains(&id) {
                    return Err(format!(
                        "departed peer {id:?} still indexed as holder of object {object}"
                    ));
                }
            }
            for entry in self.ring_cache.iter_entries() {
                if entry.root == id || entry.deps.contains(&id) || entry.edge_deps.contains(&id) {
                    return Err(format!(
                        "departed peer {id:?} still referenced by cache entry at {:?}",
                        entry.root
                    ));
                }
            }
        }
        Ok(())
    }

    /// Every over-capacity peer has a maintenance event materialised.  With
    /// the lazy timing wheel this is the invariant that bounds how long a
    /// store can exceed its capacity: an armed event fires at the peer's
    /// next wheel boundary — at most one maintenance interval away — exactly
    /// when the per-peer-event baseline would have evicted.
    fn audit_maintenance_wheel(&self) -> Result<(), String> {
        for peer in &self.peers {
            // Offline stores are frozen; the rejoin re-arms the wheel.
            if !peer.online {
                continue;
            }
            if peer.storage.over_capacity() && !self.maintenance_pending[peer.id.as_usize()] {
                return Err(format!(
                    "peer {:?} is over capacity ({} of {}) with no maintenance event armed",
                    peer.id,
                    peer.storage.len(),
                    peer.storage.capacity()
                ));
            }
        }
        Ok(())
    }

    /// Slot reservations and the transfer indexes agree with the transfer
    /// table.
    fn audit_slots_and_indexes(&self) -> Result<(), String> {
        let mut uploads: BTreeMap<PeerId, usize> = BTreeMap::new();
        let mut downloads: BTreeMap<PeerId, usize> = BTreeMap::new();
        for (tid, t) in &self.transfers {
            *uploads.entry(t.uploader).or_default() += 1;
            *downloads.entry(t.downloader).or_default() += 1;
            let indexed_up = self
                .uploads_by_peer
                .get(&t.uploader)
                .is_some_and(|tids| tids.contains(tid));
            if !indexed_up {
                return Err(format!("transfer {tid} missing from uploads_by_peer"));
            }
            let indexed_down = self
                .downloads_by_want
                .get(&(t.downloader, t.object))
                .is_some_and(|tids| tids.contains(tid));
            if !indexed_down {
                return Err(format!("transfer {tid} missing from downloads_by_want"));
            }
        }
        for (peer, tids) in &self.uploads_by_peer {
            for tid in tids {
                if self.transfers.get(tid).map(|t| t.uploader) != Some(*peer) {
                    return Err(format!("uploads_by_peer[{peer:?}] holds stale id {tid}"));
                }
            }
        }
        for ((peer, object), tids) in &self.downloads_by_want {
            for tid in tids {
                let live = self
                    .transfers
                    .get(tid)
                    .is_some_and(|t| t.downloader == *peer && t.object == *object);
                if !live {
                    return Err(format!(
                        "downloads_by_want[{peer:?},{object:?}] holds stale id {tid}"
                    ));
                }
            }
        }
        for peer in &self.peers {
            let up = uploads.get(&peer.id).copied().unwrap_or(0);
            if peer.upload_slots.in_use() != up {
                return Err(format!(
                    "peer {:?}: {} upload slots reserved but {up} live uploads",
                    peer.id,
                    peer.upload_slots.in_use()
                ));
            }
            let down = downloads.get(&peer.id).copied().unwrap_or(0);
            if peer.download_slots.in_use() != down {
                return Err(format!(
                    "peer {:?}: {} download slots reserved but {down} live downloads",
                    peer.id,
                    peer.download_slots.in_use()
                ));
            }
        }
        Ok(())
    }

    /// Every active transfer's uploader stores the object, unless its
    /// behavior may legitimately advertise unstored objects (middleman
    /// relays; their backing claims are re-validated block by block).
    fn audit_transfer_provision(&self) -> Result<(), String> {
        for (tid, t) in &self.transfers {
            let uploader = self.peer(t.uploader);
            let holds = uploader.storage.contains(t.object)
                || self.behavior(t.uploader).advertises_unstored();
            if !holds {
                return Err(format!(
                    "transfer {tid}: uploader {:?} neither stores nor may advertise {:?}",
                    t.uploader, t.object
                ));
            }
        }
        Ok(())
    }

    /// Every active ring's sessions form one cycle over distinct peers.
    fn audit_rings(&self) -> Result<(), String> {
        for (ring_id, ring) in &self.rings {
            let mut next: BTreeMap<PeerId, PeerId> = BTreeMap::new();
            for tid in &ring.transfers {
                let Some(t) = self.transfers.get(tid) else {
                    return Err(format!("ring {ring_id} references dead transfer {tid}"));
                };
                if t.ring != Some(*ring_id) {
                    return Err(format!(
                        "ring {ring_id}: transfer {tid} belongs to {:?}",
                        t.ring
                    ));
                }
                if next.insert(t.uploader, t.downloader).is_some() {
                    return Err(format!(
                        "ring {ring_id}: peer {:?} uploads on two edges",
                        t.uploader
                    ));
                }
            }
            let Some(start) = ring
                .transfers
                .first()
                .and_then(|tid| self.transfers.get(tid))
            else {
                return Err(format!("ring {ring_id} has no transfers"));
            };
            // Walk the cycle; after exactly len() hops we must be back at the
            // start having seen len() distinct peers.
            let mut cursor = start.uploader;
            for hop in 0..ring.transfers.len() {
                let Some(&downloader) = next.get(&cursor) else {
                    return Err(format!(
                        "ring {ring_id}: no outgoing edge at {cursor:?} after {hop} hops"
                    ));
                };
                cursor = downloader;
            }
            if cursor != start.uploader {
                return Err(format!("ring {ring_id}: edges do not close a cycle"));
            }
            if next.len() != ring.transfers.len() {
                return Err(format!("ring {ring_id}: peers are not distinct"));
            }
        }
        Ok(())
    }

    /// Total bytes uploaded equal total bytes downloaded, and per-peer junk
    /// and ciphertext tallies never exceed the downloads they are part of.
    fn audit_byte_conservation(&self) -> Result<(), String> {
        let uploaded: u64 = self.peers.iter().map(|p| p.uploaded_bytes).sum();
        let downloaded: u64 = self.peers.iter().map(|p| p.downloaded_bytes).sum();
        if uploaded != downloaded {
            return Err(format!(
                "byte conservation broken: {uploaded} uploaded vs {downloaded} downloaded"
            ));
        }
        for peer in &self.peers {
            if peer.junk_bytes + peer.ciphertext_bytes > peer.downloaded_bytes {
                return Err(format!(
                    "peer {:?}: junk {} + ciphertext {} exceed downloads {}",
                    peer.id, peer.junk_bytes, peer.ciphertext_bytes, peer.downloaded_bytes
                ));
            }
        }
        Ok(())
    }

    /// Every live cache entry — rings and both dependency sets — equals a
    /// fresh traced search against the current graph and claims oracle.
    fn audit_ring_cache(&self) -> Result<(), String> {
        if self.ring_cache.is_empty() {
            return Ok(());
        }
        let Some(policy) = self.config.discipline.search_policy() else {
            return Err("cache holds entries although the discipline never searches".into());
        };
        let search = RingSearch::new(policy)
            .with_expansion_budget(self.config.ring_search_budget)
            .with_fanout(self.config.ring_search_fanout);
        for entry in self.ring_cache.iter_entries() {
            let fresh = search.find_traced(&self.graph, entry.root, entry.wants, |peer, object| {
                self.claims(*peer, *object)
            });
            if fresh.rings != entry.rings {
                return Err(format!(
                    "stale cached rings at {:?} (wants {:?}): cached {} vs fresh {}",
                    entry.root,
                    entry.wants,
                    entry.rings.len(),
                    fresh.rings.len()
                ));
            }
            if fresh.deps != entry.deps || fresh.edge_deps != entry.edge_deps {
                return Err(format!(
                    "stale cached dependency sets at {:?} (wants {:?})",
                    entry.root, entry.wants
                ));
            }
        }
        Ok(())
    }
}

/// Checks a finished run's report-level accounting identities: per-behavior
/// totals sum to the global totals, and every session end was counted.
///
/// # Errors
///
/// Returns a description of the first violated identity.
pub fn check_report(report: &SimReport) -> Result<(), String> {
    let behaviors = report.behavior_breakdown();
    let peers: usize = behaviors.values().map(|s| s.peers).sum();
    if peers != report.peers() {
        return Err(format!(
            "behavior peer counts sum to {peers}, report has {}",
            report.peers()
        ));
    }
    let uploaded: u64 = behaviors.values().map(|s| s.uploaded_bytes).sum();
    let downloaded: u64 = behaviors.values().map(|s| s.downloaded_bytes).sum();
    if uploaded != downloaded {
        return Err(format!(
            "behavior byte totals broken: {uploaded} uploaded vs {downloaded} downloaded"
        ));
    }
    let completions: u64 = behaviors.values().map(|s| s.completed_downloads).sum();
    if completions != report.completed_downloads() {
        return Err(format!(
            "behavior completions sum to {completions}, report has {}",
            report.completed_downloads()
        ));
    }
    let ends: u64 = report.session_end_counts().values().sum();
    if ends != report.total_sessions() {
        return Err(format!(
            "{ends} session ends recorded for {} sessions",
            report.total_sessions()
        ));
    }
    Ok(())
}
