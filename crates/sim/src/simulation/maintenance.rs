//! Lazy storage-maintenance timing wheel.
//!
//! The pre-PR-5 engine scheduled one `StorageMaintenance` event per peer per
//! interval — O(n) standing events and O(n) upfront pushes, almost all of
//! which found the peer within capacity and did nothing (an under-capacity
//! pass mutates no state and draws no randomness).  The wheel replaces that
//! with *materialisation on demand*: a maintenance event exists only for
//! peers that are actually over capacity (storage only grows past capacity
//! through a completed download, and only shrinks through maintenance
//! itself), scheduled for exactly the timestamp the per-peer-event baseline
//! would have evicted at.
//!
//! The baseline's timestamps for peer `i` are the accumulated-microsecond
//! series
//!
//! ```text
//! t_0 = from_secs_f64(interval + i · stagger)
//! t_{k+1} = t_k + from_secs_f64(interval)
//! ```
//!
//! and an insert at time `t` is evicted at the first boundary *strictly*
//! after `t` (a boundary event scheduled an interval earlier sorts before
//! any same-timestamp insert in the FIFO event queue).  [`MaintenanceSchedule::next_due`]
//! reproduces that series exactly, rounding included, with integer
//! arithmetic — the property test below checks it against a literally
//! replayed baseline schedule.

// The event loop's panic policy (exchange-lint rule H001): no `.unwrap()` —
// every panicking access carries an `.expect()` stating the invariant that
// makes it unreachable.  Clippy enforces the same contract at module level.
#![deny(clippy::unwrap_used, clippy::get_unwrap)]

use des::{SimDuration, SimTime};

/// Offset between consecutive peers' maintenance phases, in seconds (the
/// historical stagger that keeps peers from evicting in lock-step).
pub(crate) const MAINTENANCE_STAGGER_S: f64 = 0.5;

/// Deterministic per-peer maintenance boundaries (see the module docs).
#[derive(Debug, Clone, Copy)]
pub(crate) struct MaintenanceSchedule {
    interval_s: f64,
    /// `from_secs_f64(interval)` in microseconds — the exact step the
    /// baseline's `schedule_in` accumulated.
    step_micros: u64,
}

impl MaintenanceSchedule {
    pub(crate) fn new(interval_s: f64) -> Self {
        MaintenanceSchedule {
            interval_s,
            step_micros: SimDuration::from_secs_f64(interval_s).as_micros().max(1),
        }
    }

    /// The first maintenance boundary of peer `index` strictly after `now` —
    /// the timestamp at which the per-peer-event baseline would next run (and
    /// therefore evict), bit-exact including float→micros rounding.
    pub(crate) fn next_due(&self, index: usize, now: SimTime) -> SimTime {
        let base = SimTime::from_secs_f64(self.interval_s + index as f64 * MAINTENANCE_STAGGER_S);
        if now < base {
            return base;
        }
        let elapsed = now.as_micros() - base.as_micros();
        let k = elapsed / self.step_micros + 1;
        SimTime::from_micros(base.as_micros() + k * self.step_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The baseline: peer `index`'s k-th boundary, built exactly the way the
    /// per-peer-event engine built it — an initial `schedule_at` followed by
    /// repeated relative `schedule_in(interval)` accumulation in SimTime
    /// microseconds.
    fn baseline_boundaries(interval_s: f64, index: usize, horizon: SimTime) -> Vec<SimTime> {
        let mut t = SimTime::from_secs_f64(interval_s + index as f64 * MAINTENANCE_STAGGER_S);
        let step = SimDuration::from_secs_f64(interval_s);
        let mut out = Vec::new();
        while t <= horizon {
            out.push(t);
            t += step;
        }
        out
    }

    /// The baseline's eviction time for an object inserted at `at`: the first
    /// boundary strictly after the insert (a boundary event was scheduled an
    /// interval earlier, so it sorts before a same-timestamp insert and the
    /// eviction slips to the next pass).
    fn baseline_eviction(interval_s: f64, index: usize, at: SimTime) -> Option<SimTime> {
        let first = SimTime::from_secs_f64(interval_s + index as f64 * MAINTENANCE_STAGGER_S);
        let step = SimDuration::from_secs_f64(interval_s).as_micros().max(1);
        // Cover the insert time plus two full steps past whichever is later.
        let horizon = SimTime::from_micros(at.as_micros().max(first.as_micros()) + 2 * step);
        baseline_boundaries(interval_s, index, horizon)
            .into_iter()
            .find(|t| *t > at)
    }

    #[test]
    fn first_boundary_is_the_staggered_interval() {
        let wheel = MaintenanceSchedule::new(600.0);
        assert_eq!(
            wheel.next_due(0, SimTime::ZERO),
            SimTime::from_secs_f64(600.0)
        );
        assert_eq!(
            wheel.next_due(3, SimTime::ZERO),
            SimTime::from_secs_f64(601.5)
        );
    }

    #[test]
    fn a_boundary_hit_exactly_defers_to_the_next_interval() {
        let wheel = MaintenanceSchedule::new(600.0);
        let t1 = SimTime::from_secs_f64(600.0);
        assert_eq!(wheel.next_due(0, t1), SimTime::from_secs_f64(1200.0));
    }

    proptest! {
        /// On randomized capacity traces (an over-capacity insert at a random
        /// time, for a random peer and interval), the wheel fires at exactly
        /// the simulated timestamp the per-peer-event baseline would have.
        #[test]
        fn wheel_matches_the_per_peer_event_baseline(
            interval_decis in 1u32..20_000,          // 0.1 s .. 2000 s
            index in 0usize..5_000,
            insert_micros in 0u64..4_000_000_000,    // 0 .. 4000 s
        ) {
            let interval_s = f64::from(interval_decis) / 10.0;
            let wheel = MaintenanceSchedule::new(interval_s);
            let at = SimTime::from_micros(insert_micros);
            let expected = baseline_eviction(interval_s, index, at)
                .expect("horizon covers at least one boundary");
            prop_assert_eq!(wheel.next_due(index, at), expected);
        }

        /// Consecutive boundaries reported by the wheel are the baseline's
        /// accumulated series itself.
        #[test]
        fn successive_due_times_walk_the_baseline_series(
            interval_decis in 1u32..5_000,
            index in 0usize..200,
        ) {
            let interval_s = f64::from(interval_decis) / 10.0;
            let wheel = MaintenanceSchedule::new(interval_s);
            let horizon = SimTime::from_secs_f64(interval_s * 8.0 + 200.0);
            let baseline = baseline_boundaries(interval_s, index, horizon);
            let mut now = SimTime::ZERO;
            for expected in baseline {
                let due = wheel.next_due(index, now);
                prop_assert_eq!(due, expected);
                now = due;
            }
        }
    }
}
