//! Event vocabulary, peer arrivals, request generation and storage
//! maintenance.
//!
//! The event load is *demand-driven* at 10⁵ peers:
//!
//! * arrivals are a chain — each [`Event::Arrive`] schedules the next peer's
//!   arrival, so the queue holds O(1) arrival entries instead of the old
//!   O(n) upfront stagger;
//! * request-generation retries only stay armed while the peer has spare
//!   request budget (a completed download re-arms generation directly), and
//!   a per-peer pending flag keeps retry cycles from multiplying;
//! * storage maintenance materialises lazily through the
//!   [`super::maintenance::MaintenanceSchedule`] timing wheel: an event
//!   exists only for peers actually over capacity, scheduled for exactly the
//!   boundary the per-peer-event baseline would have evicted at.

// The event loop's panic policy (exchange-lint rule H001): no `.unwrap()` —
// every panicking access carries an `.expect()` stating the invariant that
// makes it unreachable.  Clippy enforces the same contract at module level.
#![deny(clippy::unwrap_used, clippy::get_unwrap)]

use des::SimDuration;
use workload::{ObjectId, PeerId};

use crate::WantState;

use super::Simulation;

/// Seconds between consecutive peers' arrivals (the historical stagger that
/// keeps peers from acting in lock-step at t = 0).
pub(super) const ARRIVAL_STAGGER_S: f64 = 0.25;

/// Everything that can happen in the discrete-event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// A peer joins: its first request generation, chaining the next peer's
    /// arrival (on-demand staggering instead of O(n) upfront events).
    Arrive(PeerId),
    /// Top up a peer's outstanding requests.
    GenerateRequests(PeerId),
    /// Let a provider (re)fill its upload slots.
    TrySchedule(PeerId),
    /// One block of a transfer finished.
    BlockComplete(super::TransferId),
    /// Periodic storage-capacity enforcement at a peer.
    StorageMaintenance(PeerId),
    /// A churning peer's session ends: it leaves, tearing down everything it
    /// was part of (see [`super::population`]).
    Depart(PeerId),
    /// A departed peer's downtime ends: it comes back with its stored objects.
    Rejoin(PeerId),
    /// The scripted removal of the top-k providers
    /// ([`crate::CatastropheConfig`]).
    Catastrophe,
    /// A new object enters the catalog with a burst of requesters
    /// ([`crate::FlashCrowdConfig`]).
    FlashCrowd,
}

impl Simulation {
    // ---- arrivals -----------------------------------------------------------

    /// Peer `peer` arrives: schedule the next arrival of the chain, then act
    /// like its first `GenerateRequests` event.
    pub(super) fn handle_arrive(&mut self, peer: PeerId) {
        let next = peer.as_usize() + 1;
        if next < self.peers.len() {
            self.engine.schedule_at(
                des::SimTime::from_secs_f64(next as f64 * ARRIVAL_STAGGER_S),
                Event::Arrive(PeerId::new(next as u32)),
            );
        }
        // Under churn the arrival opens the peer's first session: draw its
        // length now and put the departure on the timeline.
        self.schedule_departure(peer);
        self.handle_generate_requests(peer);
    }

    // ---- request generation -------------------------------------------------

    pub(super) fn handle_generate_requests(&mut self, peer: PeerId) {
        // Arrivals call in directly without a queued event; saturate.
        let queued = &mut self.generate_queued[peer.as_usize()];
        *queued = queued.saturating_sub(1);
        // A departed peer generates nothing; its rejoin re-arms the chain.
        if !self.peer(peer).online {
            return;
        }
        let max_pending = self.config.max_pending_objects;
        let mut attempts = 0usize;
        let attempt_budget = max_pending * 4;
        while self.peer(peer).can_issue_request(max_pending) && attempts < attempt_budget {
            attempts += 1;
            let candidate = self.next_request_for(peer);
            let Some(object) = candidate else { break };
            self.issue_request(peer, object);
        }
        // Retry on demand: wants for which no provider was found, or spare
        // budget freed by abandoned lookups, get another chance — but a peer
        // whose budget is full has nothing to retry, and a completed
        // download re-arms generation immediately, so the retry cycle is
        // only kept alive while it can do work.  This is what keeps the
        // standing event count demand-driven instead of O(peers).
        if self.peer(peer).can_issue_request(max_pending) {
            self.schedule_generate_requests(
                peer,
                SimDuration::from_secs_f64(self.config.request_retry_interval_s),
            );
        }
    }

    /// Schedules a `GenerateRequests` event for `peer` after `delay`, unless
    /// one is already queued — the counter keeps the per-peer retry chain
    /// singular even when a completion's immediate regeneration overlaps a
    /// pending retry (the immediate pass then declines to re-arm, and the
    /// surviving retry event owns the chain).  Dedup is an event-count
    /// optimisation, not a correctness invariant: a redundant generation
    /// pass is a no-op (budget full → no RNG draws, no mutations).
    pub(super) fn schedule_generate_requests(&mut self, peer: PeerId, delay: SimDuration) {
        if self.generate_queued[peer.as_usize()] > 0 {
            return;
        }
        self.generate_queued[peer.as_usize()] = 1;
        self.engine
            .schedule_in(delay, Event::GenerateRequests(peer));
    }

    /// Draws `peer`'s next request according to the configured
    /// [`crate::SelectionStrategy`].
    ///
    /// `Popularity` is the paper's default two-level draw (category by local
    /// preference, object by within-category power law) — bit-identical to
    /// the pre-strategy code path.  The alternative strategies pick a
    /// category uniformly among the peer's interests and then choose within
    /// it by current holder count (rarest-first / most-common-first, ties to
    /// the lower object id) or uniformly at random.
    fn next_request_for(&mut self, peer: PeerId) -> Option<ObjectId> {
        use crate::SelectionStrategy;
        let strategy = self.config.chunk_selection;
        if strategy == SelectionStrategy::Popularity {
            let state = &self.peers[peer.as_usize()];
            return self.request_gen.next_request(
                &self.catalog,
                &state.interests,
                &mut self.rng_requests,
                |o| state.has_or_wants(o),
            );
        }
        let state = &self.peers[peer.as_usize()];
        let categories = state.interests.categories();
        // Bounded retry across category draws, mirroring the popularity
        // path's attempt budget.
        for _ in 0..16 {
            let category = *self.rng_requests.choose(categories)?;
            let candidates: Vec<ObjectId> = self
                .catalog
                .objects_in_category(category)
                .iter()
                .copied()
                .filter(|o| !state.has_or_wants(*o))
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let holders = &self.holders;
            let pick = match strategy {
                SelectionStrategy::Uniform => self
                    .rng_requests
                    .choose(&candidates)
                    .copied()
                    .expect("candidates is non-empty"),
                SelectionStrategy::RarestFirst => candidates
                    .iter()
                    .copied()
                    .min_by_key(|o| (holders[o.as_usize()].len(), *o))
                    .expect("candidates is non-empty"),
                SelectionStrategy::MostCommonFirst => candidates
                    .iter()
                    .copied()
                    .max_by_key(|o| (holders[o.as_usize()].len(), std::cmp::Reverse(*o)))
                    .expect("candidates is non-empty"),
                SelectionStrategy::Popularity => return None, // handled above
            };
            return Some(pick);
        }
        None
    }

    /// Looks up providers for `object` and registers requests with them.
    ///
    /// The lookup sees *advertised* holdings: every sharing peer that stores
    /// the object (honest or junk-serving — a requester cannot tell), plus
    /// any middleman that advertises it without storing it.  Middlemen only
    /// advertise objects some honest holder could source, so relayed content
    /// never materialises out of thin air.
    pub(super) fn issue_request(&mut self, requester: PeerId, object: ObjectId) {
        // The lookup index keeps the sharing holders of every object in
        // peer-id order (exactly the order the old full-population scan
        // produced), plus the honest-holder count middleman advertisements
        // hinge on — each request costs O(holders), not O(peers).
        let mut all_providers: Vec<PeerId> = self.holders[object.as_usize()]
            .iter()
            .copied()
            .filter(|p| *p != requester)
            .collect();
        // A requester never looks up an object it already stores, so the
        // honest-holder count needs no self-exclusion.
        let honest_source = self.honest_holders[object.as_usize()] > 0;
        if honest_source {
            let peers = &self.peers;
            // The advertiser list is static (behaviors are fixed per run);
            // departed middlemen drop out of lookups here.
            all_providers.extend(self.advertisers.iter().copied().filter(|p| {
                let state = &peers[p.as_usize()];
                *p != requester && state.online && !state.storage.contains(object)
            }));
        }
        if all_providers.is_empty() {
            return; // nothing to request from right now
        }
        let chosen: Vec<PeerId> = self
            .rng_lookup
            .sample(&all_providers, self.config.lookup_max_providers)
            .into_iter()
            .copied()
            .collect();

        let now = self.now();
        let mut registered = Vec::new();
        for provider in chosen {
            if self.graph.incoming_len(provider) >= self.config.irq_capacity {
                continue;
            }
            if self.graph.add_request(requester, provider, object) {
                self.scheduler.on_request(requester, provider);
                registered.push(provider);
            }
        }
        if registered.is_empty() {
            return;
        }
        // Queueing up is when a peer (re-)announces its participation level;
        // behaviors may inflate it (the KaZaA cheat of Section III-B).  Only
        // the participation-level scheduler listens.
        let honest_level = self.peer(requester).uploaded_bytes as f64 / (1024.0 * 1024.0);
        let announced = self
            .behavior(requester)
            .reported_participation(honest_level);
        self.scheduler.on_participation_report(requester, announced);
        self.peer_mut(requester)
            .wants
            .insert(object, WantState::new(now, registered.clone()));
        for provider in registered {
            self.engine.schedule_now(Event::TrySchedule(provider));
        }
        // The requester's own exchange opportunities changed too: it now has
        // one more want that a peer in its request tree might satisfy.
        if self.peer(requester).sharing {
            self.engine.schedule_now(Event::TrySchedule(requester));
        }
    }

    // ---- storage maintenance ------------------------------------------------

    /// Arms a maintenance event for `peer` at its next wheel boundary if the
    /// peer is over capacity and none is pending.  Call after anything that
    /// grows storage (a completed download) — the only way past capacity.
    pub(super) fn schedule_maintenance_if_over_capacity(&mut self, peer: PeerId) {
        // Offline stores are frozen: nothing is served from them, so nothing
        // needs evicting until the peer rejoins (which re-arms the wheel).
        if !self.peers[peer.as_usize()].online {
            return;
        }
        if !self.peers[peer.as_usize()].storage.over_capacity() {
            return;
        }
        if std::mem::replace(&mut self.maintenance_pending[peer.as_usize()], true) {
            return;
        }
        let due = self.maintenance.next_due(peer.as_usize(), self.now());
        self.engine
            .schedule_at(due, Event::StorageMaintenance(peer));
    }

    pub(super) fn handle_storage_maintenance(&mut self, peer: PeerId) {
        self.maintenance_pending[peer.as_usize()] = false;
        // The peer departed after this pass was armed; rejoin re-arms it.
        if !self.peer(peer).online {
            return;
        }
        // Objects currently being uploaded by this peer are pinned, as the
        // paper postpones removal of objects used in an ongoing exchange.
        let pinned: Vec<ObjectId> = self
            .uploads_by_peer
            .get(&peer)
            .into_iter()
            .flatten()
            .filter_map(|tid| self.transfers.get(tid).map(|t| t.object))
            .collect();
        let evicted = {
            let state = &mut self.peers[peer.as_usize()];
            state
                .storage
                .evict_over_capacity(&mut self.rng_storage, |o| pinned.contains(&o))
        };
        if !evicted.is_empty() {
            self.world_epoch += 1;
        }
        // Requests directed at this peer for evicted objects can no longer be
        // served here; withdraw them so the request graph stays truthful, and
        // drop cached ring candidates that relied on the peer holding exactly
        // these objects (entries that never probed them survive).
        for object in &evicted {
            self.index_holding_lost(peer, *object);
            self.ring_cache.invalidate_holding(peer, *object);
        }
        for object in evicted {
            let stale: Vec<PeerId> = self
                .graph
                .incoming(peer)
                .filter(|r| r.object == object)
                .map(|r| r.requester)
                .collect();
            for requester in stale {
                self.graph.remove_request(requester, peer, object);
            }
            self.withdraw_unsourceable_middleman_claims(object);
        }
        // Pinned uploads may have blocked eviction entirely; stay armed until
        // the store is actually back within capacity.  Otherwise the event
        // dematerialises — the next completed download re-arms the wheel.
        self.schedule_maintenance_if_over_capacity(peer);
    }

    /// `object` just lost a holder.  A middleman's advertisement is only as
    /// good as its source: if no honest holder remains anywhere, withdraw
    /// every request edge that backs a middleman's claim on the object, so
    /// relayed content never materialises out of thin air.  The withdrawals
    /// go through the graph's dirty set, which keeps the ring-candidate
    /// cache exact.
    pub(super) fn withdraw_unsourceable_middleman_claims(&mut self, object: ObjectId) {
        if self.honest_holders[object.as_usize()] > 0 {
            return;
        }
        let advertisers: Vec<PeerId> = self
            .advertisers
            .iter()
            .copied()
            .filter(|p| !self.peer(*p).storage.contains(object))
            .collect();
        for middleman in advertisers {
            let stale: Vec<PeerId> = self
                .graph
                .incoming(middleman)
                .filter(|r| r.object == object)
                .map(|r| r.requester)
                .collect();
            for requester in stale {
                self.graph.remove_request(requester, middleman, object);
            }
        }
    }
}
