//! Event vocabulary, request generation and storage maintenance.

use des::SimDuration;
use workload::{ObjectId, PeerId};

use crate::WantState;

use super::Simulation;

/// Everything that can happen in the discrete-event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// Top up a peer's outstanding requests.
    GenerateRequests(PeerId),
    /// Let a provider (re)fill its upload slots.
    TrySchedule(PeerId),
    /// One block of a transfer finished.
    BlockComplete(super::TransferId),
    /// Periodic storage-capacity enforcement at a peer.
    StorageMaintenance(PeerId),
}

impl Simulation {
    // ---- request generation -------------------------------------------------

    pub(super) fn handle_generate_requests(&mut self, peer: PeerId) {
        let max_pending = self.config.max_pending_objects;
        let mut attempts = 0usize;
        let attempt_budget = max_pending * 4;
        while self.peer(peer).can_issue_request(max_pending) && attempts < attempt_budget {
            attempts += 1;
            let candidate = {
                let state = &self.peers[peer.as_usize()];
                self.request_gen.next_request(
                    &self.catalog,
                    &state.interests,
                    &mut self.rng_requests,
                    |o| state.has_or_wants(o),
                )
            };
            let Some(object) = candidate else { break };
            self.issue_request(peer, object);
        }
        // Periodically retry: wants for which no provider was found, or spare
        // request budget freed by abandoned lookups, get another chance.
        self.engine.schedule_in(
            SimDuration::from_secs_f64(self.config.request_retry_interval_s),
            Event::GenerateRequests(peer),
        );
    }

    /// Looks up providers for `object` and registers requests with them.
    ///
    /// The lookup sees *advertised* holdings: every sharing peer that stores
    /// the object (honest or junk-serving — a requester cannot tell), plus
    /// any middleman that advertises it without storing it.  Middlemen only
    /// advertise objects some honest holder could source, so relayed content
    /// never materialises out of thin air.
    fn issue_request(&mut self, requester: PeerId, object: ObjectId) {
        // The lookup index keeps the sharing holders of every object in
        // peer-id order (exactly the order the old full-population scan
        // produced), plus the honest-holder count middleman advertisements
        // hinge on — each request costs O(holders), not O(peers).
        let mut all_providers: Vec<PeerId> = self.holders[object.as_usize()]
            .iter()
            .copied()
            .filter(|p| *p != requester)
            .collect();
        // A requester never looks up an object it already stores, so the
        // honest-holder count needs no self-exclusion.
        let honest_source = self.honest_holders[object.as_usize()] > 0;
        if honest_source {
            let peers = &self.peers;
            all_providers.extend(
                self.advertisers
                    .iter()
                    .copied()
                    .filter(|p| *p != requester && !peers[p.as_usize()].storage.contains(object)),
            );
        }
        if all_providers.is_empty() {
            return; // nothing to request from right now
        }
        let chosen: Vec<PeerId> = self
            .rng_lookup
            .sample(&all_providers, self.config.lookup_max_providers)
            .into_iter()
            .copied()
            .collect();

        let now = self.now();
        let mut registered = Vec::new();
        for provider in chosen {
            if self.graph.incoming_len(provider) >= self.config.irq_capacity {
                continue;
            }
            if self.graph.add_request(requester, provider, object) {
                self.scheduler.on_request(requester, provider);
                registered.push(provider);
            }
        }
        if registered.is_empty() {
            return;
        }
        // Queueing up is when a peer (re-)announces its participation level;
        // behaviors may inflate it (the KaZaA cheat of Section III-B).  Only
        // the participation-level scheduler listens.
        let honest_level = self.peer(requester).uploaded_bytes as f64 / (1024.0 * 1024.0);
        let announced = self
            .behavior(requester)
            .reported_participation(honest_level);
        self.scheduler.on_participation_report(requester, announced);
        self.peer_mut(requester)
            .wants
            .insert(object, WantState::new(now, registered.clone()));
        for provider in registered {
            self.engine.schedule_now(Event::TrySchedule(provider));
        }
        // The requester's own exchange opportunities changed too: it now has
        // one more want that a peer in its request tree might satisfy.
        if self.peer(requester).sharing {
            self.engine.schedule_now(Event::TrySchedule(requester));
        }
    }

    // ---- storage maintenance ------------------------------------------------

    pub(super) fn handle_storage_maintenance(&mut self, peer: PeerId) {
        // Objects currently being uploaded by this peer are pinned, as the
        // paper postpones removal of objects used in an ongoing exchange.
        let pinned: Vec<ObjectId> = self
            .uploads_by_peer
            .get(&peer)
            .into_iter()
            .flatten()
            .filter_map(|tid| self.transfers.get(tid).map(|t| t.object))
            .collect();
        let evicted = {
            let state = &mut self.peers[peer.as_usize()];
            state
                .storage
                .evict_over_capacity(&mut self.rng_storage, |o| pinned.contains(&o))
        };
        // Requests directed at this peer for evicted objects can no longer be
        // served here; withdraw them so the request graph stays truthful, and
        // drop cached ring candidates that relied on the peer holding exactly
        // these objects (entries that never probed them survive).
        for object in &evicted {
            self.index_holding_lost(peer, *object);
            self.ring_cache.invalidate_holding(peer, *object);
        }
        for object in evicted {
            let stale: Vec<PeerId> = self
                .graph
                .incoming(peer)
                .filter(|r| r.object == object)
                .map(|r| r.requester)
                .collect();
            for requester in stale {
                self.graph.remove_request(requester, peer, object);
            }
            self.withdraw_unsourceable_middleman_claims(object);
        }
        self.engine.schedule_in(
            SimDuration::from_secs_f64(self.config.storage_maintenance_interval_s),
            Event::StorageMaintenance(peer),
        );
    }

    /// `object` just lost a holder.  A middleman's advertisement is only as
    /// good as its source: if no honest holder remains anywhere, withdraw
    /// every request edge that backs a middleman's claim on the object, so
    /// relayed content never materialises out of thin air.  The withdrawals
    /// go through the graph's dirty set, which keeps the ring-candidate
    /// cache exact.
    fn withdraw_unsourceable_middleman_claims(&mut self, object: ObjectId) {
        if self.honest_holders[object.as_usize()] > 0 {
            return;
        }
        let advertisers: Vec<PeerId> = self
            .advertisers
            .iter()
            .copied()
            .filter(|p| !self.peer(*p).storage.contains(object))
            .collect();
        for middleman in advertisers {
            let stale: Vec<PeerId> = self
                .graph
                .incoming(middleman)
                .filter(|r| r.object == object)
                .map(|r| r.requester)
                .collect();
            for requester in stale {
                self.graph.remove_request(requester, middleman, object);
            }
        }
    }
}
