//! The block-by-block transfer lifecycle and its bookkeeping.

use netsim::TransferSession;
use workload::{ObjectId, PeerId};

use crate::{SessionEnd, SessionKind};

use super::events::Event;
use super::{RingId, Simulation, TransferId};

/// One in-flight transfer session.
#[derive(Debug, Clone)]
pub(crate) struct ActiveTransfer {
    pub(crate) uploader: PeerId,
    pub(crate) downloader: PeerId,
    pub(crate) object: ObjectId,
    pub(crate) kind: SessionKind,
    pub(crate) ring: Option<RingId>,
    pub(crate) session: TransferSession,
}

/// The transfer sessions forming one activated exchange ring.
#[derive(Debug, Clone)]
pub(crate) struct ActiveRing {
    pub(crate) transfers: Vec<TransferId>,
}

impl Simulation {
    /// Starts a transfer session, reserving one slot at each end.
    /// Returns `None` if either side has no capacity.
    pub(super) fn start_transfer(
        &mut self,
        uploader: PeerId,
        downloader: PeerId,
        object: ObjectId,
        kind: SessionKind,
        ring: Option<RingId>,
    ) -> Option<TransferId> {
        if !self.peer(uploader).upload_slots.has_free()
            || !self.peer(downloader).download_slots.has_free()
        {
            return None;
        }
        let now = self.now();
        let waiting_secs = {
            let want = self.peer(downloader).wants.get(&object)?;
            now.saturating_since(want.issued_at).as_secs_f64()
        };
        self.peer_mut(uploader)
            .upload_slots
            .reserve()
            .expect("checked free upload slot");
        self.peer_mut(downloader)
            .download_slots
            .reserve()
            .expect("checked free download slot");

        let rate = self.config.link.slot_bytes_per_sec();
        let session = TransferSession::new(rate, self.config.block_bytes, now);
        let tid = self.next_transfer_id;
        self.next_transfer_id += 1;
        self.transfer_epoch += 1;
        self.transfers.insert(
            tid,
            ActiveTransfer {
                uploader,
                downloader,
                object,
                kind,
                ring,
                session,
            },
        );
        self.uploads_by_peer.entry(uploader).or_default().push(tid);
        self.downloads_by_want
            .entry((downloader, object))
            .or_default()
            .push(tid);
        if let Some(want) = self.peer_mut(downloader).wants.get_mut(&object) {
            want.active_sessions += 1;
        }
        if self.measuring() {
            self.report.record_waiting(kind, waiting_secs);
        }

        let remaining = self.remaining_bytes(downloader, object);
        let block = session.next_block_bytes(remaining);
        self.engine
            .schedule_in(session.block_duration(block), Event::BlockComplete(tid));
        Some(tid)
    }

    pub(super) fn remaining_bytes(&self, downloader: PeerId, object: ObjectId) -> u64 {
        let size = self.catalog.size_bytes(object);
        let received = self
            .peer(downloader)
            .wants
            .get(&object)
            .map_or(0, |w| w.received_bytes);
        size.saturating_sub(received).max(1)
    }

    pub(super) fn handle_block_complete(&mut self, tid: TransferId) {
        let Some(transfer) = self.transfers.get(&tid).cloned() else {
            return; // the session ended before this block event fired
        };
        let size = self.catalog.size_bytes(transfer.object);
        let remaining_before = self.remaining_bytes(transfer.downloader, transfer.object);
        let block = transfer
            .session
            .next_block_bytes(remaining_before)
            .min(remaining_before);

        // Account the block.
        if let Some(t) = self.transfers.get_mut(&tid) {
            t.session.record_block(block);
        }
        self.peer_mut(transfer.downloader).downloaded_bytes += block;
        self.peer_mut(transfer.uploader).uploaded_bytes += block;
        self.scheduler
            .on_transfer_complete(transfer.uploader, transfer.downloader, block);
        let complete = {
            let want = self
                .peer_mut(transfer.downloader)
                .wants
                .get_mut(&transfer.object);
            match want {
                Some(w) => {
                    w.received_bytes = (w.received_bytes + block).min(size);
                    w.received_bytes >= size
                }
                None => false,
            }
        };

        if complete {
            self.complete_download(transfer.downloader, transfer.object);
            return;
        }
        // The uploader may have evicted the object mid-transfer despite
        // pinning (defensive; should not happen with pinning enabled).
        if !self
            .peer(transfer.uploader)
            .storage
            .contains(transfer.object)
        {
            self.end_transfer(tid, SessionEnd::SourceLostObject);
            return;
        }
        let remaining = self.remaining_bytes(transfer.downloader, transfer.object);
        let next_block = transfer.session.next_block_bytes(remaining);
        self.engine.schedule_in(
            transfer.session.block_duration(next_block),
            Event::BlockComplete(tid),
        );
    }

    /// Handles the completion of a whole object at `downloader`.
    fn complete_download(&mut self, downloader: PeerId, object: ObjectId) {
        let now = self.now();
        let Some(want) = self.peer_mut(downloader).wants.remove(&object) else {
            return;
        };
        let minutes = now.saturating_since(want.issued_at).as_minutes_f64();
        let class = self.peer(downloader).class();
        if self.measuring() {
            self.report.record_download(class, minutes);
        }

        // Withdraw every outstanding request for this object.
        self.graph.remove_object_requests(downloader, object);
        // The object enters the downloader's store (it may be evicted later by
        // the periodic maintenance pass).  The downloader can now close rings
        // it could not before, so any cached search that probed it is stale.
        self.peer_mut(downloader).storage.insert(object);
        self.ring_cache.invalidate_peer(downloader);

        // Terminate every session that was delivering this object.
        let sessions: Vec<TransferId> = self
            .downloads_by_want
            .get(&(downloader, object))
            .cloned()
            .unwrap_or_default();
        for tid in sessions {
            self.end_transfer(tid, SessionEnd::DownloadComplete);
        }
        self.downloads_by_want.remove(&(downloader, object));

        // Free request budget: ask for something new right away.
        self.engine
            .schedule_now(Event::GenerateRequests(downloader));
    }

    /// Tears down one transfer session and releases its resources.
    pub(super) fn end_transfer(&mut self, tid: TransferId, reason: SessionEnd) {
        let Some(transfer) = self.transfers.remove(&tid) else {
            return;
        };
        self.transfer_epoch += 1;
        self.peer_mut(transfer.uploader).upload_slots.release();
        self.peer_mut(transfer.downloader).download_slots.release();
        if let Some(want) = self
            .peer_mut(transfer.downloader)
            .wants
            .get_mut(&transfer.object)
        {
            want.active_sessions = want.active_sessions.saturating_sub(1);
        }
        if let Some(tids) = self.uploads_by_peer.get_mut(&transfer.uploader) {
            tids.retain(|t| *t != tid);
        }
        if let Some(tids) = self
            .downloads_by_want
            .get_mut(&(transfer.downloader, transfer.object))
        {
            tids.retain(|t| *t != tid);
        }
        // Sessions that never moved a byte (typically preempted before their
        // first block completed) are not counted as sessions in the report;
        // they would otherwise swamp the per-session distributions.
        if self.measuring() && transfer.session.bytes_transferred() > 0 {
            self.report
                .record_session(transfer.kind, transfer.session.bytes_transferred());
        }

        // An exchange ring dissolves as soon as any of its sessions ends.
        if let Some(ring_id) = transfer.ring {
            if reason != SessionEnd::RingDissolved {
                self.dissolve_ring(ring_id);
            }
        }
        // The freed upload slot can immediately be refilled.
        if reason != SessionEnd::HorizonReached {
            self.engine
                .schedule_now(Event::TrySchedule(transfer.uploader));
        }
    }

    fn dissolve_ring(&mut self, ring_id: RingId) {
        let Some(ring) = self.rings.remove(&ring_id) else {
            return;
        };
        for tid in ring.transfers {
            self.end_transfer(tid, SessionEnd::RingDissolved);
        }
    }
}
