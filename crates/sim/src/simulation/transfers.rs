//! The block-by-block transfer lifecycle and its bookkeeping, including the
//! Section III-B cheating paths: junk blocks, relayed (middleman) content,
//! and the windowed-validation / mediator countermeasures.

// The event loop's panic policy (exchange-lint rule H001): no `.unwrap()` —
// every panicking access carries an `.expect()` stating the invariant that
// makes it unreachable.  Clippy enforces the same contract at module level.
#![deny(clippy::unwrap_used, clippy::get_unwrap)]

use des::SimDuration;
use exchange::cheat::WindowedExchange;
use netsim::TransferSession;
use workload::{ObjectId, PeerId};

use crate::{BehaviorKind, Protection, SessionEnd, SessionKind};

use super::events::Event;
use super::{RingId, Simulation, TransferId};

/// One in-flight transfer session.
#[derive(Debug, Clone)]
pub(crate) struct ActiveTransfer {
    pub(crate) uploader: PeerId,
    pub(crate) downloader: PeerId,
    pub(crate) object: ObjectId,
    pub(crate) kind: SessionKind,
    pub(crate) ring: Option<RingId>,
    pub(crate) session: TransferSession,
    /// Synchronous block-validation state, present on exchange sessions when
    /// [`Protection::Windowed`] is active.  The window caps the achievable
    /// rate at `window × block / rtt` and grows as blocks validate.
    pub(crate) validation: Option<WindowedExchange>,
}

/// The transfer sessions forming one activated exchange ring.
#[derive(Debug, Clone)]
pub(crate) struct ActiveRing {
    pub(crate) transfers: Vec<TransferId>,
}

impl Simulation {
    /// Starts a transfer session, reserving one slot at each end.
    /// Returns `None` if either side has no capacity.
    pub(super) fn start_transfer(
        &mut self,
        uploader: PeerId,
        downloader: PeerId,
        object: ObjectId,
        kind: SessionKind,
        ring: Option<RingId>,
    ) -> Option<TransferId> {
        if !self.peer(uploader).upload_slots.has_free()
            || !self.peer(downloader).download_slots.has_free()
        {
            return None;
        }
        let now = self.now();
        let waiting_secs = {
            let want = self.peer(downloader).wants.get(&object)?;
            now.saturating_since(want.issued_at).as_secs_f64()
        };
        self.peer_mut(uploader)
            .upload_slots
            .reserve()
            .expect("checked free upload slot");
        self.peer_mut(downloader)
            .download_slots
            .reserve()
            .expect("checked free download slot");

        // The uploader's access-link class scales its per-slot rate (Medium's
        // ×1.0 is IEEE-exact, so homogeneous populations are bit-identical
        // to the pre-class code).
        let rate =
            self.config.link.slot_bytes_per_sec() * self.peer(uploader).capacity.rate_multiplier();
        let session = TransferSession::new(rate, self.config.block_bytes, now);
        let validation = match self.config.protection {
            Protection::Windowed { max_window } if kind.is_exchange() => {
                Some(WindowedExchange::new(self.config.block_bytes, max_window))
            }
            _ => None,
        };
        let tid = self.next_transfer_id;
        self.next_transfer_id += 1;
        self.transfer_epoch += 1;
        self.transfers.insert(
            tid,
            ActiveTransfer {
                uploader,
                downloader,
                object,
                kind,
                ring,
                session,
                validation,
            },
        );
        self.uploads_by_peer.entry(uploader).or_default().push(tid);
        self.downloads_by_want
            .entry((downloader, object))
            .or_default()
            .push(tid);
        if let Some(want) = self.peer_mut(downloader).wants.get_mut(&object) {
            want.active_sessions += 1;
        }
        if self.measuring() {
            self.report.record_waiting(kind, waiting_secs);
        }

        let remaining = if self.behavior(uploader).block_validity() {
            self.remaining_bytes(downloader, object)
        } else {
            // A junk stream paces itself against a full (fake) object copy,
            // independent of how much real data the want already collected.
            self.catalog.size_bytes(object).max(1)
        };
        let block = session.next_block_bytes(remaining);
        let duration = match validation {
            Some(v) => Self::validated_block_duration(&v, block, self.config.rtt_s, rate),
            None => session.block_duration(block),
        };
        self.engine.schedule_in(duration, Event::BlockComplete(tid));
        Some(tid)
    }

    /// How long `bytes` take under windowed validation: the slot rate capped
    /// at `window × block / rtt` (the paper's synchronous-validation cost).
    fn validated_block_duration(
        validation: &WindowedExchange,
        bytes: u64,
        rtt_secs: f64,
        slot_bytes_per_sec: f64,
    ) -> SimDuration {
        let rate = validation.effective_rate(rtt_secs, slot_bytes_per_sec);
        SimDuration::from_secs_f64(bytes as f64 / rate)
    }

    /// The duration of the next `bytes` of `transfer`, honouring any active
    /// validation window.
    fn block_duration_of(&self, transfer: &ActiveTransfer, bytes: u64) -> SimDuration {
        match &transfer.validation {
            Some(v) => Self::validated_block_duration(
                v,
                bytes,
                self.config.rtt_s,
                transfer.session.rate_bytes_per_sec(),
            ),
            None => transfer.session.block_duration(bytes),
        }
    }

    pub(super) fn remaining_bytes(&self, downloader: PeerId, object: ObjectId) -> u64 {
        let size = self.catalog.size_bytes(object);
        let received = self
            .peer(downloader)
            .wants
            .get(&object)
            .map_or(0, |w| w.received_bytes);
        size.saturating_sub(received).max(1)
    }

    pub(super) fn handle_block_complete(&mut self, tid: TransferId) {
        let Some(transfer) = self.transfers.get(&tid).cloned() else {
            return; // the session ended before this block event fired
        };
        let size = self.catalog.size_bytes(transfer.object);
        let junk = !self.behavior(transfer.uploader).block_validity();
        let block = if junk {
            // Junk streams track their own progress towards a fake full copy.
            let streamed = transfer.session.bytes_transferred();
            transfer
                .session
                .next_block_bytes(size.saturating_sub(streamed).max(1))
        } else {
            let remaining = self.remaining_bytes(transfer.downloader, transfer.object);
            transfer.session.next_block_bytes(remaining).min(remaining)
        };

        // Account the block.  Junk and relayed bytes count like any others —
        // that is exactly how the cheats farm credit and priority.
        if let Some(t) = self.transfers.get_mut(&tid) {
            t.session.record_block(block);
        }
        self.peer_mut(transfer.downloader).downloaded_bytes += block;
        self.peer_mut(transfer.uploader).uploaded_bytes += block;
        self.scheduler
            .on_transfer_complete(transfer.uploader, transfer.downloader, block);

        if junk {
            self.handle_junk_block(tid, &transfer, block, size);
            return;
        }

        // Valid data.  Under the mediator a relaying middleman still receives
        // the stream, but the decryption key is only ever released to the
        // peer the true origin named — never the middleman — so everything
        // it downloads stays ciphertext.
        let ciphertext = self.ciphertext_downloader(transfer.downloader);
        if ciphertext {
            self.peer_mut(transfer.downloader).ciphertext_bytes += block;
        }
        if let Some(t) = self.transfers.get_mut(&tid) {
            if let Some(v) = &mut t.validation {
                v.on_round_validated();
            }
        }

        let complete = {
            let want = self
                .peer_mut(transfer.downloader)
                .wants
                .get_mut(&transfer.object);
            match want {
                Some(w) => {
                    w.received_bytes = (w.received_bytes + block).min(size);
                    w.received_bytes >= size
                }
                None => false,
            }
        };

        if complete {
            self.complete_download(transfer.downloader, transfer.object);
            return;
        }
        // The uploader may no longer claim the object (an honest holder
        // evicted it mid-transfer, or a middleman's last backing request was
        // withdrawn).
        if !self.claims(transfer.uploader, transfer.object) {
            self.end_transfer(tid, SessionEnd::SourceLostObject);
            return;
        }
        let remaining = self.remaining_bytes(transfer.downloader, transfer.object);
        let duration = {
            let t = self
                .transfers
                .get(&tid)
                .expect("transfer is still registered");
            let next_block = t.session.next_block_bytes(remaining);
            self.block_duration_of(t, next_block)
        };
        self.engine.schedule_in(duration, Event::BlockComplete(tid));
    }

    /// One junk block arrived: decide whether the active countermeasure (or
    /// the victim's end-of-object checksum) catches the cheat now, and keep
    /// the garbage stream going otherwise.  Junk never advances the want.
    fn handle_junk_block(
        &mut self,
        tid: TransferId,
        transfer: &ActiveTransfer,
        block: u64,
        size: u64,
    ) {
        self.peer_mut(transfer.downloader).junk_bytes += block;
        let streamed = self
            .transfers
            .get(&tid)
            .map_or(block, |t| t.session.bytes_transferred());
        let detected = match self.config.protection {
            // Unprotected, the victim only discovers the garbage after
            // assembling (and checksumming) a full object's worth of bytes.
            Protection::None => streamed >= size,
            // Synchronous validation checks every exchange block before the
            // next is sent; the mediator samples blocks before releasing
            // keys.  Either way the first junk block of an exchange is
            // caught.  Non-exchange junk still takes a full object to spot.
            Protection::Windowed { .. } | Protection::Mediated => {
                transfer.kind.is_exchange() || streamed >= size
            }
        };
        if detected {
            if let Some(t) = self.transfers.get_mut(&tid) {
                if let Some(v) = &mut t.validation {
                    v.on_invalid_block();
                }
            }
            if self.measuring() {
                self.report
                    .record_cheat_detection(self.behavior(transfer.uploader).kind());
            }
            self.end_transfer(tid, SessionEnd::CheatDetected);
            return;
        }
        let duration = {
            let t = self
                .transfers
                .get(&tid)
                .expect("transfer is still registered");
            let next_block = t
                .session
                .next_block_bytes(size.saturating_sub(streamed).max(1));
            self.block_duration_of(t, next_block)
        };
        self.engine.schedule_in(duration, Event::BlockComplete(tid));
    }

    /// Whether everything `downloader` receives stays undecryptable under
    /// the active protection (the mediator's key-release never names a
    /// relaying middleman).
    fn ciphertext_downloader(&self, downloader: PeerId) -> bool {
        self.config.protection == Protection::Mediated
            && self.behavior(downloader).kind() == BehaviorKind::Middleman
    }

    /// Handles the completion of a whole object at `downloader`.
    fn complete_download(&mut self, downloader: PeerId, object: ObjectId) {
        let now = self.now();
        let Some(want) = self.peer_mut(downloader).wants.remove(&object) else {
            return;
        };
        let minutes = now.saturating_since(want.issued_at).as_minutes_f64();
        let ciphertext = self.ciphertext_downloader(downloader);
        let class = self.peer(downloader).class();
        let behavior = self.peer(downloader).behavior;
        let capacity = self.peer(downloader).capacity;
        if self.measuring() {
            if ciphertext {
                self.report.record_ciphertext_download(behavior);
            } else {
                self.report
                    .record_download(class, behavior, capacity, minutes);
            }
        }

        // Withdraw every outstanding request for this object.
        self.graph.remove_object_requests(downloader, object);
        if !ciphertext {
            // The object enters the downloader's store (it may be evicted
            // later by the lazily scheduled maintenance pass).  The
            // downloader can now close rings it could not before, so any
            // cached search that probed it *for this object* is stale —
            // entries wanting other objects survive.  Ciphertext never
            // enters storage: the downloader holds bytes it cannot decrypt,
            // let alone re-serve.
            self.peer_mut(downloader).storage.insert(object);
            self.world_epoch += 1;
            self.index_holding_gained(downloader, object);
            self.ring_cache.invalidate_holding(downloader, object);
            // Storage only grows past capacity here: materialise a
            // maintenance event at the peer's next wheel boundary if needed.
            self.schedule_maintenance_if_over_capacity(downloader);
        }

        // Terminate every session that was delivering this object.
        let sessions: Vec<TransferId> = self
            .downloads_by_want
            .get(&(downloader, object))
            .cloned()
            .unwrap_or_default();
        for tid in sessions {
            self.end_transfer(tid, SessionEnd::DownloadComplete);
        }
        self.downloads_by_want.remove(&(downloader, object));

        // Free request budget: ask for something new right away.  (Bypasses
        // the retry dedup deliberately — a completion must never wait on a
        // retry scheduled hundreds of seconds out.  The queued counter keeps
        // the chain singular afterwards: the pass that fires while another
        // event is still pending will not re-arm.)
        self.generate_queued[downloader.as_usize()] += 1;
        self.engine
            .schedule_now(Event::GenerateRequests(downloader));
    }

    /// Tears down one transfer session and releases its resources.
    pub(super) fn end_transfer(&mut self, tid: TransferId, reason: SessionEnd) {
        let Some(transfer) = self.transfers.remove(&tid) else {
            return;
        };
        self.transfer_epoch += 1;
        // Ends can *loosen* serve-queue eligibility (slots free up, pairs
        // stop being served); the separate end epoch lets the scheduling
        // loop tell starts-only drift — where a cached queue can be patched
        // in place — from drift that demands a rebuild.
        self.transfer_end_epoch += 1;
        self.peer_mut(transfer.uploader).upload_slots.release();
        self.peer_mut(transfer.downloader).download_slots.release();
        if let Some(want) = self
            .peer_mut(transfer.downloader)
            .wants
            .get_mut(&transfer.object)
        {
            want.active_sessions = want.active_sessions.saturating_sub(1);
        }
        if let Some(tids) = self.uploads_by_peer.get_mut(&transfer.uploader) {
            tids.retain(|t| *t != tid);
        }
        if let Some(tids) = self
            .downloads_by_want
            .get_mut(&(transfer.downloader, transfer.object))
        {
            tids.retain(|t| *t != tid);
        }
        // Sessions that never moved a byte (typically preempted before their
        // first block completed) are not counted as sessions in the report;
        // they would otherwise swamp the per-session distributions.
        if self.measuring() && transfer.session.bytes_transferred() > 0 {
            self.report
                .record_session(transfer.kind, transfer.session.bytes_transferred(), reason);
        }

        // An exchange ring dissolves as soon as any of its sessions ends.
        if let Some(ring_id) = transfer.ring {
            if reason != SessionEnd::RingDissolved {
                self.dissolve_ring(ring_id);
            }
        }
        if reason != SessionEnd::HorizonReached {
            // Session end is when both sides (re-)announce their
            // participation level, filtered through their behavior.  Without
            // this, a peer that never uploads only reports when it registers
            // a new request, and an uploader's behavior-mediated announcement
            // is clobbered by the honest bookkeeping of
            // `UploadScheduler::on_transfer_complete` until then.
            for peer in [transfer.uploader, transfer.downloader] {
                let honest = self.peer(peer).uploaded_bytes as f64 / (1024.0 * 1024.0);
                let announced = self.behavior(peer).reported_participation(honest);
                self.scheduler.on_participation_report(peer, announced);
            }
            // The freed upload slot can immediately be refilled — unless the
            // uploader is the one leaving (a departure teardown flips its
            // `online` flag before ending its sessions).
            if self.peer(transfer.uploader).online {
                self.engine
                    .schedule_now(Event::TrySchedule(transfer.uploader));
            }
        }
    }

    fn dissolve_ring(&mut self, ring_id: RingId) {
        let Some(ring) = self.rings.remove(&ring_id) else {
            return;
        };
        for tid in ring.transfers {
            self.end_transfer(tid, SessionEnd::RingDissolved);
        }
    }
}
