//! Population dynamics: churn departures and rejoins, the scripted
//! catastrophic removal of the top providers, and flash-crowd object
//! releases.
//!
//! All three processes are first-class events on the same deterministic
//! timeline as the rest of the simulation:
//!
//! * **Churn** ([`crate::ChurnConfig`]) — every arrival opens a session
//!   whose length is an exponential draw from the dedicated `"churn"` RNG
//!   stream; the departure tears the peer out of every live structure and
//!   schedules a rejoin after an exponential downtime.  A rejoining peer
//!   keeps its stored objects (they re-enter the lookup index) and re-arms
//!   its request-generation chain.
//! * **Catastrophe** ([`crate::CatastropheConfig`]) — at the scripted time
//!   the `top_k` online sharing peers by uploaded bytes leave permanently
//!   (no rejoin is ever scheduled for them).
//! * **Flash crowd** ([`crate::FlashCrowdConfig`]) — at the scripted time a
//!   new object enters the catalog's most popular category, is seeded into
//!   a few holders, and a burst of sampled peers requests it at once.
//!
//! Every teardown path goes through the same invalidation machinery as the
//! organic mutations (graph dirty log, holders index, ring-candidate cache,
//! `world_epoch`), so cached and sharded runs stay bit-identical to the
//! sequential engine under any population schedule.  The population events
//! also never join a sharded `TrySchedule` batch — batches only collect
//! consecutive `TrySchedule` entries — so a departure landing mid-timestamp
//! splits the batch exactly where the sequential engine would.

// The event loop's panic policy (exchange-lint rule H001): no `.unwrap()` —
// every panicking access carries an `.expect()` stating the invariant that
// makes it unreachable.  Clippy enforces the same contract at module level.
#![deny(clippy::unwrap_used, clippy::get_unwrap)]

use des::SimDuration;
use workload::{CategoryId, ObjectId, PeerId};

use crate::population::exp_draw_s;
use crate::SessionEnd;

use super::events::Event;
use super::{Simulation, TransferId};

impl Simulation {
    // ---- churn --------------------------------------------------------------

    /// Opens a churn session for `peer`: draws its length from the `"churn"`
    /// stream and schedules the departure.  A no-op without churn, consuming
    /// no randomness — churn-off runs stay bit-identical to the pre-churn
    /// engine.
    pub(super) fn schedule_departure(&mut self, peer: PeerId) {
        let Some(churn) = &self.config.churn else {
            return;
        };
        let mean_session_s = churn.mean_session_s;
        let session = exp_draw_s(&mut self.rng_churn, mean_session_s);
        self.engine
            .schedule_in(SimDuration::from_secs_f64(session), Event::Depart(peer));
    }

    /// A churning peer's session ends.  Stale events — the peer was already
    /// removed by a catastrophe — are no-ops, and deliberately do *not*
    /// schedule a rejoin: only the `Depart` of a live session continues the
    /// peer's on/off chain, so catastrophic departures stay permanent.
    pub(super) fn handle_depart(&mut self, peer: PeerId) {
        if !self.peer(peer).online {
            return;
        }
        self.depart_peer(peer);
        let Some(churn) = &self.config.churn else {
            return;
        };
        let mean_downtime_s = churn.mean_downtime_s;
        let downtime = exp_draw_s(&mut self.rng_churn, mean_downtime_s);
        self.engine
            .schedule_in(SimDuration::from_secs_f64(downtime), Event::Rejoin(peer));
    }

    /// A departed peer's downtime ends: it comes back with the objects it
    /// stored, re-enters the lookup index, re-arms request generation and
    /// maintenance, and opens its next churn session.
    pub(super) fn handle_rejoin(&mut self, peer: PeerId) {
        if self.peer(peer).online {
            return;
        }
        self.peers[peer.as_usize()].online = true;
        let stored: Vec<ObjectId> = self.peer(peer).storage.iter().collect();
        for object in stored {
            self.index_holding_gained(peer, object);
        }
        // No cached search can depend on an offline peer (it has no request
        // edges, so no BFS reaches it), but the whole-peer invalidation keeps
        // the cache provably exact rather than argued exact.
        self.ring_cache.invalidate_peer(peer);
        self.world_epoch += 1;
        // The store may sit over capacity from before the departure.
        self.schedule_maintenance_if_over_capacity(peer);
        self.generate_queued[peer.as_usize()] += 1;
        self.engine.schedule_now(Event::GenerateRequests(peer));
        self.schedule_departure(peer);
    }

    // ---- scripted scenarios -------------------------------------------------

    /// The scripted catastrophe: the `top_k` online sharing peers by uploaded
    /// bytes (ties to the lower peer id) leave permanently.
    pub(super) fn handle_catastrophe(&mut self) {
        let Some(cfg) = &self.config.catastrophe else {
            return;
        };
        let top_k = cfg.top_k;
        let mut ranked: Vec<PeerId> = self
            .peers
            .iter()
            .filter(|p| p.online && p.sharing)
            .map(|p| p.id)
            .collect();
        ranked.sort_by(|a, b| {
            let ua = self.peers[a.as_usize()].uploaded_bytes;
            let ub = self.peers[b.as_usize()].uploaded_bytes;
            ub.cmp(&ua).then(a.cmp(b))
        });
        ranked.truncate(top_k);
        for peer in ranked {
            // No rejoin is scheduled here, and the peer's pending churn
            // `Depart` (if any) no-ops against the offline flag without
            // continuing the chain — the removal is permanent.
            self.depart_peer(peer);
        }
    }

    /// The scripted flash crowd: a new object is released into the most
    /// popular category, seeded into the first online sharing peers, and a
    /// sampled burst of peers requests it immediately.  Organic popularity
    /// draws pick the object up from its (last) category rank afterwards.
    pub(super) fn handle_flash_crowd(&mut self) {
        let Some(cfg) = &self.config.flash_crowd else {
            return;
        };
        let requesters = cfg.requesters;
        let seed_holders = cfg.seed_holders;
        let size = self.config.workload.object_size_bytes;
        let object = self.catalog.release_object(CategoryId::new(0), size);
        self.holders.push(std::collections::BTreeSet::new());
        self.honest_holders.push(0);

        let seeds: Vec<PeerId> = self
            .peers
            .iter()
            .filter(|p| p.online && p.sharing)
            .take(seed_holders)
            .map(|p| p.id)
            .collect();
        for peer in seeds {
            self.peers[peer.as_usize()].storage.insert(object);
            self.index_holding_gained(peer, object);
            self.ring_cache.invalidate_holding(peer, object);
            self.schedule_maintenance_if_over_capacity(peer);
        }
        self.world_epoch += 1;

        let max_pending = self.config.max_pending_objects;
        let eligible: Vec<PeerId> = self
            .peers
            .iter()
            .filter(|p| p.online && !p.has_or_wants(object) && p.can_issue_request(max_pending))
            .map(|p| p.id)
            .collect();
        let burst: Vec<PeerId> = self
            .rng_churn
            .sample(&eligible, requesters)
            .into_iter()
            .copied()
            .collect();
        for requester in burst {
            self.issue_request(requester, object);
        }
    }

    // ---- teardown -----------------------------------------------------------

    /// Tears `peer` out of every live structure: its transfers end
    /// ([`SessionEnd::PeerDeparted`], dissolving any rings they were part
    /// of), its request-graph edges are withdrawn one by one (keeping the
    /// dirty log exact for the entry-granularity cache), its outstanding
    /// wants are dropped, and its holdings leave the lookup index.  The peer
    /// keeps its storage — a churn rejoin brings the objects back.
    fn depart_peer(&mut self, peer: PeerId) {
        // Flip the flag first: `end_transfer` consults it before re-arming
        // the departing uploader, and every gate downstream reads it.
        self.peers[peer.as_usize()].online = false;

        // End every session the peer is part of, at either end.
        let mut open: Vec<TransferId> =
            self.uploads_by_peer.get(&peer).cloned().unwrap_or_default();
        let wanted = self.peer(peer).wanted_objects();
        for object in &wanted {
            if let Some(tids) = self.downloads_by_want.get(&(peer, *object)) {
                open.extend(tids.iter().copied());
            }
        }
        open.sort_unstable();
        open.dedup();
        for tid in open {
            self.end_transfer(tid, SessionEnd::PeerDeparted);
        }

        // Withdraw the peer's outgoing requests (it no longer downloads) and
        // the requests directed at it (it no longer serves).  Both go through
        // the graph's per-edge removal so the dirty log stays exact.
        for object in &wanted {
            self.graph.remove_object_requests(peer, *object);
        }
        let incoming: Vec<(PeerId, ObjectId)> = self
            .graph
            .incoming(peer)
            .map(|r| (r.requester, r.object))
            .collect();
        for (requester, object) in incoming {
            self.graph.remove_request(requester, peer, object);
        }
        for object in &wanted {
            self.downloads_by_want.remove(&(peer, *object));
        }
        self.peers[peer.as_usize()].wants.clear();

        // The peer's holdings leave the lookup index; any middleman claim
        // that just lost its final honest source is withdrawn with them.
        let stored: Vec<ObjectId> = self.peer(peer).storage.iter().collect();
        for object in stored {
            self.index_holding_lost(peer, object);
            self.withdraw_unsourceable_middleman_claims(object);
        }

        self.ring_cache.invalidate_peer(peer);
        self.world_epoch += 1;
    }
}
