//! Persistent per-provider cache of discovered exchange-ring candidates.
//!
//! Every `TrySchedule` event used to re-run a full breadth-first ring search
//! over the request graph, even though consecutive scheduling rounds at the
//! same provider usually see an unchanged neighbourhood.  This cache keeps
//! the most recent [`SearchTrace`] per provider and reuses its rings until a
//! relevant *delta* lands:
//!
//! * **graph deltas** (request added/removed, peer departed) arrive through
//!   [`RequestGraph`]'s dirty set via
//!   [`apply_graph_deltas`](RingCandidateCache::apply_graph_deltas);
//! * **oracle deltas** (a peer gained or evicted an object, or toggled
//!   `sharing`) are reported by the simulation through
//!   [`invalidate_peer`](RingCandidateCache::invalidate_peer);
//! * **want deltas** at the root are caught by keying each entry on the exact
//!   `wants` list it was computed for.
//!
//! An entry is dropped as soon as *any* peer in its search's dependency set
//! ([`SearchTrace::deps`]) is invalidated.  Because the dependency set covers
//! every peer whose incoming-request queue or holdings the search read, a
//! cached hit is guaranteed to equal what a fresh [`exchange::RingSearch`]
//! would return — the cache is a pure memoisation, never an approximation.

use std::collections::{BTreeSet, HashMap};

use exchange::{ExchangeRing, RequestGraph, SearchTrace};
use workload::{ObjectId, PeerId};

/// Hit/miss/invalidation counters of one cache over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingCacheStats {
    /// Lookups answered from a live entry.
    pub hits: u64,
    /// Lookups that required a fresh search (no entry, or stale wants).
    pub misses: u64,
    /// Entries dropped because a peer in their dependency set changed.
    pub invalidations: u64,
}

#[derive(Debug)]
struct Entry {
    /// The root's wanted objects at the time of the search.
    wants: Vec<ObjectId>,
    /// The search result, in preference order.
    rings: Vec<ExchangeRing<PeerId, ObjectId>>,
    /// The search's dependency set (sorted); mirrored in `dependents`.
    deps: Vec<PeerId>,
}

/// Memoises [`exchange::RingSearch::find_traced`] results per provider.
///
/// See the [module docs](self) for the invalidation contract.
#[derive(Debug, Default)]
pub struct RingCandidateCache {
    entries: HashMap<PeerId, Entry>,
    /// Reverse index: peer -> roots whose cached search depends on it.
    dependents: HashMap<PeerId, BTreeSet<PeerId>>,
    stats: RingCacheStats,
}

impl RingCandidateCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        RingCandidateCache::default()
    }

    /// Returns the cached candidate rings for `root`, if a live entry exists
    /// and was computed for exactly this `wants` list.
    pub fn lookup(
        &mut self,
        root: PeerId,
        wants: &[ObjectId],
    ) -> Option<&[ExchangeRing<PeerId, ObjectId>]> {
        let live = self
            .entries
            .get(&root)
            .is_some_and(|entry| entry.wants == wants);
        if live {
            self.stats.hits += 1;
            self.entries.get(&root).map(|entry| entry.rings.as_slice())
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Stores a fresh search result for `root`, replacing any prior entry.
    pub fn store(
        &mut self,
        root: PeerId,
        wants: Vec<ObjectId>,
        trace: SearchTrace<PeerId, ObjectId>,
    ) {
        self.remove_entry(root);
        for dep in &trace.deps {
            self.dependents.entry(*dep).or_default().insert(root);
        }
        self.entries.insert(
            root,
            Entry {
                wants,
                rings: trace.rings,
                deps: trace.deps,
            },
        );
    }

    /// Drops every entry whose search depended on `peer`.
    ///
    /// Call this when `peer`'s provision state changed: it gained or evicted
    /// a stored object, or toggled its `sharing` flag.  Graph-edge changes
    /// are handled separately by
    /// [`apply_graph_deltas`](Self::apply_graph_deltas).
    pub fn invalidate_peer(&mut self, peer: PeerId) {
        let Some(roots) = self.dependents.remove(&peer) else {
            return;
        };
        for root in roots {
            if self.remove_entry(root) {
                self.stats.invalidations += 1;
            }
        }
    }

    /// Drains the graph's dirty set and invalidates every entry that depended
    /// on a changed peer.  Cheap when nothing changed.
    pub fn apply_graph_deltas(&mut self, graph: &mut RequestGraph<PeerId, ObjectId>) {
        if !graph.has_dirty() {
            return;
        }
        for peer in graph.take_dirty() {
            self.invalidate_peer(peer);
        }
    }

    /// Removes `root`'s entry and unregisters its dependency links.
    /// Returns whether an entry existed.
    fn remove_entry(&mut self, root: PeerId) -> bool {
        let Some(entry) = self.entries.remove(&root) else {
            return false;
        };
        for dep in &entry.deps {
            if let Some(roots) = self.dependents.get_mut(dep) {
                roots.remove(&root);
                if roots.is_empty() {
                    self.dependents.remove(dep);
                }
            }
        }
        true
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The run's hit/miss/invalidation counters.
    #[must_use]
    pub fn stats(&self) -> RingCacheStats {
        self.stats
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dependents.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exchange::{RingPreference, RingSearch, SearchPolicy};

    fn peer(id: u32) -> PeerId {
        PeerId::new(id)
    }

    fn object(id: u32) -> ObjectId {
        ObjectId::new(id)
    }

    fn search() -> RingSearch {
        RingSearch::new(SearchPolicy::new(5, RingPreference::ShorterFirst))
    }

    /// A tiny fixture: 1 asked 0 for o10, 2 asked 1 for o20; peer 2 owns o30.
    fn fixture() -> RequestGraph<PeerId, ObjectId> {
        let mut graph = RequestGraph::new();
        graph.add_request(peer(1), peer(0), object(10));
        graph.add_request(peer(2), peer(1), object(20));
        graph.take_dirty();
        graph
    }

    fn owns_o30(p: &PeerId, o: &ObjectId) -> bool {
        *p == peer(2) && *o == object(30)
    }

    #[test]
    fn lookup_misses_then_hits_after_store() {
        let graph = fixture();
        let mut cache = RingCandidateCache::new();
        let wants = vec![object(30)];
        assert!(cache.lookup(peer(0), &wants).is_none());
        let trace = search().find_traced(&graph, peer(0), &wants, owns_o30);
        assert_eq!(trace.rings.len(), 1);
        cache.store(peer(0), wants.clone(), trace.clone());
        assert_eq!(cache.lookup(peer(0), &wants), Some(trace.rings.as_slice()));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn changed_wants_miss_without_invalidation() {
        let graph = fixture();
        let mut cache = RingCandidateCache::new();
        let wants = vec![object(30)];
        let trace = search().find_traced(&graph, peer(0), &wants, owns_o30);
        cache.store(peer(0), wants, trace);
        assert!(cache.lookup(peer(0), &[object(30), object(31)]).is_none());
        assert_eq!(cache.stats().invalidations, 0);
    }

    #[test]
    fn graph_delta_on_a_dep_invalidates() {
        let mut graph = fixture();
        let mut cache = RingCandidateCache::new();
        let wants = vec![object(30)];
        let trace = search().find_traced(&graph, peer(0), &wants, owns_o30);
        cache.store(peer(0), wants.clone(), trace);
        // A new request at frontier peer 2 dirties it -> entry dropped.
        graph.add_request(peer(3), peer(2), object(40));
        cache.apply_graph_deltas(&mut graph);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 1);
        assert!(cache.lookup(peer(0), &wants).is_none());
    }

    #[test]
    fn graph_delta_outside_the_deps_keeps_the_entry() {
        let mut graph = fixture();
        let mut cache = RingCandidateCache::new();
        let wants = vec![object(30)];
        let trace = search().find_traced(&graph, peer(0), &wants, owns_o30);
        let rings = trace.rings.clone();
        cache.store(peer(0), wants.clone(), trace);
        // An edge between peers the search never visited is irrelevant.
        graph.add_request(peer(8), peer(9), object(90));
        cache.apply_graph_deltas(&mut graph);
        assert_eq!(cache.lookup(peer(0), &wants), Some(rings.as_slice()));
    }

    #[test]
    fn invalidate_peer_drops_every_dependent_root() {
        let mut graph = fixture();
        // Peer 1 also has its own entry: 2 asked 1, and 2 owns what 1 wants.
        let mut cache = RingCandidateCache::new();
        let wants0 = vec![object(30)];
        let wants1 = vec![object(30)];
        cache.store(
            peer(0),
            wants0.clone(),
            search().find_traced(&graph, peer(0), &wants0, owns_o30),
        );
        cache.store(
            peer(1),
            wants1.clone(),
            search().find_traced(&graph, peer(1), &wants1, owns_o30),
        );
        assert_eq!(cache.len(), 2);
        // Peer 2 is in both dependency sets (frontier of both searches).
        cache.invalidate_peer(peer(2));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 2);
        // Stale reverse-index links must not resurrect anything.
        graph.add_request(peer(4), peer(1), object(50));
        cache.apply_graph_deltas(&mut graph);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn store_replaces_and_relinks_dependencies() {
        let graph = fixture();
        let mut cache = RingCandidateCache::new();
        let wants = vec![object(30)];
        cache.store(
            peer(0),
            wants.clone(),
            search().find_traced(&graph, peer(0), &wants, owns_o30),
        );
        // Re-store with a no-ring oracle: the entry must be replaced, and the
        // old dependency links must be gone (no double counting later).
        cache.store(
            peer(0),
            wants.clone(),
            search().find_traced(&graph, peer(0), &wants, |_, _| false),
        );
        assert_eq!(cache.lookup(peer(0), &wants), Some(&[][..]));
        cache.invalidate_peer(peer(2));
        assert_eq!(cache.stats().invalidations, 1);
    }
}
