//! Persistent per-provider cache of discovered exchange-ring candidates.
//!
//! Every `TrySchedule` event used to re-run a full breadth-first ring search
//! over the request graph, even though consecutive scheduling rounds at the
//! same provider usually see an unchanged neighbourhood.  This cache keeps
//! the most recent [`SearchTrace`] per provider and reuses its rings until a
//! relevant *delta* lands:
//!
//! * **graph deltas** (request added/removed, peer departed) arrive through
//!   [`RequestGraph`]'s dirty log via
//!   [`apply_graph_deltas`](RingCandidateCache::apply_graph_deltas);
//! * **oracle deltas** (a peer gained or evicted an object) are reported by
//!   the simulation through
//!   [`invalidate_holding`](RingCandidateCache::invalidate_holding); a
//!   `sharing` toggle, which affects every object at once, uses the coarse
//!   [`invalidate_peer`](RingCandidateCache::invalidate_peer);
//! * **want deltas** at the root are caught by keying each entry on the exact
//!   `wants` list it was computed for.
//!
//! # Invalidation granularity
//!
//! [`CacheGranularity`] selects how precisely deltas map onto dropped
//! entries:
//!
//! * [`CacheGranularity::Provider`] (the original behaviour): a delta at
//!   peer *q* drops **every** entry whose dependency set
//!   ([`SearchTrace::deps`]) contains *q*, regardless of which aspect of *q*
//!   changed.
//! * [`CacheGranularity::Entry`] (the default): deltas are matched against
//!   what each cached search actually *read* of *q*:
//!   - an edge delta `(provider q, object o)` drops entries with *q* in
//!     [`SearchTrace::edge_deps`] (the search read *q*'s incoming queue) or
//!     with *q* in `deps` **and** *o* in the entry's wants (the `provides`
//!     probe at *q* can read *q*'s incoming edges for a wanted object — the
//!     middleman claim);
//!   - a holdings delta `(q, o)` drops entries with *q* in `deps` **and**
//!     *o* in the entry's wants — a peer completing or evicting an object
//!     nobody's cached search wants kills nothing;
//!   - requester-side edge endpoints drop nothing at all (a search never
//!     reads outgoing queues).
//!
//! Either way a cached hit is guaranteed to equal what a fresh
//! [`exchange::RingSearch`] would return — the cache is a pure memoisation,
//! never an approximation; entry granularity is simply *strictly lazier*
//! (it drops a subset of what provider granularity drops).

use std::collections::{BTreeSet, HashMap};

use exchange::{ExchangeRing, RequestGraph, SearchTrace};
use serde::{Deserialize, Serialize};
use workload::{ObjectId, PeerId};

/// How precisely deltas map onto dropped cache entries (see the
/// [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CacheGranularity {
    /// A delta at a peer drops every entry depending on that peer.
    Provider,
    /// Deltas are matched against the exact aspect — incoming queue vs
    /// per-object holdings — each cached search read.
    #[default]
    Entry,
}

impl CacheGranularity {
    /// The label used in configs and bench output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CacheGranularity::Provider => "provider",
            CacheGranularity::Entry => "entry",
        }
    }
}

/// Hit/miss/invalidation counters of one cache over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingCacheStats {
    /// Lookups answered from a live entry.
    pub hits: u64,
    /// Lookups that required a fresh search (no entry, or stale wants).
    pub misses: u64,
    /// Entries dropped because a peer in their dependency set changed.
    pub invalidations: u64,
}

#[derive(Debug)]
struct Entry {
    /// The root's wanted objects at the time of the search.
    wants: Vec<ObjectId>,
    /// The search result, in preference order.
    rings: Vec<ExchangeRing<PeerId, ObjectId>>,
    /// The search's full dependency set (sorted); mirrored in `dependents`.
    deps: Vec<PeerId>,
    /// The subset of `deps` whose incoming queues the search read (sorted).
    edge_deps: Vec<PeerId>,
}

/// A borrowed view of one live cache entry (see
/// [`RingCandidateCache::iter_entries`]).
#[derive(Debug, Clone, Copy)]
pub struct CachedEntry<'a> {
    /// The provider the entry's search was rooted at.
    pub root: PeerId,
    /// The root's wanted objects at the time of the search.
    pub wants: &'a [ObjectId],
    /// The cached candidate rings, in preference order.
    pub rings: &'a [ExchangeRing<PeerId, ObjectId>],
    /// The search's full dependency set.
    pub deps: &'a [PeerId],
    /// The peers whose incoming queues the search read.
    pub edge_deps: &'a [PeerId],
}

/// Memoises [`exchange::RingSearch::find_traced`] results per provider.
///
/// See the [module docs](self) for the invalidation contract.
#[derive(Debug, Default)]
pub struct RingCandidateCache {
    granularity: CacheGranularity,
    entries: HashMap<PeerId, Entry>,
    /// Reverse index: peer -> roots whose cached search depends on it.
    dependents: HashMap<PeerId, BTreeSet<PeerId>>,
    /// Reverse index over [`Entry::edge_deps`]: peer -> roots whose cached
    /// search read the peer's incoming queue.  An edge delta kills these
    /// outright, no per-entry filtering.
    edge_dependents: HashMap<PeerId, BTreeSet<PeerId>>,
    /// Reverse index over [`Entry::wants`]: object -> roots whose cached
    /// search probed for it.  Kept tiny (≤ max-pending objects per entry),
    /// it turns the probe-side delta checks into small-set intersections.
    want_index: HashMap<ObjectId, BTreeSet<PeerId>>,
    stats: RingCacheStats,
}

impl RingCandidateCache {
    /// Creates an empty cache with the default (entry-level) granularity.
    #[must_use]
    pub fn new() -> Self {
        RingCandidateCache::default()
    }

    /// Creates an empty cache with the given invalidation granularity.
    #[must_use]
    pub fn with_granularity(granularity: CacheGranularity) -> Self {
        RingCandidateCache {
            granularity,
            ..RingCandidateCache::default()
        }
    }

    /// The invalidation granularity this cache runs at.
    #[must_use]
    pub fn granularity(&self) -> CacheGranularity {
        self.granularity
    }

    /// Returns the cached candidate rings for `root`, if a live entry exists
    /// and was computed for exactly this `wants` list.
    pub fn lookup(
        &mut self,
        root: PeerId,
        wants: &[ObjectId],
    ) -> Option<&[ExchangeRing<PeerId, ObjectId>]> {
        let live = self
            .entries
            .get(&root)
            .is_some_and(|entry| entry.wants == wants);
        if live {
            self.stats.hits += 1;
            self.entries.get(&root).map(|entry| entry.rings.as_slice())
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Whether [`lookup`](Self::lookup) for `root` and exactly this `wants`
    /// list would hit, **without** touching the hit/miss counters.  Shard
    /// planning uses this to decide which providers need a precomputed
    /// search; the stats themselves are only ever advanced by the merge
    /// thread's real lookups, so they stay bit-identical to a sequential
    /// run.
    #[must_use]
    pub fn peek(&self, root: PeerId, wants: &[ObjectId]) -> bool {
        self.entries
            .get(&root)
            .is_some_and(|entry| entry.wants == wants)
    }

    /// Stores a fresh search result for `root`, replacing any prior entry.
    ///
    /// Index maintenance is granularity-specific: provider granularity
    /// mirrors the *full* dependency set in its reverse index (the PR-2
    /// design); entry granularity indexes only the (much smaller)
    /// edge-dependency set and the wants — its per-object checks resolve
    /// the remaining deps membership against the entry's own sorted `deps`
    /// list, so storing an entry costs `O(edge_deps)` instead of `O(deps)`.
    pub fn store(
        &mut self,
        root: PeerId,
        wants: Vec<ObjectId>,
        trace: SearchTrace<PeerId, ObjectId>,
    ) {
        self.remove_entry(root);
        match self.granularity {
            CacheGranularity::Provider => {
                for dep in &trace.deps {
                    self.dependents.entry(*dep).or_default().insert(root);
                }
            }
            CacheGranularity::Entry => {
                for dep in &trace.edge_deps {
                    self.edge_dependents.entry(*dep).or_default().insert(root);
                }
                for object in &wants {
                    self.want_index.entry(*object).or_default().insert(root);
                }
            }
        }
        self.entries.insert(
            root,
            Entry {
                wants,
                rings: trace.rings,
                deps: trace.deps,
                edge_deps: trace.edge_deps,
            },
        );
    }

    /// Drops every entry whose search depended on `peer`, regardless of
    /// granularity.
    ///
    /// Call this for deltas that affect every object of `peer` at once (a
    /// `sharing` toggle).  Per-object provision changes — the peer gained or
    /// evicted one stored object — should go through the lazier
    /// [`invalidate_holding`](Self::invalidate_holding); graph-edge changes
    /// through [`apply_graph_deltas`](Self::apply_graph_deltas).
    pub fn invalidate_peer(&mut self, peer: PeerId) {
        let affected: Vec<PeerId> = match self.granularity {
            CacheGranularity::Provider => match self.dependents.remove(&peer) {
                Some(roots) => roots.into_iter().collect(),
                None => return,
            },
            // Entry granularity keeps no full-deps reverse index; whole-peer
            // kills are rare (sharing never toggles mid-run), so a scan over
            // the live entries is the right trade.
            CacheGranularity::Entry => {
                let mut roots: Vec<PeerId> = self
                    .entries
                    // exchange-lint: allow(D001, reason = "sorted before use below; removals then run in root order")
                    .iter()
                    .filter(|(_, entry)| entry.deps.binary_search(&peer).is_ok())
                    .map(|(root, _)| *root)
                    .collect();
                roots.sort_unstable();
                roots
            }
        };
        for root in affected {
            if self.remove_entry(root) {
                self.stats.invalidations += 1;
            }
        }
    }

    /// Reports that `peer` gained or lost the ability to serve `object`
    /// (download completed, object evicted).
    ///
    /// At entry granularity this drops only the entries whose search probed
    /// `peer` for `object`: `peer` is in the dependency set *and* `object`
    /// is among the entry's wants (the `provides` oracle is only ever probed
    /// for wanted objects).  At provider granularity it falls back to
    /// [`invalidate_peer`](Self::invalidate_peer).
    pub fn invalidate_holding(&mut self, peer: PeerId, object: ObjectId) {
        if self.granularity == CacheGranularity::Provider {
            self.invalidate_peer(peer);
            return;
        }
        self.invalidate_claims(peer, object);
    }

    /// Drains the graph's dirty log and invalidates every entry a changed
    /// edge could affect.  Cheap when nothing changed.
    ///
    /// At provider granularity every peer incident to a changed edge kills
    /// all its dependents; at entry granularity each changed edge
    /// `(provider, object)` kills only the entries that read the provider's
    /// incoming queue ([`SearchTrace::edge_deps`]) or probed the provider for
    /// that very object (a middleman claim backed by the edge).
    pub fn apply_graph_deltas(&mut self, graph: &mut RequestGraph<PeerId, ObjectId>) {
        if !graph.has_dirty() {
            return;
        }
        match self.granularity {
            CacheGranularity::Provider => {
                for peer in graph.take_dirty() {
                    self.invalidate_peer(peer);
                }
            }
            CacheGranularity::Entry => {
                let edges = graph.take_dirty_edges();
                self.apply_edge_deltas(&edges);
            }
        }
    }

    /// Entry-granularity invalidation for a drained batch of changed edges
    /// (`(provider, requester, object)` triples, as returned by
    /// [`RequestGraph::take_dirty_edges`]), treating every edge as affecting
    /// the provider's full queue.
    ///
    /// Callers that know the fanout their searches ran at can do better:
    /// an edge landing beyond the fanout prefix of the provider's queue can
    /// only affect the provider's *own* entry (the root scan is unbounded)
    /// and the per-object claim probes — see
    /// [`invalidate_edge_readers`](Self::invalidate_edge_readers),
    /// [`invalidate_root`](Self::invalidate_root) and
    /// [`invalidate_claims`](Self::invalidate_claims), which the simulation's
    /// drain composes per edge.
    pub fn apply_edge_deltas(&mut self, edges: &BTreeSet<(PeerId, PeerId, ObjectId)>) {
        let mut previous: Option<PeerId> = None;
        for &(provider, _, object) in edges {
            if previous != Some(provider) {
                self.invalidate_edge_readers(provider);
                previous = Some(provider);
            }
            self.invalidate_claims(provider, object);
        }
    }

    /// Drops every entry whose search read `provider`'s incoming queue —
    /// including the entry rooted at `provider` itself.  Call when an edge
    /// changed inside the queue slice searches examine.
    pub fn invalidate_edge_readers(&mut self, provider: PeerId) {
        if let Some(roots) = self.edge_dependents.remove(&provider) {
            for root in roots {
                if self.remove_entry(root) {
                    self.stats.invalidations += 1;
                }
            }
        }
    }

    /// Drops only the entry rooted at `provider`.  Sufficient for an edge
    /// that landed beyond the fanout prefix of `provider`'s queue: the root's
    /// own scan is the only unbounded queue read.
    pub fn invalidate_root(&mut self, provider: PeerId) {
        if self.remove_entry(provider) {
            self.stats.invalidations += 1;
        }
    }

    /// Drops the entries whose search probed `provider` for `object` — the
    /// footprint of one changed `(provider, object)` provision fact, be it a
    /// holdings change or a middleman claim backed by an edge (claims scan
    /// the whole queue, so this is independent of any fanout prefix).
    ///
    /// Candidates come from the small per-object want index; membership of
    /// `provider` in each candidate's dependency set resolves against the
    /// entry's own sorted `deps` list.
    pub fn invalidate_claims(&mut self, provider: PeerId, object: ObjectId) {
        let Some(wanting) = self.want_index.get(&object) else {
            return;
        };
        let affected: Vec<PeerId> = wanting
            .iter()
            .copied()
            .filter(|root| {
                self.entries
                    .get(root)
                    .is_some_and(|entry| entry.deps.binary_search(&provider).is_ok())
            })
            .collect();
        for root in affected {
            if self.remove_entry(root) {
                self.stats.invalidations += 1;
            }
        }
    }

    /// Removes `root`'s entry and unregisters its dependency links from the
    /// indexes its granularity maintains.  Returns whether an entry existed.
    fn remove_entry(&mut self, root: PeerId) -> bool {
        let Some(entry) = self.entries.remove(&root) else {
            return false;
        };
        match self.granularity {
            CacheGranularity::Provider => {
                for dep in &entry.deps {
                    if let Some(roots) = self.dependents.get_mut(dep) {
                        roots.remove(&root);
                        if roots.is_empty() {
                            self.dependents.remove(dep);
                        }
                    }
                }
            }
            CacheGranularity::Entry => {
                for dep in &entry.edge_deps {
                    if let Some(roots) = self.edge_dependents.get_mut(dep) {
                        roots.remove(&root);
                        if roots.is_empty() {
                            self.edge_dependents.remove(dep);
                        }
                    }
                }
                for object in &entry.wants {
                    if let Some(roots) = self.want_index.get_mut(object) {
                        roots.remove(&root);
                        if roots.is_empty() {
                            self.want_index.remove(object);
                        }
                    }
                }
            }
        }
        true
    }

    /// Iterates over the live entries in ascending root order, so callers
    /// observe a deterministic sequence regardless of hash seeding.
    ///
    /// Used by the invariant audit to re-verify every cached search against
    /// a fresh one; the views borrow the cache.
    pub fn iter_entries(&self) -> impl Iterator<Item = CachedEntry<'_>> {
        // exchange-lint: allow(D001, reason = "keys are sorted before any entry is yielded")
        let mut roots: Vec<PeerId> = self.entries.keys().copied().collect();
        roots.sort_unstable();
        roots.into_iter().map(move |root| {
            let entry = &self.entries[&root];
            CachedEntry {
                root,
                wants: &entry.wants,
                rings: &entry.rings,
                deps: &entry.deps,
                edge_deps: &entry.edge_deps,
            }
        })
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The run's hit/miss/invalidation counters.
    #[must_use]
    pub fn stats(&self) -> RingCacheStats {
        self.stats
    }

    /// Overwrites the hit/miss/invalidation counters.  Checkpoint restore
    /// replays [`store`](Self::store) calls (which never touch the counters)
    /// and then reinstates the counters captured at checkpoint time, so a
    /// resumed run's stats stay bit-identical to an uninterrupted one.
    pub(crate) fn set_stats(&mut self, stats: RingCacheStats) {
        self.stats = stats;
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dependents.clear();
        self.edge_dependents.clear();
        self.want_index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exchange::{RingPreference, RingSearch, SearchPolicy};

    fn peer(id: u32) -> PeerId {
        PeerId::new(id)
    }

    fn object(id: u32) -> ObjectId {
        ObjectId::new(id)
    }

    fn search() -> RingSearch {
        RingSearch::new(SearchPolicy::new(5, RingPreference::ShorterFirst))
    }

    /// A tiny fixture: 1 asked 0 for o10, 2 asked 1 for o20; peer 2 owns o30.
    fn fixture() -> RequestGraph<PeerId, ObjectId> {
        let mut graph = RequestGraph::new();
        graph.add_request(peer(1), peer(0), object(10));
        graph.add_request(peer(2), peer(1), object(20));
        graph.take_dirty();
        graph
    }

    fn owns_o30(p: &PeerId, o: &ObjectId) -> bool {
        *p == peer(2) && *o == object(30)
    }

    #[test]
    fn lookup_misses_then_hits_after_store() {
        let graph = fixture();
        let mut cache = RingCandidateCache::new();
        let wants = vec![object(30)];
        assert!(cache.lookup(peer(0), &wants).is_none());
        let trace = search().find_traced(&graph, peer(0), &wants, owns_o30);
        assert_eq!(trace.rings.len(), 1);
        cache.store(peer(0), wants.clone(), trace.clone());
        assert_eq!(cache.lookup(peer(0), &wants), Some(trace.rings.as_slice()));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn changed_wants_miss_without_invalidation() {
        let graph = fixture();
        let mut cache = RingCandidateCache::new();
        let wants = vec![object(30)];
        let trace = search().find_traced(&graph, peer(0), &wants, owns_o30);
        cache.store(peer(0), wants, trace);
        assert!(cache.lookup(peer(0), &[object(30), object(31)]).is_none());
        assert_eq!(cache.stats().invalidations, 0);
    }

    #[test]
    fn graph_delta_on_a_dep_invalidates() {
        let mut graph = fixture();
        let mut cache = RingCandidateCache::new();
        let wants = vec![object(30)];
        let trace = search().find_traced(&graph, peer(0), &wants, owns_o30);
        cache.store(peer(0), wants.clone(), trace);
        // A new request at frontier peer 2 dirties it -> entry dropped.
        graph.add_request(peer(3), peer(2), object(40));
        cache.apply_graph_deltas(&mut graph);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 1);
        assert!(cache.lookup(peer(0), &wants).is_none());
    }

    #[test]
    fn graph_delta_outside_the_deps_keeps_the_entry() {
        let mut graph = fixture();
        let mut cache = RingCandidateCache::new();
        let wants = vec![object(30)];
        let trace = search().find_traced(&graph, peer(0), &wants, owns_o30);
        let rings = trace.rings.clone();
        cache.store(peer(0), wants.clone(), trace);
        // An edge between peers the search never visited is irrelevant.
        graph.add_request(peer(8), peer(9), object(90));
        cache.apply_graph_deltas(&mut graph);
        assert_eq!(cache.lookup(peer(0), &wants), Some(rings.as_slice()));
    }

    #[test]
    fn invalidate_peer_drops_every_dependent_root() {
        let mut graph = fixture();
        // Peer 1 also has its own entry: 2 asked 1, and 2 owns what 1 wants.
        let mut cache = RingCandidateCache::new();
        let wants0 = vec![object(30)];
        let wants1 = vec![object(30)];
        cache.store(
            peer(0),
            wants0.clone(),
            search().find_traced(&graph, peer(0), &wants0, owns_o30),
        );
        cache.store(
            peer(1),
            wants1.clone(),
            search().find_traced(&graph, peer(1), &wants1, owns_o30),
        );
        assert_eq!(cache.len(), 2);
        // Peer 2 is in both dependency sets (frontier of both searches).
        cache.invalidate_peer(peer(2));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 2);
        // Stale reverse-index links must not resurrect anything.
        graph.add_request(peer(4), peer(1), object(50));
        cache.apply_graph_deltas(&mut graph);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn holding_delta_for_an_unwanted_object_is_ignored_at_entry_granularity() {
        let graph = fixture();
        let mut entry_cache = RingCandidateCache::with_granularity(CacheGranularity::Entry);
        let mut provider_cache = RingCandidateCache::with_granularity(CacheGranularity::Provider);
        let wants = vec![object(30)];
        for cache in [&mut entry_cache, &mut provider_cache] {
            cache.store(
                peer(0),
                wants.clone(),
                search().find_traced(&graph, peer(0), &wants, owns_o30),
            );
        }
        // Peer 2 completes object 77, which no cached root wants.
        entry_cache.invalidate_holding(peer(2), object(77));
        provider_cache.invalidate_holding(peer(2), object(77));
        assert_eq!(entry_cache.len(), 1, "unwanted holding kills nothing");
        assert_eq!(entry_cache.stats().invalidations, 0);
        assert!(provider_cache.is_empty(), "provider granularity nukes");
        assert_eq!(provider_cache.stats().invalidations, 1);
        // A wanted holding kills the entry in both modes.
        entry_cache.invalidate_holding(peer(2), object(30));
        assert!(entry_cache.is_empty());
        assert_eq!(entry_cache.stats().invalidations, 1);
    }

    #[test]
    fn requester_side_edge_deltas_are_ignored_at_entry_granularity() {
        let mut graph = fixture();
        let mut cache = RingCandidateCache::with_granularity(CacheGranularity::Entry);
        let wants = vec![object(30)];
        let trace = search().find_traced(&graph, peer(0), &wants, owns_o30);
        let rings = trace.rings.clone();
        cache.store(peer(0), wants.clone(), trace);
        // Peer 2 (a dep) issues a request towards an unrelated provider for
        // an unwanted object: only 2's outgoing queue and 9's incoming queue
        // change, neither of which the cached search read.
        graph.add_request(peer(2), peer(9), object(90));
        cache.apply_graph_deltas(&mut graph);
        assert_eq!(cache.lookup(peer(0), &wants), Some(rings.as_slice()));
        assert_eq!(cache.stats().invalidations, 0);
    }

    #[test]
    fn edge_delta_for_a_wanted_object_at_a_probed_peer_invalidates() {
        // Middleman scenario: a probed peer's claim on a wanted object can be
        // backed by its incoming edges, so such an edge delta must kill the
        // entry even though the peer's queue was never read for expansion.
        let mut graph = RequestGraph::new();
        graph.add_request(peer(1), peer(0), object(10));
        graph.add_request(peer(2), peer(1), object(20));
        graph.take_dirty();
        let shallow = RingSearch::new(SearchPolicy::new(3, RingPreference::ShorterFirst));
        let mut cache = RingCandidateCache::with_granularity(CacheGranularity::Entry);
        let wants = vec![object(30)];
        let trace = shallow.find_traced(&graph, peer(0), &wants, owns_o30);
        // Peer 2 sits at the depth bound: probed, but its queue never read.
        assert!(trace.deps.contains(&peer(2)));
        assert!(!trace.edge_deps.contains(&peer(2)));
        cache.store(peer(0), wants.clone(), trace);
        // An edge at peer 2 for the wanted object 30 must invalidate...
        graph.add_request(peer(5), peer(2), object(30));
        cache.apply_graph_deltas(&mut graph);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn iter_entries_exposes_the_stored_traces() {
        let graph = fixture();
        let mut cache = RingCandidateCache::new();
        let wants = vec![object(30)];
        let trace = search().find_traced(&graph, peer(0), &wants, owns_o30);
        cache.store(peer(0), wants.clone(), trace.clone());
        let entries: Vec<_> = cache.iter_entries().collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].root, peer(0));
        assert_eq!(entries[0].wants, wants.as_slice());
        assert_eq!(entries[0].rings, trace.rings.as_slice());
        assert_eq!(entries[0].deps, trace.deps.as_slice());
        assert_eq!(entries[0].edge_deps, trace.edge_deps.as_slice());
    }

    #[test]
    fn store_replaces_and_relinks_dependencies() {
        let graph = fixture();
        let mut cache = RingCandidateCache::new();
        let wants = vec![object(30)];
        cache.store(
            peer(0),
            wants.clone(),
            search().find_traced(&graph, peer(0), &wants, owns_o30),
        );
        // Re-store with a no-ring oracle: the entry must be replaced, and the
        // old dependency links must be gone (no double counting later).
        cache.store(
            peer(0),
            wants.clone(),
            search().find_traced(&graph, peer(0), &wants, |_, _| false),
        );
        assert_eq!(cache.lookup(peer(0), &wants), Some(&[][..]));
        cache.invalidate_peer(peer(2));
        assert_eq!(cache.stats().invalidations, 1);
    }
}
