//! Versioned binary checkpoints of a running [`Simulation`].
//!
//! A snapshot captures the *complete* mutable state of a run — the event
//! queue and clock, every RNG stream, the request graph with its undrained
//! dirty log, the ring-candidate cache (entries *and* counters), all active
//! transfers and rings, per-peer population state, and the report
//! accumulators — such that
//!
//! ```text
//! run to T                ==  run to T/2, checkpoint, restore, run to T
//! ```
//!
//! is **bit-identical**, including [`crate::RingCacheStats`].
//!
//! # What is serialized vs regenerated
//!
//! [`SimSetup::generate`] is a pure function of `(config, setup seed)`, so
//! the snapshot stores only the setup seed: restore regenerates the catalog,
//! behavior assignment and pristine peers, then overwrites everything a run
//! mutates.  Derived indexes that are a pure function of serialized state
//! (the holders index, the per-transfer reverse maps, the maintenance wheel,
//! the search scratches) are rebuilt rather than stored — the search
//! scratches are pure memoization with a warm-equals-cold guarantee, so a
//! resumed run starting cold stays bit-identical.
//!
//! # Wire format
//!
//! Everything is little-endian.  The file starts with a fixed header —
//! magic `XCHGSNAP`, format version (`u32`), setup seed (`u64`), peer count
//! (`u64`) — followed by tagged, length-prefixed sections (`tag: u8`,
//! `len: u64`, payload) in a fixed order.  `f64` values travel as
//! [`f64::to_bits`] so accumulators survive exactly.
//!
//! # Version policy
//!
//! [`SNAPSHOT_VERSION`] must be bumped whenever the layout of any section
//! changes (a field added, removed, reordered, or re-encoded).  Readers
//! reject snapshots from any other version with
//! [`SnapshotError::UnsupportedVersion`] — there is no cross-version
//! migration; checkpoints are an intra-version resume mechanism, not an
//! archival format.  The golden fixture under `crates/sim/tests/golden/`
//! pins the current layout; regenerate it with `UPDATE_SNAPSHOTS=1` when
//! bumping the version.
//!
//! # Error policy
//!
//! Restore never panics on bad input: truncated bytes, a wrong magic, a
//! future version, or any out-of-range index yields an [`Err`].  The
//! checkpoint side can only fail with the underlying writer's I/O error.

// The event loop's panic policy (exchange-lint rule H001): no `.unwrap()` —
// every panicking access carries an `.expect()` stating the invariant that
// makes it unreachable.  Clippy enforces the same contract at module level.
#![deny(clippy::unwrap_used, clippy::get_unwrap)]

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::io::{Read, Write};

use credit::SchedulerState;
use des::{DetRng, EventQueue, Scheduler, SimTime};
use exchange::cheat::WindowedExchange;
use exchange::{ExchangeRing, RequestGraph, RingEdge, SearchTrace};
use metrics::{ClassTally, OnlineStats, SampleSet};
use netsim::TransferSession;
use workload::{CategoryId, ObjectId, PeerId, Storage};

use crate::report::ReportParts;
use crate::{
    BehaviorKind, CapacityClass, PeerClass, SessionEnd, SessionKind, SimConfig, SimReport,
    WantState,
};

use super::events::Event;
use super::ring_cache::{CacheGranularity, RingCacheStats};
use super::transfers::{ActiveRing, ActiveTransfer};
use super::{RingId, SimSetup, Simulation, TransferId};

/// The 8-byte magic that opens every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"XCHGSNAP";

/// The current snapshot format version (see the module docs for the bump
/// policy).
pub const SNAPSHOT_VERSION: u32 = 1;

// Section tags, in their mandatory file order.
const TAG_RNGS: u8 = 1;
const TAG_CATALOG: u8 = 2;
const TAG_PEERS: u8 = 3;
const TAG_GRAPH: u8 = 4;
const TAG_TRANSFERS: u8 = 5;
const TAG_ENGINE: u8 = 6;
const TAG_SCHEDULER: u8 = 7;
const TAG_POPULATION: u8 = 8;
const TAG_RING_CACHE: u8 = 9;
const TAG_REPORT: u8 = 10;

/// Why a checkpoint could not be written or a snapshot could not be restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// The input does not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by a different (usually newer) format
    /// version; see the module docs for the no-migration policy.
    UnsupportedVersion {
        /// The version recorded in the snapshot.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The input ended before the structure it promised.
    Truncated,
    /// The input is structurally well-formed but semantically invalid (an
    /// out-of-range index, a section mismatch, a config that does not match
    /// the snapshot, ...).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a simulation snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build supports {supported})"
            ),
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

// ---- encoding helpers ------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, u8::from(v));
}

fn put_time(buf: &mut Vec<u8>, t: SimTime) {
    put_u64(buf, t.as_micros());
}

fn put_peer(buf: &mut Vec<u8>, p: PeerId) {
    put_u32(buf, p.index());
}

fn put_object(buf: &mut Vec<u8>, o: ObjectId) {
    put_u32(buf, o.index());
}

fn put_stats(buf: &mut Vec<u8>, stats: &OnlineStats) {
    let (count, mean, m2, min, max, sum) = stats.raw_parts();
    put_u64(buf, count);
    put_f64(buf, mean);
    put_f64(buf, m2);
    put_f64(buf, min);
    put_f64(buf, max);
    put_f64(buf, sum);
}

fn put_samples(buf: &mut Vec<u8>, set: &SampleSet) {
    put_usize(buf, set.samples().len());
    for &s in set.samples() {
        put_f64(buf, s);
    }
    put_usize(buf, set.capacity());
    put_u64(buf, set.seen());
}

fn put_event(buf: &mut Vec<u8>, event: Event) {
    match event {
        Event::Arrive(p) => {
            put_u8(buf, 0);
            put_peer(buf, p);
        }
        Event::GenerateRequests(p) => {
            put_u8(buf, 1);
            put_peer(buf, p);
        }
        Event::TrySchedule(p) => {
            put_u8(buf, 2);
            put_peer(buf, p);
        }
        Event::BlockComplete(tid) => {
            put_u8(buf, 3);
            put_u64(buf, tid);
        }
        Event::StorageMaintenance(p) => {
            put_u8(buf, 4);
            put_peer(buf, p);
        }
        Event::Depart(p) => {
            put_u8(buf, 5);
            put_peer(buf, p);
        }
        Event::Rejoin(p) => {
            put_u8(buf, 6);
            put_peer(buf, p);
        }
        Event::Catastrophe => put_u8(buf, 7),
        Event::FlashCrowd => put_u8(buf, 8),
    }
}

fn session_kind_tag(kind: SessionKind) -> (u8, Option<u64>) {
    match kind {
        SessionKind::NonExchange => (0, None),
        SessionKind::Exchange { ring_size } => (1, Some(ring_size as u64)),
    }
}

fn session_end_tag(end: SessionEnd) -> u8 {
    match end {
        SessionEnd::DownloadComplete => 0,
        SessionEnd::RingDissolved => 1,
        SessionEnd::Preempted => 2,
        SessionEnd::SourceLostObject => 3,
        SessionEnd::CheatDetected => 4,
        SessionEnd::HorizonReached => 5,
        SessionEnd::PeerDeparted => 6,
    }
}

fn peer_class_tag(class: PeerClass) -> u8 {
    match class {
        PeerClass::Sharing => 0,
        PeerClass::NonSharing => 1,
    }
}

fn capacity_class_tag(class: CapacityClass) -> u8 {
    match class {
        CapacityClass::Fast => 0,
        CapacityClass::Medium => 1,
        CapacityClass::Slow => 2,
    }
}

fn behavior_kind_tag(kind: BehaviorKind) -> u8 {
    match kind {
        BehaviorKind::Honest => 0,
        BehaviorKind::FreeRider => 1,
        BehaviorKind::JunkSender => 2,
        BehaviorKind::ParticipationCheater => 3,
        BehaviorKind::Middleman => 4,
    }
}

fn granularity_tag(granularity: CacheGranularity) -> u8 {
    match granularity {
        CacheGranularity::Provider => 0,
        CacheGranularity::Entry => 1,
    }
}

// ---- decoding helpers ------------------------------------------------------

/// A bounds-checked cursor over a fully-read snapshot buffer.  Every read
/// returns `Err(Truncated)` instead of indexing past the end.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let bytes = self.take(4)?;
        let arr: [u8; 4] = bytes.try_into().map_err(|_| SnapshotError::Truncated)?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let bytes = self.take(8)?;
        let arr: [u8; 8] = bytes.try_into().map_err(|_| SnapshotError::Truncated)?;
        Ok(u64::from_le_bytes(arr))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(corrupt(format!("invalid boolean byte {v}"))),
        }
    }

    fn time(&mut self) -> Result<SimTime, SnapshotError> {
        Ok(SimTime::from_micros(self.u64()?))
    }

    /// Reads a length prefix, rejecting counts that cannot possibly fit in
    /// the remaining bytes (`min_elem` is a lower bound on the encoded size
    /// of one element) so a corrupt length cannot trigger a huge allocation.
    fn seq_len(&mut self, min_elem: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| SnapshotError::Truncated)?;
        if min_elem > 0 && n > self.remaining() / min_elem {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    /// Reads a peer id, validating it against the population size.
    fn peer(&mut self, num_peers: usize) -> Result<PeerId, SnapshotError> {
        let raw = self.u32()?;
        if (raw as usize) >= num_peers {
            return Err(corrupt(format!(
                "peer id {raw} out of range ({num_peers} peers)"
            )));
        }
        Ok(PeerId::new(raw))
    }

    /// Reads an object id, validating it against the catalog size.
    fn object(&mut self, num_objects: usize) -> Result<ObjectId, SnapshotError> {
        let raw = self.u32()?;
        if (raw as usize) >= num_objects {
            return Err(corrupt(format!(
                "object id {raw} out of range ({num_objects} objects)"
            )));
        }
        Ok(ObjectId::new(raw))
    }

    fn stats(&mut self) -> Result<OnlineStats, SnapshotError> {
        let count = self.u64()?;
        let mean = self.f64()?;
        let m2 = self.f64()?;
        let min = self.f64()?;
        let max = self.f64()?;
        let sum = self.f64()?;
        Ok(OnlineStats::from_raw_parts(count, mean, m2, min, max, sum))
    }

    fn samples(&mut self) -> Result<SampleSet, SnapshotError> {
        let n = self.seq_len(8)?;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(self.f64()?);
        }
        let capacity = self.seq_len(0)?;
        let seen = self.u64()?;
        if capacity == 0 {
            return Err(corrupt("sample-set capacity must be positive"));
        }
        if samples.len() > capacity {
            return Err(corrupt("sample set holds more samples than its capacity"));
        }
        Ok(SampleSet::from_parts(samples, capacity, seen))
    }

    fn event(
        &mut self,
        num_peers: usize,
        num_transfers: TransferId,
    ) -> Result<Event, SnapshotError> {
        match self.u8()? {
            0 => Ok(Event::Arrive(self.peer(num_peers)?)),
            1 => Ok(Event::GenerateRequests(self.peer(num_peers)?)),
            2 => Ok(Event::TrySchedule(self.peer(num_peers)?)),
            3 => {
                let tid = self.u64()?;
                if tid >= num_transfers {
                    return Err(corrupt(format!("event references unknown transfer {tid}")));
                }
                Ok(Event::BlockComplete(tid))
            }
            4 => Ok(Event::StorageMaintenance(self.peer(num_peers)?)),
            5 => Ok(Event::Depart(self.peer(num_peers)?)),
            6 => Ok(Event::Rejoin(self.peer(num_peers)?)),
            7 => Ok(Event::Catastrophe),
            8 => Ok(Event::FlashCrowd),
            t => Err(corrupt(format!("unknown event tag {t}"))),
        }
    }

    fn session_kind(&mut self) -> Result<SessionKind, SnapshotError> {
        match self.u8()? {
            0 => Ok(SessionKind::NonExchange),
            1 => {
                let ring_size = self.seq_len(0)?;
                Ok(SessionKind::Exchange { ring_size })
            }
            t => Err(corrupt(format!("unknown session-kind tag {t}"))),
        }
    }

    fn session_end(&mut self) -> Result<SessionEnd, SnapshotError> {
        match self.u8()? {
            0 => Ok(SessionEnd::DownloadComplete),
            1 => Ok(SessionEnd::RingDissolved),
            2 => Ok(SessionEnd::Preempted),
            3 => Ok(SessionEnd::SourceLostObject),
            4 => Ok(SessionEnd::CheatDetected),
            5 => Ok(SessionEnd::HorizonReached),
            6 => Ok(SessionEnd::PeerDeparted),
            t => Err(corrupt(format!("unknown session-end tag {t}"))),
        }
    }

    fn peer_class(&mut self) -> Result<PeerClass, SnapshotError> {
        match self.u8()? {
            0 => Ok(PeerClass::Sharing),
            1 => Ok(PeerClass::NonSharing),
            t => Err(corrupt(format!("unknown peer-class tag {t}"))),
        }
    }

    fn capacity_class(&mut self) -> Result<CapacityClass, SnapshotError> {
        match self.u8()? {
            0 => Ok(CapacityClass::Fast),
            1 => Ok(CapacityClass::Medium),
            2 => Ok(CapacityClass::Slow),
            t => Err(corrupt(format!("unknown capacity-class tag {t}"))),
        }
    }

    fn behavior_kind(&mut self) -> Result<BehaviorKind, SnapshotError> {
        match self.u8()? {
            0 => Ok(BehaviorKind::Honest),
            1 => Ok(BehaviorKind::FreeRider),
            2 => Ok(BehaviorKind::JunkSender),
            3 => Ok(BehaviorKind::ParticipationCheater),
            4 => Ok(BehaviorKind::Middleman),
            t => Err(corrupt(format!("unknown behavior-kind tag {t}"))),
        }
    }

    fn granularity(&mut self) -> Result<CacheGranularity, SnapshotError> {
        match self.u8()? {
            0 => Ok(CacheGranularity::Provider),
            1 => Ok(CacheGranularity::Entry),
            t => Err(corrupt(format!("unknown cache-granularity tag {t}"))),
        }
    }

    /// Asserts the payload was consumed exactly.
    fn done(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(corrupt(format!(
                "{} trailing bytes after a complete structure",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn write_section<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> Result<(), SnapshotError> {
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

fn read_section<'a>(cur: &mut Cursor<'a>, expected: u8) -> Result<Cursor<'a>, SnapshotError> {
    let tag = cur.u8()?;
    if tag != expected {
        return Err(corrupt(format!(
            "expected section tag {expected}, found {tag}"
        )));
    }
    let len = cur.u64()?;
    let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated)?;
    Ok(Cursor::new(cur.take(len)?))
}

fn put_rng(buf: &mut Vec<u8>, rng: &DetRng) {
    put_u64(buf, rng.seed());
    for word in rng.state() {
        put_u64(buf, word);
    }
}

fn read_rng(cur: &mut Cursor<'_>) -> Result<DetRng, SnapshotError> {
    let seed = cur.u64()?;
    let mut state = [0u64; 4];
    for word in &mut state {
        *word = cur.u64()?;
    }
    Ok(DetRng::from_state(seed, state))
}

fn put_tally(buf: &mut Vec<u8>, tally: &ClassTally<PeerClass>) {
    put_usize(buf, tally.len());
    for (class, stats) in tally.iter() {
        put_u8(buf, peer_class_tag(*class));
        put_stats(buf, stats);
    }
}

fn read_tally(cur: &mut Cursor<'_>) -> Result<ClassTally<PeerClass>, SnapshotError> {
    let n = cur.seq_len(1 + 48)?;
    let mut tally = ClassTally::new();
    for _ in 0..n {
        let class = cur.peer_class()?;
        let stats = cur.stats()?;
        tally.insert_stats(class, stats);
    }
    Ok(tally)
}

impl Simulation {
    /// Serializes the complete run state into `writer` (see the
    /// [module docs](self) for the format).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the writer fails; nothing else can
    /// go wrong on the write side.
    pub fn checkpoint<W: Write>(&self, writer: &mut W) -> Result<(), SnapshotError> {
        writer.write_all(&SNAPSHOT_MAGIC)?;
        writer.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        writer.write_all(&self.setup_seed.to_le_bytes())?;
        writer.write_all(&(self.peers.len() as u64).to_le_bytes())?;

        // RNG streams.
        let mut buf = Vec::new();
        for rng in [
            &self.rng_requests,
            &self.rng_lookup,
            &self.rng_storage,
            &self.rng_churn,
        ] {
            put_rng(&mut buf, rng);
        }
        write_section(writer, TAG_RNGS, &buf)?;

        // Catalog: only the flash-crowd releases beyond the setup catalog.
        buf.clear();
        put_usize(&mut buf, self.setup_objects);
        let released: Vec<_> = self.catalog.iter().skip(self.setup_objects).collect();
        put_usize(&mut buf, released.len());
        for info in released {
            put_u32(&mut buf, info.category.index());
            put_u64(&mut buf, info.size_bytes);
        }
        write_section(writer, TAG_CATALOG, &buf)?;

        // Per-peer mutable state.
        buf.clear();
        for peer in &self.peers {
            put_bool(&mut buf, peer.online);
            put_usize(&mut buf, peer.storage.iter().count());
            for object in peer.storage.iter() {
                put_object(&mut buf, object);
            }
            put_usize(&mut buf, peer.upload_slots.in_use());
            put_usize(&mut buf, peer.download_slots.in_use());
            put_usize(&mut buf, peer.wants.len());
            for (object, want) in &peer.wants {
                put_object(&mut buf, *object);
                put_time(&mut buf, want.issued_at);
                put_u64(&mut buf, want.received_bytes);
                put_usize(&mut buf, want.providers.len());
                for provider in &want.providers {
                    put_peer(&mut buf, *provider);
                }
                put_usize(&mut buf, want.active_sessions);
            }
            put_u64(&mut buf, peer.downloaded_bytes);
            put_u64(&mut buf, peer.uploaded_bytes);
            put_u64(&mut buf, peer.junk_bytes);
            put_u64(&mut buf, peer.ciphertext_bytes);
        }
        write_section(writer, TAG_PEERS, &buf)?;

        // Request graph, including the undrained dirty log.
        buf.clear();
        put_usize(&mut buf, self.graph.len());
        for request in self.graph.iter() {
            put_peer(&mut buf, request.requester);
            put_peer(&mut buf, request.provider);
            put_object(&mut buf, request.object);
        }
        put_u64(&mut buf, self.graph.generation());
        put_usize(&mut buf, self.graph.dirty_peers().len());
        for peer in self.graph.dirty_peers() {
            put_peer(&mut buf, *peer);
        }
        put_usize(&mut buf, self.graph.dirty_edge_log().len());
        for (provider, requester, object) in self.graph.dirty_edge_log() {
            put_peer(&mut buf, *provider);
            put_peer(&mut buf, *requester);
            put_object(&mut buf, *object);
        }
        put_u64(&mut buf, self.drained_generation);
        write_section(writer, TAG_GRAPH, &buf)?;

        // Transfers and rings, in id order.
        buf.clear();
        put_u64(&mut buf, self.next_transfer_id);
        put_u64(&mut buf, self.next_ring_id);
        put_u64(&mut buf, self.transfer_epoch);
        put_u64(&mut buf, self.world_epoch);
        // exchange-lint: allow(D001, reason = "drained into a sorted Vec on the next line; serialized in TransferId order")
        let mut tids: Vec<TransferId> = self.transfers.keys().copied().collect();
        tids.sort_unstable();
        put_usize(&mut buf, tids.len());
        for tid in tids {
            // exchange-lint: allow(H001, reason = "tid drawn from transfers.keys() three lines up")
            let transfer = &self.transfers[&tid];
            put_u64(&mut buf, tid);
            put_peer(&mut buf, transfer.uploader);
            put_peer(&mut buf, transfer.downloader);
            put_object(&mut buf, transfer.object);
            let (kind_tag, ring_size) = session_kind_tag(transfer.kind);
            put_u8(&mut buf, kind_tag);
            if let Some(size) = ring_size {
                put_u64(&mut buf, size);
            }
            match transfer.ring {
                None => put_u8(&mut buf, 0),
                Some(rid) => {
                    put_u8(&mut buf, 1);
                    put_u64(&mut buf, rid);
                }
            }
            put_f64(&mut buf, transfer.session.rate_bytes_per_sec());
            put_u64(&mut buf, transfer.session.block_bytes());
            put_time(&mut buf, transfer.session.started_at());
            put_u64(&mut buf, transfer.session.bytes_transferred());
            match &transfer.validation {
                None => put_u8(&mut buf, 0),
                Some(exchange) => {
                    put_u8(&mut buf, 1);
                    put_u64(&mut buf, exchange.block_bytes());
                    put_u32(&mut buf, exchange.window());
                    put_u32(&mut buf, exchange.max_window());
                    put_u32(&mut buf, exchange.validated_rounds());
                    put_u32(&mut buf, exchange.invalid_blocks());
                }
            }
        }
        // exchange-lint: allow(D001, reason = "drained into a sorted Vec on the next line; serialized in RingId order")
        let mut rids: Vec<RingId> = self.rings.keys().copied().collect();
        rids.sort_unstable();
        put_usize(&mut buf, rids.len());
        for rid in rids {
            // exchange-lint: allow(H001, reason = "rid drawn from rings.keys() three lines up")
            let ring = &self.rings[&rid];
            put_u64(&mut buf, rid);
            put_usize(&mut buf, ring.transfers.len());
            // exchange-lint: allow(D001, reason = "ring.transfers is an ordered Vec, not a map")
            for tid in &ring.transfers {
                put_u64(&mut buf, *tid);
            }
        }
        write_section(writer, TAG_TRANSFERS, &buf)?;

        // DES engine: clock, horizon, delivered counter, pending events.
        buf.clear();
        put_time(&mut buf, self.engine.now());
        match self.engine.horizon() {
            None => put_u8(&mut buf, 0),
            Some(h) => {
                put_u8(&mut buf, 1);
                put_time(&mut buf, h);
            }
        }
        put_u64(&mut buf, self.engine.delivered());
        put_u64(&mut buf, self.engine.queue().next_seq());
        let entries = self.engine.queue().sorted_entries();
        put_usize(&mut buf, entries.len());
        for (time, seq, event) in entries {
            put_time(&mut buf, time);
            put_u64(&mut buf, seq);
            put_event(&mut buf, event);
        }
        write_section(writer, TAG_ENGINE, &buf)?;

        // Upload-scheduler state (credit tables and the like).
        buf.clear();
        match self.scheduler.export_state() {
            SchedulerState::Stateless => put_u8(&mut buf, 0),
            SchedulerState::EmuleCredit(rows) => {
                put_u8(&mut buf, 1);
                put_usize(&mut buf, rows.len());
                for (a, b, up, down) in rows {
                    put_peer(&mut buf, a);
                    put_peer(&mut buf, b);
                    put_u64(&mut buf, up);
                    put_u64(&mut buf, down);
                }
            }
            SchedulerState::TitForTat(rows) => {
                put_u8(&mut buf, 2);
                put_usize(&mut buf, rows.len());
                for (a, b, bytes) in rows {
                    put_peer(&mut buf, a);
                    put_peer(&mut buf, b);
                    put_u64(&mut buf, bytes);
                }
            }
            SchedulerState::ParticipationLevel { reported, honest } => {
                put_u8(&mut buf, 3);
                put_usize(&mut buf, reported.len());
                for (peer, level) in reported {
                    put_peer(&mut buf, peer);
                    put_f64(&mut buf, level);
                }
                put_usize(&mut buf, honest.len());
                for (peer, bytes) in honest {
                    put_peer(&mut buf, peer);
                    put_u64(&mut buf, bytes);
                }
            }
        }
        write_section(writer, TAG_SCHEDULER, &buf)?;

        // Population bookkeeping: armed maintenance/generation flags.
        buf.clear();
        put_usize(&mut buf, self.maintenance_pending.len());
        for &pending in &self.maintenance_pending {
            put_bool(&mut buf, pending);
        }
        put_usize(&mut buf, self.generate_queued.len());
        for &queued in &self.generate_queued {
            put_u32(&mut buf, queued);
        }
        write_section(writer, TAG_POPULATION, &buf)?;

        // Ring-candidate cache: granularity, counters, entries (sorted roots).
        buf.clear();
        put_u8(&mut buf, granularity_tag(self.ring_cache.granularity()));
        let stats = self.ring_cache.stats();
        put_u64(&mut buf, stats.hits);
        put_u64(&mut buf, stats.misses);
        put_u64(&mut buf, stats.invalidations);
        put_usize(&mut buf, self.ring_cache.len());
        for entry in self.ring_cache.iter_entries() {
            put_peer(&mut buf, entry.root);
            put_usize(&mut buf, entry.wants.len());
            for object in entry.wants {
                put_object(&mut buf, *object);
            }
            put_usize(&mut buf, entry.rings.len());
            // exchange-lint: allow(D001, reason = "entry.rings is the cache entry's ordered Vec, not a map")
            for ring in entry.rings {
                put_usize(&mut buf, ring.edges().len());
                for edge in ring.edges() {
                    put_peer(&mut buf, edge.uploader);
                    put_peer(&mut buf, edge.downloader);
                    put_object(&mut buf, edge.object);
                }
            }
            put_usize(&mut buf, entry.deps.len());
            for peer in entry.deps {
                put_peer(&mut buf, *peer);
            }
            put_usize(&mut buf, entry.edge_deps.len());
            for peer in entry.edge_deps {
                put_peer(&mut buf, *peer);
            }
        }
        write_section(writer, TAG_RING_CACHE, &buf)?;

        // Report accumulators.
        buf.clear();
        let parts = self.report.to_parts();
        put_tally(&mut buf, &parts.download_time_min);
        put_usize(&mut buf, parts.capacity_download_min.len());
        for (class, set) in &parts.capacity_download_min {
            put_u8(&mut buf, capacity_class_tag(*class));
            put_samples(&mut buf, set);
        }
        for map in [&parts.waiting_secs, &parts.session_bytes] {
            put_usize(&mut buf, map.len());
            for (kind, set) in map {
                let (tag, ring_size) = session_kind_tag(*kind);
                put_u8(&mut buf, tag);
                if let Some(size) = ring_size {
                    put_u64(&mut buf, size);
                }
                put_samples(&mut buf, set);
            }
        }
        put_usize(&mut buf, parts.session_counts.len());
        for (kind, count) in &parts.session_counts {
            let (tag, ring_size) = session_kind_tag(*kind);
            put_u8(&mut buf, tag);
            if let Some(size) = ring_size {
                put_u64(&mut buf, size);
            }
            put_u64(&mut buf, *count);
        }
        put_usize(&mut buf, parts.session_ends.len());
        for (end, count) in &parts.session_ends {
            put_u8(&mut buf, session_end_tag(*end));
            put_u64(&mut buf, *count);
        }
        put_tally(&mut buf, &parts.volume_per_peer_mb);
        put_usize(&mut buf, parts.behaviors.len());
        for (kind, stats) in &parts.behaviors {
            put_u8(&mut buf, behavior_kind_tag(*kind));
            put_usize(&mut buf, stats.peers);
            put_u64(&mut buf, stats.uploaded_bytes);
            put_u64(&mut buf, stats.downloaded_bytes);
            put_u64(&mut buf, stats.junk_bytes);
            put_u64(&mut buf, stats.ciphertext_bytes);
            put_u64(&mut buf, stats.completed_downloads);
            put_u64(&mut buf, stats.ciphertext_downloads);
            put_u64(&mut buf, stats.cheat_detections);
            put_stats(&mut buf, &stats.download_time_min);
        }
        put_u64(&mut buf, parts.completed_downloads);
        put_usize(&mut buf, parts.rings_formed.len());
        for (size, count) in &parts.rings_formed {
            put_usize(&mut buf, *size);
            put_u64(&mut buf, *count);
        }
        put_u64(&mut buf, parts.token_declines);
        put_u64(&mut buf, parts.rings_dissolved_at_activation);
        put_u64(&mut buf, parts.preemptions);
        put_u64(&mut buf, parts.ring_cache.hits);
        put_u64(&mut buf, parts.ring_cache.misses);
        put_u64(&mut buf, parts.ring_cache.invalidations);
        put_f64(&mut buf, parts.sim_seconds);
        put_usize(&mut buf, parts.peers);
        write_section(writer, TAG_REPORT, &buf)?;

        Ok(())
    }

    /// Rebuilds a simulation from a snapshot previously written by
    /// [`checkpoint`](Self::checkpoint), under the **same** `config` the
    /// checkpointed run used.  Continuing the restored simulation is
    /// bit-identical to continuing the original.
    ///
    /// # Errors
    ///
    /// Returns an error — never panics — when the reader fails, the input is
    /// not a snapshot, was written by a different format version, is
    /// truncated, or is internally inconsistent (including a `config` that
    /// does not match the snapshot's population or cache granularity).
    pub fn restore<R: Read>(
        reader: &mut R,
        config: &SimConfig,
    ) -> Result<Simulation, SnapshotError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        let mut cur = Cursor::new(&bytes);

        // Header.
        let magic = cur.take(8).map_err(|_| SnapshotError::BadMagic)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = cur.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let setup_seed = cur.u64()?;
        let num_peers = usize::try_from(cur.u64()?).map_err(|_| SnapshotError::Truncated)?;
        if num_peers != config.num_peers {
            return Err(corrupt(format!(
                "snapshot holds {num_peers} peers but the config expects {}",
                config.num_peers
            )));
        }
        config
            .validate()
            .map_err(|e| corrupt(format!("invalid config for restore: {e}")))?;

        // Regenerate the pure setup, then overwrite everything a run mutates.
        let setup = SimSetup::generate(config, setup_seed);
        let mut sim = Simulation::from_setup(config.clone(), &setup, setup_seed);

        // RNG streams.
        let mut sec = read_section(&mut cur, TAG_RNGS)?;
        sim.rng_requests = read_rng(&mut sec)?;
        sim.rng_lookup = read_rng(&mut sec)?;
        sim.rng_storage = read_rng(&mut sec)?;
        sim.rng_churn = read_rng(&mut sec)?;
        sec.done()?;

        // Catalog: replay flash-crowd releases on the regenerated catalog.
        let mut sec = read_section(&mut cur, TAG_CATALOG)?;
        let setup_objects = sec.seq_len(0)?;
        if setup_objects != sim.setup_objects {
            return Err(corrupt(format!(
                "snapshot's setup catalog has {setup_objects} objects, regenerated setup has {}",
                sim.setup_objects
            )));
        }
        let released = sec.seq_len(12)?;
        for _ in 0..released {
            let category = sec.u32()?;
            if (category as usize) >= sim.catalog.num_categories() {
                return Err(corrupt(format!(
                    "released object names unknown category {category}"
                )));
            }
            let size = sec.u64()?;
            sim.catalog.release_object(CategoryId::new(category), size);
        }
        sec.done()?;
        let num_objects = sim.catalog.num_objects();

        // Per-peer mutable state.
        let mut sec = read_section(&mut cur, TAG_PEERS)?;
        for i in 0..num_peers {
            // exchange-lint: allow(H001, reason = "i < num_peers == sim.peers.len(), checked in the header")
            let peer = &mut sim.peers[i];
            peer.online = sec.bool()?;
            let stored = sec.seq_len(4)?;
            let mut storage = Storage::new(peer.storage.capacity());
            for _ in 0..stored {
                storage.insert(sec.object(num_objects)?);
            }
            peer.storage = storage;
            let upload_in_use = sec.seq_len(0)?;
            let download_in_use = sec.seq_len(0)?;
            for (pool, in_use) in [
                (&mut peer.upload_slots, upload_in_use),
                (&mut peer.download_slots, download_in_use),
            ] {
                for _ in 0..in_use {
                    pool.reserve()
                        .map_err(|_| corrupt("slot occupancy exceeds the pool capacity"))?;
                }
            }
            let wants = sec.seq_len(4)?;
            let mut want_map = BTreeMap::new();
            for _ in 0..wants {
                let object = sec.object(num_objects)?;
                let issued_at = sec.time()?;
                let received_bytes = sec.u64()?;
                let providers_len = sec.seq_len(4)?;
                let mut providers = Vec::with_capacity(providers_len);
                for _ in 0..providers_len {
                    providers.push(sec.peer(num_peers)?);
                }
                let active_sessions = sec.seq_len(0)?;
                let mut want = WantState::new(issued_at, providers);
                want.received_bytes = received_bytes;
                want.active_sessions = active_sessions;
                if want_map.insert(object, want).is_some() {
                    return Err(corrupt("duplicate want entry"));
                }
            }
            peer.wants = want_map;
            peer.downloaded_bytes = sec.u64()?;
            peer.uploaded_bytes = sec.u64()?;
            peer.junk_bytes = sec.u64()?;
            peer.ciphertext_bytes = sec.u64()?;
        }
        sec.done()?;

        // Rebuild the holders index from the restored storage (sharing and
        // honesty are fixed per behavior, so this is a pure function of the
        // per-peer state just read).
        let mut holders = vec![BTreeSet::new(); num_objects];
        let mut honest_holders = vec![0u32; num_objects];
        for (peer, behavior) in sim.peers.iter().zip(sim.behaviors.iter()) {
            if !peer.sharing || !peer.online {
                continue;
            }
            let honest = behavior.shares_honestly();
            for object in peer.storage.iter() {
                holders[object.as_usize()].insert(peer.id);
                if honest {
                    honest_holders[object.as_usize()] += 1;
                }
            }
        }
        sim.holders = holders;
        sim.honest_holders = honest_holders;

        // Request graph and its undrained dirty log.
        let mut sec = read_section(&mut cur, TAG_GRAPH)?;
        let edges_len = sec.seq_len(12)?;
        let mut edges = Vec::with_capacity(edges_len);
        for _ in 0..edges_len {
            let requester = sec.peer(num_peers)?;
            let provider = sec.peer(num_peers)?;
            let object = sec.object(num_objects)?;
            edges.push((requester, provider, object));
        }
        let generation = sec.u64()?;
        let dirty_len = sec.seq_len(4)?;
        let mut dirty = BTreeSet::new();
        for _ in 0..dirty_len {
            dirty.insert(sec.peer(num_peers)?);
        }
        let dirty_edges_len = sec.seq_len(12)?;
        let mut dirty_edges = BTreeSet::new();
        for _ in 0..dirty_edges_len {
            let provider = sec.peer(num_peers)?;
            let requester = sec.peer(num_peers)?;
            let object = sec.object(num_objects)?;
            dirty_edges.insert((provider, requester, object));
        }
        sim.graph = RequestGraph::from_parts(edges, generation, dirty, dirty_edges);
        sim.drained_generation = sec.u64()?;
        sec.done()?;

        // Transfers and rings; rebuild the reverse indexes as we go.
        let mut sec = read_section(&mut cur, TAG_TRANSFERS)?;
        sim.next_transfer_id = sec.u64()?;
        sim.next_ring_id = sec.u64()?;
        sim.transfer_epoch = sec.u64()?;
        sim.world_epoch = sec.u64()?;
        let transfers_len = sec.seq_len(8)?;
        let mut transfers = HashMap::with_capacity(transfers_len);
        let mut uploads_by_peer: HashMap<PeerId, Vec<TransferId>> = HashMap::new();
        let mut downloads_by_want: HashMap<(PeerId, ObjectId), Vec<TransferId>> = HashMap::new();
        for _ in 0..transfers_len {
            let tid = sec.u64()?;
            if tid >= sim.next_transfer_id {
                return Err(corrupt(format!(
                    "transfer id {tid} not below the id counter"
                )));
            }
            let uploader = sec.peer(num_peers)?;
            let downloader = sec.peer(num_peers)?;
            let object = sec.object(num_objects)?;
            let kind = sec.session_kind()?;
            let ring = match sec.u8()? {
                0 => None,
                1 => {
                    let rid = sec.u64()?;
                    if rid >= sim.next_ring_id {
                        return Err(corrupt(format!("ring id {rid} not below the id counter")));
                    }
                    Some(rid)
                }
                t => Err(corrupt(format!("invalid option tag {t}")))?,
            };
            let rate = sec.f64()?;
            if !rate.is_finite() || rate <= 0.0 {
                return Err(corrupt("transfer rate must be finite and positive"));
            }
            let block_bytes = sec.u64()?;
            if block_bytes == 0 {
                return Err(corrupt("transfer block size must be positive"));
            }
            let started_at = sec.time()?;
            let bytes_transferred = sec.u64()?;
            let mut session = TransferSession::new(rate, block_bytes, started_at);
            if bytes_transferred > 0 {
                session.record_block(bytes_transferred);
            }
            let validation = match sec.u8()? {
                0 => None,
                1 => {
                    let block = sec.u64()?;
                    let window = sec.u32()?;
                    let max_window = sec.u32()?;
                    let validated_rounds = sec.u32()?;
                    let invalid_blocks = sec.u32()?;
                    if block == 0 || max_window == 0 || !(1..=max_window).contains(&window) {
                        return Err(corrupt("invalid validation-window state"));
                    }
                    Some(WindowedExchange::from_parts(
                        block,
                        window,
                        max_window,
                        validated_rounds,
                        invalid_blocks,
                    ))
                }
                t => Err(corrupt(format!("invalid option tag {t}")))?,
            };
            uploads_by_peer.entry(uploader).or_default().push(tid);
            downloads_by_want
                .entry((downloader, object))
                .or_default()
                .push(tid);
            let transfer = ActiveTransfer {
                uploader,
                downloader,
                object,
                kind,
                ring,
                session,
                validation,
            };
            if transfers.insert(tid, transfer).is_some() {
                return Err(corrupt(format!("duplicate transfer id {tid}")));
            }
        }
        // Serialized in ascending id order already; sort defensively so a
        // permuted (corrupt) input cannot smuggle in nondeterminism.
        // exchange-lint: allow(D001, reason = "visit order is irrelevant: each Vec is sorted independently")
        for tids in uploads_by_peer.values_mut() {
            tids.sort_unstable();
        }
        // exchange-lint: allow(D001, reason = "visit order is irrelevant: each Vec is sorted independently")
        for tids in downloads_by_want.values_mut() {
            tids.sort_unstable();
        }
        sim.transfers = transfers;
        sim.uploads_by_peer = uploads_by_peer;
        sim.downloads_by_want = downloads_by_want;
        let rings_len = sec.seq_len(8)?;
        let mut rings = HashMap::with_capacity(rings_len);
        for _ in 0..rings_len {
            let rid = sec.u64()?;
            if rid >= sim.next_ring_id {
                return Err(corrupt(format!("ring id {rid} not below the id counter")));
            }
            let members = sec.seq_len(8)?;
            let mut ring_transfers = Vec::with_capacity(members);
            for _ in 0..members {
                let tid = sec.u64()?;
                if !sim.transfers.contains_key(&tid) {
                    return Err(corrupt(format!("ring references unknown transfer {tid}")));
                }
                ring_transfers.push(tid);
            }
            if rings
                .insert(
                    rid,
                    ActiveRing {
                        transfers: ring_transfers,
                    },
                )
                .is_some()
            {
                return Err(corrupt(format!("duplicate ring id {rid}")));
            }
        }
        sim.rings = rings;
        sec.done()?;

        // DES engine.
        let mut sec = read_section(&mut cur, TAG_ENGINE)?;
        let now = sec.time()?;
        let horizon = match sec.u8()? {
            0 => None,
            1 => Some(sec.time()?),
            t => Err(corrupt(format!("invalid option tag {t}")))?,
        };
        let delivered = sec.u64()?;
        let next_seq = sec.u64()?;
        let entries_len = sec.seq_len(17)?;
        let mut entries = Vec::with_capacity(entries_len);
        for _ in 0..entries_len {
            let time = sec.time()?;
            let seq = sec.u64()?;
            if seq >= next_seq {
                return Err(corrupt(format!(
                    "event sequence {seq} not below the counter"
                )));
            }
            let event = sec.event(num_peers, sim.next_transfer_id)?;
            entries.push((time, seq, event));
        }
        sim.engine = Scheduler::from_parts(
            now,
            horizon,
            delivered,
            EventQueue::from_parts(entries, next_seq),
        );
        sec.done()?;

        // Upload-scheduler state.
        let mut sec = read_section(&mut cur, TAG_SCHEDULER)?;
        let state = match sec.u8()? {
            0 => SchedulerState::Stateless,
            1 => {
                let n = sec.seq_len(24)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let a = sec.peer(num_peers)?;
                    let b = sec.peer(num_peers)?;
                    let up = sec.u64()?;
                    let down = sec.u64()?;
                    rows.push((a, b, up, down));
                }
                SchedulerState::EmuleCredit(rows)
            }
            2 => {
                let n = sec.seq_len(12)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let a = sec.peer(num_peers)?;
                    let b = sec.peer(num_peers)?;
                    let bytes = sec.u64()?;
                    rows.push((a, b, bytes));
                }
                SchedulerState::TitForTat(rows)
            }
            3 => {
                let n = sec.seq_len(12)?;
                let mut reported = Vec::with_capacity(n);
                for _ in 0..n {
                    let peer = sec.peer(num_peers)?;
                    let level = sec.f64()?;
                    reported.push((peer, level));
                }
                let n = sec.seq_len(12)?;
                let mut honest = Vec::with_capacity(n);
                for _ in 0..n {
                    let peer = sec.peer(num_peers)?;
                    let bytes = sec.u64()?;
                    honest.push((peer, bytes));
                }
                SchedulerState::ParticipationLevel { reported, honest }
            }
            t => return Err(corrupt(format!("unknown scheduler-state tag {t}"))),
        };
        sim.scheduler.import_state(state);
        sec.done()?;

        // Population bookkeeping.
        let mut sec = read_section(&mut cur, TAG_POPULATION)?;
        let n = sec.seq_len(1)?;
        if n != num_peers {
            return Err(corrupt(
                "maintenance-pending length does not match the population",
            ));
        }
        let mut maintenance_pending = Vec::with_capacity(n);
        for _ in 0..n {
            maintenance_pending.push(sec.bool()?);
        }
        sim.maintenance_pending = maintenance_pending;
        let n = sec.seq_len(4)?;
        if n != num_peers {
            return Err(corrupt(
                "generate-queued length does not match the population",
            ));
        }
        let mut generate_queued = Vec::with_capacity(n);
        for _ in 0..n {
            generate_queued.push(sec.u32()?);
        }
        sim.generate_queued = generate_queued;
        sec.done()?;

        // Ring-candidate cache: replay the stores (which never touch the
        // counters), then reinstate the captured counters.
        let mut sec = read_section(&mut cur, TAG_RING_CACHE)?;
        let granularity = sec.granularity()?;
        if granularity != sim.ring_cache.granularity() {
            return Err(corrupt(
                "snapshot cache granularity does not match the config",
            ));
        }
        let stats = RingCacheStats {
            hits: sec.u64()?,
            misses: sec.u64()?,
            invalidations: sec.u64()?,
        };
        let entries = sec.seq_len(4)?;
        for _ in 0..entries {
            let root = sec.peer(num_peers)?;
            let wants_len = sec.seq_len(4)?;
            let mut wants = Vec::with_capacity(wants_len);
            for _ in 0..wants_len {
                wants.push(sec.object(num_objects)?);
            }
            let rings_len = sec.seq_len(8)?;
            let mut cached_rings = Vec::with_capacity(rings_len);
            for _ in 0..rings_len {
                let edge_count = sec.seq_len(12)?;
                let mut ring_edges = Vec::with_capacity(edge_count);
                for _ in 0..edge_count {
                    let uploader = sec.peer(num_peers)?;
                    let downloader = sec.peer(num_peers)?;
                    let object = sec.object(num_objects)?;
                    ring_edges.push(RingEdge {
                        uploader,
                        downloader,
                        object,
                    });
                }
                let ring = ExchangeRing::new(ring_edges)
                    .map_err(|e| corrupt(format!("invalid cached ring: {e}")))?;
                cached_rings.push(ring);
            }
            let deps_len = sec.seq_len(4)?;
            let mut deps = Vec::with_capacity(deps_len);
            for _ in 0..deps_len {
                deps.push(sec.peer(num_peers)?);
            }
            let edge_deps_len = sec.seq_len(4)?;
            let mut edge_deps = Vec::with_capacity(edge_deps_len);
            for _ in 0..edge_deps_len {
                edge_deps.push(sec.peer(num_peers)?);
            }
            sim.ring_cache.store(
                root,
                wants,
                SearchTrace {
                    rings: cached_rings,
                    deps,
                    edge_deps,
                },
            );
        }
        sim.ring_cache.set_stats(stats);
        sec.done()?;

        // Report accumulators.
        let mut sec = read_section(&mut cur, TAG_REPORT)?;
        let download_time_min = read_tally(&mut sec)?;
        let n = sec.seq_len(1)?;
        let mut capacity_download_min = BTreeMap::new();
        for _ in 0..n {
            let class = sec.capacity_class()?;
            capacity_download_min.insert(class, sec.samples()?);
        }
        let mut kind_sample_maps = Vec::with_capacity(2);
        for _ in 0..2 {
            let n = sec.seq_len(1)?;
            let mut map = BTreeMap::new();
            for _ in 0..n {
                let kind = sec.session_kind()?;
                map.insert(kind, sec.samples()?);
            }
            kind_sample_maps.push(map);
        }
        let session_bytes = kind_sample_maps.pop().ok_or(SnapshotError::Truncated)?;
        let waiting_secs = kind_sample_maps.pop().ok_or(SnapshotError::Truncated)?;
        let n = sec.seq_len(1)?;
        let mut session_counts = BTreeMap::new();
        for _ in 0..n {
            let kind = sec.session_kind()?;
            session_counts.insert(kind, sec.u64()?);
        }
        let n = sec.seq_len(1)?;
        let mut session_ends = BTreeMap::new();
        for _ in 0..n {
            let end = sec.session_end()?;
            session_ends.insert(end, sec.u64()?);
        }
        let volume_per_peer_mb = read_tally(&mut sec)?;
        let n = sec.seq_len(1)?;
        let mut behaviors = BTreeMap::new();
        for _ in 0..n {
            let kind = sec.behavior_kind()?;
            let peers = sec.seq_len(0)?;
            let uploaded_bytes = sec.u64()?;
            let downloaded_bytes = sec.u64()?;
            let junk_bytes = sec.u64()?;
            let ciphertext_bytes = sec.u64()?;
            let completed_downloads = sec.u64()?;
            let ciphertext_downloads = sec.u64()?;
            let cheat_detections = sec.u64()?;
            let download_time_min = sec.stats()?;
            behaviors.insert(
                kind,
                crate::BehaviorStats {
                    peers,
                    uploaded_bytes,
                    downloaded_bytes,
                    junk_bytes,
                    ciphertext_bytes,
                    completed_downloads,
                    ciphertext_downloads,
                    cheat_detections,
                    download_time_min,
                },
            );
        }
        let completed_downloads = sec.u64()?;
        let n = sec.seq_len(16)?;
        let mut rings_formed = BTreeMap::new();
        for _ in 0..n {
            let size = sec.seq_len(0)?;
            rings_formed.insert(size, sec.u64()?);
        }
        let token_declines = sec.u64()?;
        let rings_dissolved_at_activation = sec.u64()?;
        let preemptions = sec.u64()?;
        let report_cache_stats = RingCacheStats {
            hits: sec.u64()?,
            misses: sec.u64()?,
            invalidations: sec.u64()?,
        };
        let sim_seconds = sec.f64()?;
        let report_peers = sec.seq_len(0)?;
        sim.report = SimReport::from_parts(ReportParts {
            download_time_min,
            capacity_download_min,
            waiting_secs,
            session_bytes,
            session_counts,
            session_ends,
            volume_per_peer_mb,
            behaviors,
            completed_downloads,
            rings_formed,
            token_declines,
            rings_dissolved_at_activation,
            preemptions,
            ring_cache: report_cache_stats,
            sim_seconds,
            peers: report_peers,
        });
        sec.done()?;

        cur.done()?;
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sim() -> Simulation {
        let mut config = SimConfig::quick_test();
        config.sim_duration_s = 120.0;
        Simulation::new(config, 42)
    }

    fn snapshot_of(sim: &Simulation) -> Vec<u8> {
        let mut bytes = Vec::new();
        sim.checkpoint(&mut bytes).expect("Vec writer cannot fail");
        bytes
    }

    #[test]
    fn restore_round_trips_bytes_exactly() {
        let mut sim = quick_sim();
        sim.run_until(SimTime::from_secs_f64(60.0));
        let config = sim.config().clone();
        let bytes = snapshot_of(&sim);
        let restored =
            Simulation::restore(&mut bytes.as_slice(), &config).expect("restore a valid snapshot");
        assert_eq!(snapshot_of(&restored), bytes);
    }

    #[test]
    fn truncated_snapshots_error_at_every_length() {
        let mut sim = quick_sim();
        sim.run_until(SimTime::from_secs_f64(30.0));
        let config = sim.config().clone();
        let bytes = snapshot_of(&sim);
        // Walk a sample of prefixes (every length would be O(n²) in test
        // time); always include the boundary cases.
        let mut cuts: Vec<usize> = (0..bytes.len()).step_by(97).collect();
        cuts.extend([0, 1, 7, 8, 11, 12, bytes.len() - 1]);
        for cut in cuts {
            let truncated = &bytes[..cut];
            let err = Simulation::restore(&mut &truncated[..], &config)
                .err()
                .unwrap_or_else(|| panic!("truncation at {cut} must fail"));
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated | SnapshotError::BadMagic | SnapshotError::Corrupt(_)
                ),
                "unexpected error at cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let sim = quick_sim();
        let config = sim.config().clone();
        let mut bytes = snapshot_of(&sim);
        bytes[0] ^= 0xFF;
        let err = match Simulation::restore(&mut bytes.as_slice(), &config) {
            Ok(_) => panic!("bad magic must fail"),
            Err(e) => e,
        };
        assert!(matches!(err, SnapshotError::BadMagic), "{err}");
    }

    #[test]
    fn future_versions_are_rejected() {
        let sim = quick_sim();
        let config = sim.config().clone();
        let mut bytes = snapshot_of(&sim);
        bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        let err = match Simulation::restore(&mut bytes.as_slice(), &config) {
            Ok(_) => panic!("future version must fail"),
            Err(e) => e,
        };
        assert!(
            matches!(
                err,
                SnapshotError::UnsupportedVersion {
                    found,
                    supported: SNAPSHOT_VERSION,
                } if found == SNAPSHOT_VERSION + 1
            ),
            "{err}"
        );
    }

    #[test]
    fn population_mismatch_is_rejected() {
        let sim = quick_sim();
        let mut other = sim.config().clone();
        other.num_peers += 1;
        let bytes = snapshot_of(&sim);
        let err = match Simulation::restore(&mut bytes.as_slice(), &other) {
            Ok(_) => panic!("population mismatch must fail"),
            Err(e) => e,
        };
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }

    #[test]
    fn random_corruption_never_panics() {
        let mut sim = quick_sim();
        sim.run_until(SimTime::from_secs_f64(30.0));
        let config = sim.config().clone();
        let bytes = snapshot_of(&sim);
        let mut rng = DetRng::seed_from(7);
        for _ in 0..200 {
            let mut corrupted = bytes.clone();
            let pos = (rng.next_u64() as usize) % corrupted.len();
            let bit = rng.next_u64() % 8;
            corrupted[pos] ^= 1 << bit;
            // Either outcome is fine — some flips land in payload values and
            // restore to a different-but-valid state — as long as nothing
            // panics.
            let _ = Simulation::restore(&mut corrupted.as_slice(), &config);
        }
    }
}
