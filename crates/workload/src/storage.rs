//! Per-peer object storage with capacity limits and random eviction.

use std::collections::BTreeSet;

use des::DetRng;
use serde::{Deserialize, Serialize};

use crate::{Catalog, ObjectId, PeerInterests, PowerLawWeights, WorkloadConfig};

/// The set of objects a peer currently stores.
///
/// Capacity is expressed in number of objects (as in the paper's Table II).
/// When over capacity, random objects are evicted, except objects that the
/// owner has *pinned* (the paper postpones removal of objects used in an
/// ongoing exchange).
///
/// # Example
///
/// ```
/// use des::DetRng;
/// use workload::{ObjectId, Storage};
///
/// let mut storage = Storage::new(2);
/// storage.insert(ObjectId::new(1));
/// storage.insert(ObjectId::new(2));
/// storage.insert(ObjectId::new(3));
/// assert_eq!(storage.len(), 3);
///
/// let evicted = storage.evict_over_capacity(&mut DetRng::seed_from(1), |_| false);
/// assert_eq!(evicted.len(), 1);
/// assert_eq!(storage.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Storage {
    capacity: usize,
    objects: BTreeSet<ObjectId>,
}

impl Storage {
    /// Creates an empty store that aims to hold at most `capacity` objects.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Storage {
            capacity,
            objects: BTreeSet::new(),
        }
    }

    /// Populates an initial store according to the peer's category interests,
    /// as the paper does at simulation start: objects from the peer's
    /// categories, biased towards popular ones, up to capacity.
    #[must_use]
    pub fn initial_placement(
        capacity: usize,
        catalog: &Catalog,
        interests: &PeerInterests,
        config: &WorkloadConfig,
        rng: &mut DetRng,
    ) -> Self {
        let mut storage = Storage::new(capacity);
        if capacity == 0 {
            return storage;
        }
        let mut attempts = 0;
        let max_attempts = capacity * 16;
        while storage.len() < capacity && attempts < max_attempts {
            attempts += 1;
            let category = interests.pick_category(rng);
            let objects = catalog.objects_in_category(category);
            if objects.is_empty() {
                continue;
            }
            let weights = PowerLawWeights::new(objects.len(), config.object_popularity_factor);
            let rank = weights.sample_with(rng.gen_unit());
            storage.insert(objects[rank]);
        }
        storage
    }

    /// The capacity in number of objects.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of objects currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Whether the store currently exceeds its capacity.
    #[must_use]
    pub fn over_capacity(&self) -> bool {
        self.objects.len() > self.capacity
    }

    /// Whether `object` is stored.
    #[must_use]
    pub fn contains(&self, object: ObjectId) -> bool {
        self.objects.contains(&object)
    }

    /// Adds `object`; returns `true` if it was not already present.
    ///
    /// Inserting may push the store over capacity; the simulator calls
    /// [`Storage::evict_over_capacity`] at its periodic maintenance interval,
    /// mirroring the paper ("in regular intervals, peers examine their
    /// storage and remove random objects if the maximum is exceeded").
    pub fn insert(&mut self, object: ObjectId) -> bool {
        self.objects.insert(object)
    }

    /// Removes `object`; returns `true` if it was present.
    pub fn remove(&mut self, object: ObjectId) -> bool {
        self.objects.remove(&object)
    }

    /// Evicts uniformly random objects until the store is back within
    /// capacity, skipping objects for which `pinned` returns `true`.
    ///
    /// Returns the evicted objects.
    pub fn evict_over_capacity<F>(&mut self, rng: &mut DetRng, mut pinned: F) -> Vec<ObjectId>
    where
        F: FnMut(ObjectId) -> bool,
    {
        let mut evicted = Vec::new();
        while self.objects.len() > self.capacity {
            let candidates: Vec<ObjectId> = self
                .objects
                .iter()
                .copied()
                .filter(|o| !pinned(*o))
                .collect();
            let Some(victim) = rng.choose(&candidates).copied() else {
                break; // everything pinned: postpone eviction
            };
            self.objects.remove(&victim);
            evicted.push(victim);
        }
        evicted
    }

    /// Iterates over the stored objects in id order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = Storage::new(10);
        assert!(s.insert(ObjectId::new(1)));
        assert!(!s.insert(ObjectId::new(1)));
        assert!(s.contains(ObjectId::new(1)));
        assert!(s.remove(ObjectId::new(1)));
        assert!(!s.remove(ObjectId::new(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn eviction_restores_capacity() {
        let mut s = Storage::new(3);
        for i in 0..10 {
            s.insert(ObjectId::new(i));
        }
        assert!(s.over_capacity());
        let evicted = s.evict_over_capacity(&mut DetRng::seed_from(5), |_| false);
        assert_eq!(evicted.len(), 7);
        assert_eq!(s.len(), 3);
        assert!(!s.over_capacity());
    }

    #[test]
    fn pinned_objects_survive_eviction() {
        let mut s = Storage::new(1);
        s.insert(ObjectId::new(1));
        s.insert(ObjectId::new(2));
        s.insert(ObjectId::new(3));
        let pinned = ObjectId::new(2);
        let evicted = s.evict_over_capacity(&mut DetRng::seed_from(6), |o| o == pinned);
        assert!(!evicted.contains(&pinned));
        assert!(s.contains(pinned));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn eviction_stops_when_everything_is_pinned() {
        let mut s = Storage::new(1);
        s.insert(ObjectId::new(1));
        s.insert(ObjectId::new(2));
        let evicted = s.evict_over_capacity(&mut DetRng::seed_from(7), |_| true);
        assert!(evicted.is_empty());
        assert_eq!(s.len(), 2, "pinned objects must not be evicted");
    }

    #[test]
    fn initial_placement_respects_capacity_and_interests() {
        let config = WorkloadConfig::small();
        let mut rng = DetRng::seed_from(8);
        let catalog = Catalog::generate(&config, &mut rng);
        let interests = PeerInterests::generate(&catalog, &config, &mut rng);
        let storage = Storage::initial_placement(8, &catalog, &interests, &config, &mut rng);
        assert!(storage.len() <= 8);
        assert!(!storage.is_empty());
        for obj in storage.iter() {
            assert!(interests.is_interested_in(catalog.object(obj).category));
        }
    }

    #[test]
    fn zero_capacity_initial_placement_is_empty() {
        let config = WorkloadConfig::small();
        let mut rng = DetRng::seed_from(9);
        let catalog = Catalog::generate(&config, &mut rng);
        let interests = PeerInterests::generate(&catalog, &config, &mut rng);
        let storage = Storage::initial_placement(0, &catalog, &interests, &config, &mut rng);
        assert!(storage.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn eviction_never_leaves_over_capacity_when_nothing_is_pinned(
                capacity in 0usize..20,
                inserts in proptest::collection::vec(0u32..100, 0..50),
                seed in 0u64..1_000,
            ) {
                let mut s = Storage::new(capacity);
                for i in inserts {
                    s.insert(ObjectId::new(i));
                }
                s.evict_over_capacity(&mut DetRng::seed_from(seed), |_| false);
                prop_assert!(s.len() <= capacity);
            }
        }
    }
}
