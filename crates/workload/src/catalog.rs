//! The global content catalog: categories and the objects they contain.

use des::DetRng;
use serde::{Deserialize, Serialize};

use crate::{CategoryId, ObjectId, PowerLawWeights, WorkloadConfig};

/// Metadata of one object in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectInfo {
    /// The object's identifier.
    pub id: ObjectId,
    /// The category the object belongs to.
    pub category: CategoryId,
    /// Popularity rank of the object *within its category* (0 = most popular).
    pub rank_in_category: u32,
    /// Object size in bytes.
    pub size_bytes: u64,
}

/// The immutable catalog of categories and objects used by a simulation run.
///
/// The catalog is generated once from a [`WorkloadConfig`] and a seeded RNG:
/// the number of objects in each category is uniform in the configured range
/// and every object gets the configured (fixed) size.
///
/// # Example
///
/// ```
/// use des::DetRng;
/// use workload::{Catalog, WorkloadConfig};
///
/// let catalog = Catalog::generate(&WorkloadConfig::small(), &mut DetRng::seed_from(3));
/// assert!(catalog.num_objects() > 0);
/// let first = catalog.objects_in_category(workload::CategoryId::new(0))[0];
/// assert_eq!(catalog.object(first).category.index(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    objects: Vec<ObjectInfo>,
    /// For each category, the ids of its objects ordered by popularity rank.
    by_category: Vec<Vec<ObjectId>>,
    category_weights: PowerLawWeights,
}

impl Catalog {
    /// Generates a catalog according to `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`WorkloadConfig::validate`].
    #[must_use]
    pub fn generate(config: &WorkloadConfig, rng: &mut DetRng) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid workload config: {e}"));
        let mut objects = Vec::new();
        let mut by_category = Vec::with_capacity(config.num_categories as usize);
        for cat_index in 0..config.num_categories {
            let category = CategoryId::new(cat_index);
            let (lo, hi) = config.objects_per_category;
            let count = rng.gen_range(lo..=hi);
            let mut ids = Vec::with_capacity(count as usize);
            for rank in 0..count {
                let id = ObjectId::new(objects.len() as u32);
                objects.push(ObjectInfo {
                    id,
                    category,
                    rank_in_category: rank,
                    size_bytes: config.object_size_bytes,
                });
                ids.push(id);
            }
            by_category.push(ids);
        }
        let category_weights = PowerLawWeights::new(
            config.num_categories as usize,
            config.category_popularity_factor,
        );
        Catalog {
            objects,
            by_category,
            category_weights,
        }
    }

    /// Total number of objects across all categories.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of categories.
    #[must_use]
    pub fn num_categories(&self) -> usize {
        self.by_category.len()
    }

    /// Whether `object` is a valid id in this catalog.
    #[must_use]
    pub fn contains(&self, object: ObjectId) -> bool {
        object.as_usize() < self.objects.len()
    }

    /// Metadata of `object`.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this catalog.
    #[must_use]
    pub fn object(&self, object: ObjectId) -> ObjectInfo {
        self.objects[object.as_usize()]
    }

    /// Size of `object` in bytes.
    #[must_use]
    pub fn size_bytes(&self, object: ObjectId) -> u64 {
        self.object(object).size_bytes
    }

    /// The objects of `category`, most popular first.
    ///
    /// # Panics
    ///
    /// Panics if the category id is out of range.
    #[must_use]
    pub fn objects_in_category(&self, category: CategoryId) -> &[ObjectId] {
        &self.by_category[category.as_usize()]
    }

    /// Global popularity weights over categories (by rank = category index).
    #[must_use]
    pub fn category_weights(&self) -> &PowerLawWeights {
        &self.category_weights
    }

    /// Releases a new object into `category` mid-run (a flash-crowd drop).
    ///
    /// The object is appended as the category's least-popular rank — organic
    /// popularity draws pick it up from there; the synthetic burst of
    /// requesters is the caller's job.  Returns the new object's id, which
    /// extends the dense id space by one.
    ///
    /// # Panics
    ///
    /// Panics if the category id is out of range.
    pub fn release_object(&mut self, category: CategoryId, size_bytes: u64) -> ObjectId {
        let ids = &mut self.by_category[category.as_usize()];
        let id = ObjectId::new(self.objects.len() as u32);
        self.objects.push(ObjectInfo {
            id,
            category,
            rank_in_category: ids.len() as u32,
            size_bytes,
        });
        ids.push(id);
        id
    }

    /// Iterates over all objects.
    pub fn iter(&self) -> impl Iterator<Item = &ObjectInfo> {
        self.objects.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_catalog(seed: u64) -> Catalog {
        Catalog::generate(&WorkloadConfig::small(), &mut DetRng::seed_from(seed))
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(small_catalog(9), small_catalog(9));
    }

    #[test]
    fn different_seeds_generally_differ() {
        assert_ne!(small_catalog(1), small_catalog(2));
    }

    #[test]
    fn category_sizes_respect_config_range() {
        let config = WorkloadConfig::small();
        let catalog = Catalog::generate(&config, &mut DetRng::seed_from(4));
        assert_eq!(catalog.num_categories(), config.num_categories as usize);
        for c in 0..config.num_categories {
            let n = catalog.objects_in_category(CategoryId::new(c)).len() as u32;
            assert!(n >= config.objects_per_category.0);
            assert!(n <= config.objects_per_category.1);
        }
    }

    #[test]
    fn objects_know_their_category_and_rank() {
        let catalog = small_catalog(5);
        for c in 0..catalog.num_categories() {
            let cat = CategoryId::new(c as u32);
            for (rank, id) in catalog.objects_in_category(cat).iter().enumerate() {
                let info = catalog.object(*id);
                assert_eq!(info.category, cat);
                assert_eq!(info.rank_in_category as usize, rank);
                assert_eq!(info.id, *id);
            }
        }
    }

    #[test]
    fn object_ids_are_dense_and_valid() {
        let catalog = small_catalog(6);
        for i in 0..catalog.num_objects() {
            assert!(catalog.contains(ObjectId::new(i as u32)));
        }
        assert!(!catalog.contains(ObjectId::new(catalog.num_objects() as u32)));
    }

    #[test]
    fn all_objects_have_configured_size() {
        let config = WorkloadConfig::small();
        let catalog = Catalog::generate(&config, &mut DetRng::seed_from(7));
        assert!(catalog
            .iter()
            .all(|o| o.size_bytes == config.object_size_bytes));
        assert_eq!(
            catalog.size_bytes(ObjectId::new(0)),
            config.object_size_bytes
        );
    }

    #[test]
    fn released_object_joins_its_category_at_last_rank() {
        let mut catalog = small_catalog(8);
        let before = catalog.num_objects();
        let cat = CategoryId::new(0);
        let old_len = catalog.objects_in_category(cat).len();
        let id = catalog.release_object(cat, 123);
        assert_eq!(id.as_usize(), before);
        assert!(catalog.contains(id));
        let info = catalog.object(id);
        assert_eq!(info.category, cat);
        assert_eq!(info.rank_in_category as usize, old_len);
        assert_eq!(info.size_bytes, 123);
        assert_eq!(catalog.objects_in_category(cat).last(), Some(&id));
        assert_eq!(catalog.num_objects(), before + 1);
    }

    #[test]
    #[should_panic(expected = "invalid workload config")]
    fn invalid_config_panics() {
        let mut config = WorkloadConfig::small();
        config.num_categories = 0;
        let _ = Catalog::generate(&config, &mut DetRng::seed_from(1));
    }
}
