//! Workload configuration (the content-related rows of the paper's Table II).

use serde::{Deserialize, Serialize};

/// Parameters of the content catalog and request workload.
///
/// Defaults ([`WorkloadConfig::paper_defaults`]) follow Table II of the paper.
///
/// # Example
///
/// ```
/// use workload::WorkloadConfig;
///
/// let mut config = WorkloadConfig::paper_defaults();
/// assert_eq!(config.num_categories, 300);
/// config.object_popularity_factor = 1.0; // Zipf-like
/// config.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of content categories in the system.
    pub num_categories: u32,
    /// Objects per category are drawn uniformly from this inclusive range.
    pub objects_per_category: (u32, u32),
    /// Categories of interest per peer, drawn uniformly from this inclusive range.
    pub categories_per_peer: (u32, u32),
    /// Power-law factor of the *category* popularity distribution
    /// (0 = uniform, 1 = Zipf-like).
    pub category_popularity_factor: f64,
    /// Power-law factor of the *object-within-category* popularity distribution.
    pub object_popularity_factor: f64,
    /// Size of every object in bytes (the paper uses 20 MB for all objects).
    pub object_size_bytes: u64,
    /// Per-peer storage capacity in number of objects, drawn uniformly from
    /// this inclusive range.
    pub storage_capacity_objects: (u32, u32),
}

impl WorkloadConfig {
    /// The content parameters of Table II in the paper.
    #[must_use]
    pub fn paper_defaults() -> Self {
        WorkloadConfig {
            num_categories: 300,
            objects_per_category: (1, 300),
            categories_per_peer: (1, 8),
            category_popularity_factor: 0.2,
            object_popularity_factor: 0.2,
            object_size_bytes: 20 * 1024 * 1024,
            storage_capacity_objects: (5, 40),
        }
    }

    /// A much smaller catalog, useful for unit tests and fast examples.
    #[must_use]
    pub fn small() -> Self {
        WorkloadConfig {
            num_categories: 20,
            objects_per_category: (1, 20),
            categories_per_peer: (1, 4),
            category_popularity_factor: 0.2,
            object_popularity_factor: 0.2,
            object_size_bytes: 4 * 1024 * 1024,
            storage_capacity_objects: (3, 10),
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_categories == 0 {
            return Err("num_categories must be positive".into());
        }
        for (name, (lo, hi)) in [
            ("objects_per_category", self.objects_per_category),
            ("categories_per_peer", self.categories_per_peer),
            ("storage_capacity_objects", self.storage_capacity_objects),
        ] {
            if lo == 0 || lo > hi {
                return Err(format!(
                    "{name} range ({lo}, {hi}) must satisfy 1 <= lo <= hi"
                ));
            }
        }
        if self.categories_per_peer.1 > self.num_categories {
            return Err(format!(
                "categories_per_peer upper bound {} exceeds num_categories {}",
                self.categories_per_peer.1, self.num_categories
            ));
        }
        for (name, f) in [
            (
                "category_popularity_factor",
                self.category_popularity_factor,
            ),
            ("object_popularity_factor", self.object_popularity_factor),
        ] {
            if !f.is_finite() || f < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {f}"));
            }
        }
        if self.object_size_bytes == 0 {
            return Err("object_size_bytes must be positive".into());
        }
        Ok(())
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_ii() {
        let c = WorkloadConfig::paper_defaults();
        assert_eq!(c.num_categories, 300);
        assert_eq!(c.objects_per_category, (1, 300));
        assert_eq!(c.categories_per_peer, (1, 8));
        assert_eq!(c.category_popularity_factor, 0.2);
        assert_eq!(c.object_popularity_factor, 0.2);
        assert_eq!(c.object_size_bytes, 20 * 1024 * 1024);
        assert_eq!(c.storage_capacity_objects, (5, 40));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn small_config_is_valid() {
        assert!(WorkloadConfig::small().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let mut c = WorkloadConfig::paper_defaults();
        c.objects_per_category = (10, 5);
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::paper_defaults();
        c.categories_per_peer = (1, 500);
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::paper_defaults();
        c.num_categories = 0;
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::paper_defaults();
        c.object_popularity_factor = -0.5;
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::paper_defaults();
        c.object_size_bytes = 0;
        assert!(c.validate().is_err());
    }
}
