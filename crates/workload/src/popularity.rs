//! Truncated power-law ("Zipf-like") popularity weights.

use serde::{Deserialize, Serialize};

/// Normalised popularity weights `p(rank) ∝ rank^-f` over `n` ranks.
///
/// The paper computes the popularity of the item of rank *c* as
/// `p_c = c^-f / Σ_i i^-f`; `f = 0` gives a uniform distribution and `f = 1`
/// a Zipf-like one.  Ranks here are zero-based indices (rank 0 is the most
/// popular item).
///
/// # Example
///
/// ```
/// use workload::PowerLawWeights;
///
/// let w = PowerLawWeights::new(5, 1.0);
/// assert_eq!(w.len(), 5);
/// assert!(w.weight(0) > w.weight(4));
/// let total: f64 = (0..5).map(|i| w.weight(i)).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerLawWeights {
    weights: Vec<f64>,
    factor: f64,
}

impl PowerLawWeights {
    /// Builds normalised weights for `n` ranks with power-law factor `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `factor` is negative or not finite.
    #[must_use]
    pub fn new(n: usize, factor: f64) -> Self {
        assert!(n > 0, "popularity distribution needs at least one rank");
        assert!(
            factor.is_finite() && factor >= 0.0,
            "popularity factor must be finite and non-negative, got {factor}"
        );
        let raw: Vec<f64> = (1..=n).map(|rank| (rank as f64).powf(-factor)).collect();
        let total: f64 = raw.iter().sum();
        let weights = raw.into_iter().map(|w| w / total).collect();
        PowerLawWeights { weights, factor }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the distribution has no ranks (never true for a constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The power-law factor this distribution was built with.
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The normalised probability of the item at zero-based `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of bounds.
    #[must_use]
    pub fn weight(&self, rank: usize) -> f64 {
        self.weights[rank]
    }

    /// All normalised weights, most popular first.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Samples a rank given a uniform draw `u` in `[0, 1)`.
    ///
    /// Exposed separately from any RNG so that callers can use their own
    /// deterministic random streams.
    #[must_use]
    pub fn sample_with(&self, u: f64) -> usize {
        let mut target = u.clamp(0.0, 1.0 - f64::EPSILON);
        for (rank, w) in self.weights.iter().enumerate() {
            if target < *w {
                return rank;
            }
            target -= w;
        }
        self.weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_factor_is_uniform() {
        let w = PowerLawWeights::new(10, 0.0);
        for i in 0..10 {
            assert!((w.weight(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_are_normalised_and_decreasing() {
        for f in [0.2, 0.5, 1.0, 2.0] {
            let w = PowerLawWeights::new(50, f);
            let total: f64 = w.weights().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "factor {f}");
            for i in 1..w.len() {
                assert!(w.weight(i - 1) >= w.weight(i), "factor {f} rank {i}");
            }
        }
    }

    #[test]
    fn higher_factor_is_more_skewed() {
        let flat = PowerLawWeights::new(100, 0.2);
        let steep = PowerLawWeights::new(100, 1.0);
        assert!(steep.weight(0) > flat.weight(0));
        assert!(steep.weight(99) < flat.weight(99));
    }

    #[test]
    fn sample_with_covers_all_ranks() {
        let w = PowerLawWeights::new(4, 0.0);
        assert_eq!(w.sample_with(0.0), 0);
        assert_eq!(w.sample_with(0.30), 1);
        assert_eq!(w.sample_with(0.55), 2);
        assert_eq!(w.sample_with(0.99), 3);
        // Out-of-range draws are clamped.
        assert_eq!(w.sample_with(1.5), 3);
        assert_eq!(w.sample_with(-0.5), 0);
    }

    #[test]
    fn single_rank_distribution() {
        let w = PowerLawWeights::new(1, 1.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.weight(0), 1.0);
        assert_eq!(w.sample_with(0.7), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panic() {
        let _ = PowerLawWeights::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_factor_panics() {
        let _ = PowerLawWeights::new(5, -1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn sampling_respects_bounds(n in 1usize..200, f in 0.0f64..2.0, u in 0.0f64..1.0) {
                let w = PowerLawWeights::new(n, f);
                let rank = w.sample_with(u);
                prop_assert!(rank < n);
            }

            #[test]
            fn normalisation_holds(n in 1usize..500, f in 0.0f64..3.0) {
                let w = PowerLawWeights::new(n, f);
                let total: f64 = w.weights().iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-6);
            }
        }
    }
}
