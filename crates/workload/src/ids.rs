//! Identifier newtypes shared across the simulator.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw index.
            #[must_use]
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// The raw index.
            #[must_use]
            pub const fn index(self) -> u32 {
                self.0
            }

            /// The raw index as a `usize`, convenient for indexing vectors.
            #[must_use]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                $name(index)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifies a peer (node) in the file-sharing system.
    PeerId,
    "P"
);

id_type!(
    /// Identifies a shared object (file).
    ObjectId,
    "o"
);

id_type!(
    /// Identifies a content category.
    CategoryId,
    "c"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trips_raw_index() {
        let p = PeerId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.as_usize(), 7);
        assert_eq!(u32::from(p), 7);
        assert_eq!(PeerId::from(7u32), p);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(PeerId::new(3).to_string(), "P3");
        assert_eq!(ObjectId::new(5).to_string(), "o5");
        assert_eq!(CategoryId::new(1).to_string(), "c1");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(ObjectId::new(1) < ObjectId::new(2));
        let set: HashSet<PeerId> = [PeerId::new(1), PeerId::new(1), PeerId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn different_id_types_are_distinct_types() {
        // This is a compile-time property; the test documents the intent.
        fn takes_peer(_p: PeerId) {}
        takes_peer(PeerId::new(0));
    }
}
