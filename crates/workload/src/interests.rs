//! Per-peer category interests and local preference distributions.

use des::DetRng;
use serde::{Deserialize, Serialize};

use crate::{Catalog, CategoryId, WorkloadConfig};

/// The categories a peer is interested in, with its local preference weights.
///
/// Following the paper, each peer is assigned a number of categories (uniform
/// in the configured range) chosen according to *global* category popularity,
/// plus an independent *local* preference distribution with uniformly random
/// weights over those categories.  Requests pick a category from the local
/// preference distribution first.
///
/// # Example
///
/// ```
/// use des::DetRng;
/// use workload::{Catalog, PeerInterests, WorkloadConfig};
///
/// let config = WorkloadConfig::small();
/// let mut rng = DetRng::seed_from(7);
/// let catalog = Catalog::generate(&config, &mut rng);
/// let interests = PeerInterests::generate(&catalog, &config, &mut rng);
/// assert!(!interests.categories().is_empty());
/// let picked = interests.pick_category(&mut rng);
/// assert!(interests.categories().contains(&picked));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerInterests {
    categories: Vec<CategoryId>,
    local_preference: Vec<f64>,
}

impl PeerInterests {
    /// Generates interests for one peer.
    #[must_use]
    pub fn generate(catalog: &Catalog, config: &WorkloadConfig, rng: &mut DetRng) -> Self {
        let (lo, hi) = config.categories_per_peer;
        let count = rng.gen_range(lo..=hi).min(catalog.num_categories() as u32) as usize;
        Self::generate_with_count(catalog, count, rng)
    }

    /// Generates interests with an explicit number of categories (used by the
    /// Figure 11 sweep over categories-per-peer).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn generate_with_count(catalog: &Catalog, count: usize, rng: &mut DetRng) -> Self {
        assert!(
            count > 0,
            "a peer must be interested in at least one category"
        );
        let count = count.min(catalog.num_categories());
        let weights = catalog.category_weights();
        let mut categories: Vec<CategoryId> = Vec::with_capacity(count);
        // Sample distinct categories proportionally to global popularity.
        let mut remaining: Vec<(usize, f64)> = (0..catalog.num_categories())
            .map(|i| (i, weights.weight(i)))
            .collect();
        for _ in 0..count {
            let ws: Vec<f64> = remaining.iter().map(|(_, w)| *w).collect();
            let pick = rng
                .choose_weighted_index(&ws)
                .expect("remaining category weights are positive");
            let (cat_index, _) = remaining.swap_remove(pick);
            categories.push(CategoryId::new(cat_index as u32));
        }
        let local_preference: Vec<f64> = (0..categories.len())
            .map(|_| rng.gen_unit().max(1e-6))
            .collect();
        PeerInterests {
            categories,
            local_preference,
        }
    }

    /// The categories this peer is interested in.
    #[must_use]
    pub fn categories(&self) -> &[CategoryId] {
        &self.categories
    }

    /// The (unnormalised) local preference weight of each category, aligned
    /// with [`PeerInterests::categories`].
    #[must_use]
    pub fn local_preference(&self) -> &[f64] {
        &self.local_preference
    }

    /// Whether the peer is interested in `category`.
    #[must_use]
    pub fn is_interested_in(&self, category: CategoryId) -> bool {
        self.categories.contains(&category)
    }

    /// Picks a category according to the local preference distribution.
    pub fn pick_category(&self, rng: &mut DetRng) -> CategoryId {
        let idx = rng
            .choose_weighted_index(&self.local_preference)
            .expect("local preference weights are positive");
        self.categories[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(seed: u64) -> (Catalog, WorkloadConfig, DetRng) {
        let config = WorkloadConfig::small();
        let mut rng = DetRng::seed_from(seed);
        let catalog = Catalog::generate(&config, &mut rng);
        (catalog, config, rng)
    }

    #[test]
    fn categories_are_distinct_and_within_range() {
        let (catalog, config, mut rng) = setup(11);
        for _ in 0..50 {
            let interests = PeerInterests::generate(&catalog, &config, &mut rng);
            let n = interests.categories().len() as u32;
            assert!(n >= config.categories_per_peer.0);
            assert!(n <= config.categories_per_peer.1);
            let mut seen = interests.categories().to_vec();
            seen.sort();
            seen.dedup();
            assert_eq!(
                seen.len(),
                interests.categories().len(),
                "categories must be distinct"
            );
            assert_eq!(
                interests.local_preference().len(),
                interests.categories().len()
            );
        }
    }

    #[test]
    fn explicit_count_is_respected() {
        let (catalog, _config, mut rng) = setup(12);
        let interests = PeerInterests::generate_with_count(&catalog, 3, &mut rng);
        assert_eq!(interests.categories().len(), 3);
    }

    #[test]
    fn count_is_clamped_to_catalog() {
        let (catalog, _config, mut rng) = setup(13);
        let interests = PeerInterests::generate_with_count(&catalog, 10_000, &mut rng);
        assert_eq!(interests.categories().len(), catalog.num_categories());
    }

    #[test]
    fn pick_category_only_returns_interests() {
        let (catalog, config, mut rng) = setup(14);
        let interests = PeerInterests::generate(&catalog, &config, &mut rng);
        for _ in 0..100 {
            let c = interests.pick_category(&mut rng);
            assert!(interests.is_interested_in(c));
        }
    }

    #[test]
    fn popular_categories_are_selected_more_often() {
        // With a strongly skewed category distribution, category 0 should be
        // picked as an interest far more often than the least popular one.
        let mut config = WorkloadConfig::small();
        config.category_popularity_factor = 1.5;
        config.categories_per_peer = (1, 1);
        let mut rng = DetRng::seed_from(15);
        let catalog = Catalog::generate(&config, &mut rng);
        let mut first = 0;
        let mut last = 0;
        for _ in 0..500 {
            let interests = PeerInterests::generate(&catalog, &config, &mut rng);
            if interests.categories()[0] == CategoryId::new(0) {
                first += 1;
            }
            if interests.categories()[0] == CategoryId::new(config.num_categories - 1) {
                last += 1;
            }
        }
        assert!(first > last, "popular category picked {first} vs {last}");
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn zero_count_panics() {
        let (catalog, _config, mut rng) = setup(16);
        let _ = PeerInterests::generate_with_count(&catalog, 0, &mut rng);
    }
}
