//! Bloom filters and leveled request-tree summaries.
//!
//! Section V of the paper proposes compressing the request tree that peers
//! piggy-back on their requests: instead of shipping the full tree, a peer
//! ships one Bloom filter *per tree level* summarising the peers present at
//! that level.  A provider can then detect that a cycle exists (some peer in
//! the summarised tree owns an object it wants) without knowing the full ring
//! membership, and resolve the ring hop-by-hop with next-hop lookups.
//!
//! This crate provides:
//!
//! * [`BloomFilter`] — a classic Bloom filter over arbitrary hashable items
//!   with double hashing, unions, and false-positive-rate estimation.
//! * [`LeveledSummary`] — a stack of Bloom filters, one per request-tree
//!   level, with the *shift* operation from the paper's footnote (trimming one
//!   level when the tree is re-rooted for an outgoing request).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod filter;
mod leveled;

pub use filter::{BloomFilter, BloomParams};
pub use leveled::LeveledSummary;
