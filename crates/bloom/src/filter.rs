//! A classic Bloom filter with double hashing.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

use serde::{Deserialize, Serialize};

/// Sizing parameters of a [`BloomFilter`].
///
/// # Example
///
/// ```
/// use bloom::BloomParams;
///
/// // Space for ~100 items at a ~1% false positive rate.
/// let params = BloomParams::optimal(100, 0.01);
/// assert!(params.bits >= 900);
/// assert!(params.hashes >= 6 && params.hashes <= 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BloomParams {
    /// Number of bits in the filter.
    pub bits: usize,
    /// Number of hash functions.
    pub hashes: u32,
}

impl BloomParams {
    /// Computes the standard optimal parameters for `expected_items` insertions
    /// at target false-positive probability `fpp`.
    ///
    /// # Panics
    ///
    /// Panics if `expected_items` is zero or `fpp` is not in `(0, 1)`.
    #[must_use]
    pub fn optimal(expected_items: usize, fpp: f64) -> Self {
        assert!(expected_items > 0, "expected_items must be positive");
        assert!(
            fpp > 0.0 && fpp < 1.0,
            "false positive probability must be in (0, 1), got {fpp}"
        );
        let n = expected_items as f64;
        let ln2 = std::f64::consts::LN_2;
        let bits = (-(n * fpp.ln()) / (ln2 * ln2)).ceil().max(8.0) as usize;
        let hashes = ((bits as f64 / n) * ln2).round().max(1.0) as u32;
        BloomParams { bits, hashes }
    }
}

impl Default for BloomParams {
    /// Parameters suitable for summarising a typical incoming-request queue
    /// (up to ~256 peers at ~1% false positives).
    fn default() -> Self {
        BloomParams::optimal(256, 0.01)
    }
}

/// A Bloom filter over items of type `T`.
///
/// The filter never yields false negatives: if an item was inserted,
/// [`BloomFilter::contains`] returns `true`.  It may yield false positives
/// with a probability controlled by [`BloomParams`].
///
/// # Example
///
/// ```
/// use bloom::{BloomFilter, BloomParams};
///
/// let mut f = BloomFilter::new(BloomParams::optimal(10, 0.01));
/// f.insert(&"alice");
/// assert!(f.contains(&"alice"));
/// assert_eq!(f.inserted(), 1);
/// ```
#[derive(Debug, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct BloomFilter<T: ?Sized = [u8]> {
    params: BloomParams,
    words: Vec<u64>,
    inserted: usize,
    #[serde(skip)]
    _marker: PhantomData<fn(&T)>,
}

// Manual impls: the filter never stores a `T`, so it is clonable and
// comparable regardless of what `T` implements.
impl<T: ?Sized> Clone for BloomFilter<T> {
    fn clone(&self) -> Self {
        BloomFilter {
            params: self.params,
            words: self.words.clone(),
            inserted: self.inserted,
            _marker: PhantomData,
        }
    }
}

impl<T: ?Sized> PartialEq for BloomFilter<T> {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params && self.words == other.words && self.inserted == other.inserted
    }
}

impl<T: ?Sized> Eq for BloomFilter<T> {}

impl<T: Hash + ?Sized> BloomFilter<T> {
    /// Creates an empty filter with the given parameters.
    #[must_use]
    pub fn new(params: BloomParams) -> Self {
        let words = params.bits.div_ceil(64);
        BloomFilter {
            params,
            words: vec![0; words.max(1)],
            inserted: 0,
            _marker: PhantomData,
        }
    }

    /// Creates a filter sized for `expected_items` at false-positive rate `fpp`
    /// and inserts every item of the iterator.
    pub fn from_items<'a, I>(items: I, fpp: f64) -> Self
    where
        I: IntoIterator<Item = &'a T>,
        T: 'a,
    {
        let items: Vec<&T> = items.into_iter().collect();
        let mut filter = BloomFilter::new(BloomParams::optimal(items.len().max(1), fpp));
        for item in items {
            filter.insert(item);
        }
        filter
    }

    /// The sizing parameters of this filter.
    #[must_use]
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Number of items inserted so far (not deduplicated).
    #[must_use]
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Whether no item has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Inserts `item` into the filter.
    pub fn insert(&mut self, item: &T) {
        let (h1, h2) = self.hash_pair(item);
        for k in 0..self.params.hashes {
            let bit = self.bit_index(h1, h2, k);
            self.words[bit / 64] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Tests whether `item` may have been inserted.
    ///
    /// `false` means definitely not present; `true` means present with high
    /// probability (false positives possible).
    #[must_use]
    pub fn contains(&self, item: &T) -> bool {
        let (h1, h2) = self.hash_pair(item);
        (0..self.params.hashes).all(|k| {
            let bit = self.bit_index(h1, h2, k);
            self.words[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Merges another filter into this one (bitwise OR).
    ///
    /// After the union, every item present in either filter is reported as
    /// present.
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different parameters.
    pub fn union_with(&mut self, other: &BloomFilter<T>) {
        assert_eq!(
            self.params, other.params,
            "cannot union Bloom filters with different parameters"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
        self.inserted += other.inserted;
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }

    /// Fraction of bits set; a load indicator (1.0 = saturated).
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        f64::from(set) / self.params.bits as f64
    }

    /// Estimated probability that a lookup for an item that was never inserted
    /// returns `true`, given the current fill level.
    #[must_use]
    pub fn estimated_fpp(&self) -> f64 {
        self.fill_ratio().powi(self.params.hashes as i32)
    }

    /// Size of the bit array in bytes (the wire cost of shipping the filter).
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }

    fn hash_pair(&self, item: &T) -> (u64, u64) {
        let mut h1 = DefaultHasher::new();
        item.hash(&mut h1);
        let h1 = h1.finish();
        let mut h2 = DefaultHasher::new();
        // Decorrelate the second hash by salting with a constant.
        0xdead_beef_cafe_f00du64.hash(&mut h2);
        item.hash(&mut h2);
        let h2 = h2.finish() | 1; // ensure odd so strides cover the table
        (h1, h2)
    }

    fn bit_index(&self, h1: u64, h2: u64, k: u32) -> usize {
        let combined = h1.wrapping_add(h2.wrapping_mul(u64::from(k)));
        (combined % self.params.bits as u64) as usize
    }
}

impl<T: Hash + ?Sized> Default for BloomFilter<T> {
    fn default() -> Self {
        BloomFilter::new(BloomParams::default())
    }
}

impl<'a, T: Hash + 'a + ?Sized> Extend<&'a T> for BloomFilter<T> {
    fn extend<I: IntoIterator<Item = &'a T>>(&mut self, iter: I) {
        for item in iter {
            self.insert(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_on_small_set() {
        let mut f: BloomFilter<u32> = BloomFilter::new(BloomParams::optimal(100, 0.01));
        for i in 0..100u32 {
            f.insert(&i);
        }
        for i in 0..100u32 {
            assert!(f.contains(&i), "inserted item {i} must be found");
        }
    }

    #[test]
    fn empty_filter_contains_nothing_claimed() {
        let f: BloomFilter<u32> = BloomFilter::default();
        assert!(f.is_empty());
        assert!(!f.contains(&42));
        assert_eq!(f.estimated_fpp(), 0.0);
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut f: BloomFilter<u64> = BloomFilter::new(BloomParams::optimal(500, 0.01));
        for i in 0..500u64 {
            f.insert(&i);
        }
        let false_positives = (10_000u64..20_000).filter(|i| f.contains(i)).count();
        let rate = false_positives as f64 / 10_000.0;
        assert!(
            rate < 0.05,
            "observed fp rate {rate} too high for 1% target"
        );
    }

    #[test]
    fn union_reports_items_from_both() {
        let params = BloomParams::optimal(64, 0.01);
        let mut a: BloomFilter<u32> = BloomFilter::new(params);
        let mut b: BloomFilter<u32> = BloomFilter::new(params);
        a.insert(&1);
        b.insert(&2);
        a.union_with(&b);
        assert!(a.contains(&1));
        assert!(a.contains(&2));
        assert_eq!(a.inserted(), 2);
    }

    #[test]
    #[should_panic(expected = "different parameters")]
    fn union_with_mismatched_params_panics() {
        let mut a: BloomFilter<u32> = BloomFilter::new(BloomParams::optimal(10, 0.01));
        let b: BloomFilter<u32> = BloomFilter::new(BloomParams::optimal(1_000, 0.01));
        a.union_with(&b);
    }

    #[test]
    fn clear_resets() {
        let mut f: BloomFilter<u32> = BloomFilter::default();
        f.insert(&7);
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(&7));
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn optimal_params_scale_with_items_and_fpp() {
        let loose = BloomParams::optimal(100, 0.1);
        let tight = BloomParams::optimal(100, 0.001);
        assert!(tight.bits > loose.bits);
        assert!(tight.hashes >= loose.hashes);
        let big = BloomParams::optimal(10_000, 0.01);
        assert!(big.bits > BloomParams::optimal(100, 0.01).bits);
    }

    #[test]
    fn from_items_collects_everything() {
        let items: Vec<String> = (0..50).map(|i| format!("peer-{i}")).collect();
        let f = BloomFilter::from_items(items.iter().map(String::as_str), 0.01);
        for item in &items {
            assert!(f.contains(item.as_str()));
        }
    }

    #[test]
    fn byte_size_matches_bits() {
        let f: BloomFilter<u32> = BloomFilter::new(BloomParams {
            bits: 128,
            hashes: 3,
        });
        assert_eq!(f.byte_size(), 16);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn never_false_negative(items in proptest::collection::hash_set(0u64..1_000_000, 1..200)) {
                let mut f: BloomFilter<u64> = BloomFilter::new(BloomParams::optimal(items.len(), 0.01));
                for item in &items {
                    f.insert(item);
                }
                for item in &items {
                    prop_assert!(f.contains(item));
                }
            }

            #[test]
            fn union_is_superset(
                xs in proptest::collection::vec(0u64..10_000, 0..50),
                ys in proptest::collection::vec(0u64..10_000, 0..50),
            ) {
                let params = BloomParams::optimal(128, 0.01);
                let mut a: BloomFilter<u64> = BloomFilter::new(params);
                let mut b: BloomFilter<u64> = BloomFilter::new(params);
                for x in &xs { a.insert(x); }
                for y in &ys { b.insert(y); }
                let mut u = a.clone();
                u.union_with(&b);
                for item in xs.iter().chain(ys.iter()) {
                    prop_assert!(u.contains(item));
                }
            }
        }
    }
}
