//! Per-level Bloom summaries of a request tree.

use std::hash::Hash;

use serde::{Deserialize, Serialize};

use crate::{BloomFilter, BloomParams};

/// A stack of Bloom filters, one per request-tree level.
///
/// Level 0 summarises the peers that issued requests directly to the owner of
/// the summary (the owner's incoming-request queue); level 1 summarises the
/// peers one hop further away, and so on.  Following the paper's footnote,
/// a distinct filter per level lets a peer:
///
/// * *shift* the summary by one level when re-rooting the tree for an
///   outgoing request (its own requesters become the requesters of the peer it
///   is asking), and
/// * bound the depth of the ring search without shipping the tree structure.
///
/// # Example
///
/// ```
/// use bloom::LeveledSummary;
///
/// let mut summary: LeveledSummary<u32> = LeveledSummary::new(5);
/// summary.insert(0, &7);   // peer 7 requested directly from us
/// summary.insert(1, &9);   // peer 9 requested from peer 7
///
/// assert!(summary.contains(&7));
/// assert_eq!(summary.depth_of(&9), Some(1));
///
/// // Re-root for an outgoing request: everything moves one level deeper.
/// let shifted = summary.shifted();
/// assert_eq!(shifted.depth_of(&7), Some(1));
/// ```
#[derive(Debug, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct LeveledSummary<T: Hash> {
    levels: Vec<BloomFilter<T>>,
    params: BloomParams,
    max_levels: usize,
}

// Manual Clone/PartialEq: the summary never stores a `T`, so no bounds on `T`
// beyond `Hash` are needed.
impl<T: Hash> Clone for LeveledSummary<T> {
    fn clone(&self) -> Self {
        LeveledSummary {
            levels: self.levels.clone(),
            params: self.params,
            max_levels: self.max_levels,
        }
    }
}

impl<T: Hash> PartialEq for LeveledSummary<T> {
    fn eq(&self, other: &Self) -> bool {
        self.levels == other.levels
            && self.params == other.params
            && self.max_levels == other.max_levels
    }
}

impl<T: Hash> Eq for LeveledSummary<T> {}

impl<T: Hash> LeveledSummary<T> {
    /// Creates an empty summary bounded to `max_levels` levels with default
    /// filter sizing.
    #[must_use]
    pub fn new(max_levels: usize) -> Self {
        Self::with_params(max_levels, BloomParams::default())
    }

    /// Creates an empty summary with explicit per-level filter parameters.
    #[must_use]
    pub fn with_params(max_levels: usize, params: BloomParams) -> Self {
        LeveledSummary {
            levels: Vec::new(),
            params,
            max_levels: max_levels.max(1),
        }
    }

    /// Maximum number of levels this summary can carry.
    #[must_use]
    pub fn max_levels(&self) -> usize {
        self.max_levels
    }

    /// Number of levels currently populated.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Whether no peer has been recorded at any level.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(BloomFilter::is_empty)
    }

    /// Records `item` (a peer identifier) at tree depth `level`.
    ///
    /// Inserts beyond [`LeveledSummary::max_levels`] are silently dropped:
    /// they correspond to peers too far away to join a bounded-size ring.
    pub fn insert(&mut self, level: usize, item: &T) {
        if level >= self.max_levels {
            return;
        }
        while self.levels.len() <= level {
            self.levels.push(BloomFilter::new(self.params));
        }
        self.levels[level].insert(item);
    }

    /// Whether `item` appears at any level (subject to false positives).
    #[must_use]
    pub fn contains(&self, item: &T) -> bool {
        self.levels.iter().any(|f| f.contains(item))
    }

    /// The shallowest level at which `item` appears, if any.
    ///
    /// The level corresponds to the number of intermediate peers in the
    /// exchange ring: a hit at level 0 is a pairwise exchange, level 1 a
    /// 3-way ring, and so on.
    #[must_use]
    pub fn depth_of(&self, item: &T) -> Option<usize> {
        self.levels.iter().position(|f| f.contains(item))
    }

    /// Returns a copy with every level pushed one deeper and an empty level 0.
    ///
    /// This is the re-rooting operation performed when a peer forwards its own
    /// request tree as part of an outgoing request.  Levels that would exceed
    /// [`LeveledSummary::max_levels`] are discarded.
    #[must_use]
    pub fn shifted(&self) -> Self {
        let mut levels = Vec::with_capacity((self.levels.len() + 1).min(self.max_levels));
        levels.push(BloomFilter::new(self.params));
        for filter in &self.levels {
            if levels.len() >= self.max_levels {
                break;
            }
            levels.push(filter.clone());
        }
        LeveledSummary {
            levels,
            params: self.params,
            max_levels: self.max_levels,
        }
    }

    /// Merges another summary level-by-level.
    ///
    /// # Panics
    ///
    /// Panics if the summaries were built with different filter parameters.
    pub fn merge(&mut self, other: &LeveledSummary<T>) {
        assert_eq!(
            self.params, other.params,
            "cannot merge leveled summaries with different Bloom parameters"
        );
        for (level, filter) in other.levels.iter().enumerate() {
            if level >= self.max_levels {
                break;
            }
            while self.levels.len() <= level {
                self.levels.push(BloomFilter::new(self.params));
            }
            self.levels[level].union_with(filter);
        }
    }

    /// Total wire size of all level filters in bytes.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.levels.iter().map(BloomFilter::byte_size).sum()
    }
}

impl<T: Hash> Default for LeveledSummary<T> {
    fn default() -> Self {
        LeveledSummary::new(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query_by_level() {
        let mut s: LeveledSummary<u32> = LeveledSummary::new(3);
        s.insert(0, &1);
        s.insert(1, &2);
        s.insert(2, &3);
        assert_eq!(s.depth_of(&1), Some(0));
        assert_eq!(s.depth_of(&2), Some(1));
        assert_eq!(s.depth_of(&3), Some(2));
        assert_eq!(s.depth_of(&4), None);
        assert_eq!(s.depth(), 3);
    }

    #[test]
    fn inserts_beyond_max_levels_are_dropped() {
        let mut s: LeveledSummary<u32> = LeveledSummary::new(2);
        s.insert(5, &42);
        assert!(s.is_empty());
        assert!(!s.contains(&42));
    }

    #[test]
    fn shifted_moves_everything_one_level_deeper() {
        let mut s: LeveledSummary<u32> = LeveledSummary::new(4);
        s.insert(0, &10);
        s.insert(1, &20);
        let shifted = s.shifted();
        assert_eq!(shifted.depth_of(&10), Some(1));
        assert_eq!(shifted.depth_of(&20), Some(2));
        // Original is untouched.
        assert_eq!(s.depth_of(&10), Some(0));
    }

    #[test]
    fn shifted_discards_deepest_level_at_capacity() {
        let mut s: LeveledSummary<u32> = LeveledSummary::new(2);
        s.insert(0, &1);
        s.insert(1, &2);
        let shifted = s.shifted();
        assert_eq!(shifted.depth_of(&1), Some(1));
        assert!(
            !shifted.contains(&2),
            "peer beyond max depth must be dropped"
        );
    }

    #[test]
    fn merge_unions_levels() {
        let mut a: LeveledSummary<u32> = LeveledSummary::new(3);
        let mut b: LeveledSummary<u32> = LeveledSummary::new(3);
        a.insert(0, &1);
        b.insert(0, &2);
        b.insert(1, &3);
        a.merge(&b);
        assert!(a.contains(&1));
        assert!(a.contains(&2));
        assert_eq!(a.depth_of(&3), Some(1));
    }

    #[test]
    fn byte_size_grows_with_levels() {
        let mut s: LeveledSummary<u32> = LeveledSummary::new(5);
        assert_eq!(s.byte_size(), 0);
        s.insert(0, &1);
        let one = s.byte_size();
        s.insert(3, &2);
        assert!(s.byte_size() > one);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn depth_of_never_reports_shallower_than_inserted(
                entries in proptest::collection::vec((0usize..5, 0u64..10_000), 0..100)
            ) {
                let mut s: LeveledSummary<u64> = LeveledSummary::new(5);
                for (level, item) in &entries {
                    s.insert(*level, item);
                }
                for (level, item) in &entries {
                    // No false negatives: item must be found at its level or shallower
                    // (shallower only via a false positive of another level's filter,
                    // which is still a valid "found" answer for ring search).
                    let found = s.depth_of(item);
                    prop_assert!(found.is_some());
                    prop_assert!(found.unwrap() <= *level);
                }
            }

            #[test]
            fn shift_preserves_no_false_negatives_within_bound(
                entries in proptest::collection::vec((0usize..3, 0u64..10_000), 0..50)
            ) {
                let mut s: LeveledSummary<u64> = LeveledSummary::new(5);
                for (level, item) in &entries {
                    s.insert(*level, item);
                }
                let shifted = s.shifted();
                for (level, item) in &entries {
                    if level + 1 < 5 {
                        prop_assert!(shifted.contains(item));
                    }
                }
            }
        }
    }
}
