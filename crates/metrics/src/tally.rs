//! Per-class statistics keyed by an arbitrary label.

use std::collections::BTreeMap;
use std::hash::Hash;

use serde::{Deserialize, Serialize};

use crate::OnlineStats;

/// A map from class label to [`OnlineStats`].
///
/// Used by the simulator to keep, e.g., download times broken down by peer
/// class (sharing / non-sharing) or session bytes broken down by session type
/// (non-exchange, pairwise, 3-way, ...).  Labels are kept in a `BTreeMap`, so
/// iteration order — and therefore every printed table — is deterministic.
///
/// # Example
///
/// ```
/// use metrics::ClassTally;
///
/// let mut tally: ClassTally<&'static str> = ClassTally::new();
/// tally.record("sharing", 10.0);
/// tally.record("sharing", 20.0);
/// tally.record("freerider", 60.0);
///
/// assert_eq!(tally.get(&"sharing").unwrap().mean(), 15.0);
/// assert_eq!(tally.ratio("freerider", "sharing"), Some(4.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassTally<K: Ord> {
    classes: BTreeMap<K, OnlineStats>,
}

impl<K: Ord> ClassTally<K> {
    /// Creates an empty tally.
    #[must_use]
    pub fn new() -> Self {
        ClassTally {
            classes: BTreeMap::new(),
        }
    }

    /// Records `value` under class `key`.
    pub fn record(&mut self, key: K, value: f64) {
        self.classes.entry(key).or_default().record(value);
    }

    /// Inserts a prebuilt accumulator under `key`, replacing any existing
    /// one.  Used when restoring a tally from a checkpoint.
    pub fn insert_stats(&mut self, key: K, stats: OnlineStats) {
        self.classes.insert(key, stats);
    }

    /// The statistics accumulated for `key`, if any observation was recorded.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&OnlineStats> {
        self.classes.get(key)
    }

    /// Mean for `key`, or `None` if the class has no observations.
    #[must_use]
    pub fn mean(&self, key: &K) -> Option<f64> {
        self.classes.get(key).map(OnlineStats::mean)
    }

    /// Ratio `mean(numerator) / mean(denominator)`, or `None` if either class
    /// is missing or the denominator mean is zero.
    #[must_use]
    pub fn ratio(&self, numerator: K, denominator: K) -> Option<f64>
    where
        K: Hash,
    {
        let num = self.classes.get(&numerator)?.mean();
        let den = self.classes.get(&denominator)?.mean();
        (den != 0.0).then(|| num / den)
    }

    /// Iterates over `(class, stats)` in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &OnlineStats)> {
        self.classes.iter()
    }

    /// Number of distinct classes observed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether no observation has been recorded for any class.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Total number of observations across all classes.
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.classes.values().map(OnlineStats::count).sum()
    }

    /// Merges another tally into this one class-by-class.
    pub fn merge(&mut self, other: &ClassTally<K>)
    where
        K: Clone,
    {
        for (key, stats) in &other.classes {
            self.classes.entry(key.clone()).or_default().merge(stats);
        }
    }
}

impl<K: Ord> Default for ClassTally<K> {
    fn default() -> Self {
        ClassTally::new()
    }
}

impl<K: Ord> FromIterator<(K, f64)> for ClassTally<K> {
    fn from_iter<T: IntoIterator<Item = (K, f64)>>(iter: T) -> Self {
        let mut tally = ClassTally::new();
        for (k, v) in iter {
            tally.record(k, v);
        }
        tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = ClassTally::new();
        t.record("a", 1.0);
        t.record("a", 3.0);
        t.record("b", 10.0);
        assert_eq!(t.mean(&"a"), Some(2.0));
        assert_eq!(t.mean(&"b"), Some(10.0));
        assert_eq!(t.mean(&"c"), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_count(), 3);
    }

    #[test]
    fn ratio_handles_missing_and_zero() {
        let mut t = ClassTally::new();
        t.record("num", 4.0);
        t.record("den", 2.0);
        t.record("zero", 0.0);
        assert_eq!(t.ratio("num", "den"), Some(2.0));
        assert_eq!(t.ratio("num", "zero"), None);
        assert_eq!(t.ratio("num", "missing"), None);
    }

    #[test]
    fn iteration_order_is_deterministic() {
        let mut t = ClassTally::new();
        t.record("zebra", 1.0);
        t.record("ant", 1.0);
        t.record("mole", 1.0);
        let keys: Vec<&&str> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&"ant", &"mole", &"zebra"]);
    }

    #[test]
    fn merge_combines_classes() {
        let mut a: ClassTally<u8> = [(1u8, 2.0), (2u8, 4.0)].into_iter().collect();
        let b: ClassTally<u8> = [(2u8, 8.0), (3u8, 1.0)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.mean(&1), Some(2.0));
        assert_eq!(a.mean(&2), Some(6.0));
        assert_eq!(a.mean(&3), Some(1.0));
    }

    #[test]
    fn empty_tally() {
        let t: ClassTally<u32> = ClassTally::new();
        assert!(t.is_empty());
        assert_eq!(t.total_count(), 0);
        assert_eq!(t.get(&1), None);
    }
}
