//! Statistics collection for simulation experiments.
//!
//! The paper's evaluation reports means, ratios, distributions (CDFs) and
//! per-class breakdowns (sharing vs. non-sharing peers, session types).  This
//! crate provides the small set of measurement tools the simulator and the
//! figure harness need:
//!
//! * [`OnlineStats`] — streaming mean/variance/min/max (Welford's algorithm).
//! * [`SampleSet`] — a bounded reservoir of raw samples for percentiles and
//!   empirical CDFs.
//! * [`Cdf`] — an empirical cumulative distribution extracted from samples.
//! * [`ClassTally`] — per-class [`OnlineStats`] keyed by an arbitrary label
//!   (e.g. session type or peer class).
//! * [`Table`] — simple column-aligned text tables used by the figure
//!   binaries to print paper-style rows.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cdf;
mod stats;
mod table;
mod tally;

pub use cdf::{Cdf, SampleSet};
pub use stats::OnlineStats;
pub use table::Table;
pub use tally::ClassTally;
