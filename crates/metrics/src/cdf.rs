//! Raw-sample collection and empirical CDF extraction.

use serde::{Deserialize, Serialize};

/// A bounded collection of raw samples.
///
/// Keeps every sample up to `capacity`; beyond that it keeps a uniform random
/// reservoir (deterministic, seeded internally from the sample count) so that
/// long runs do not consume unbounded memory while percentiles stay unbiased.
///
/// # Example
///
/// ```
/// use metrics::SampleSet;
///
/// let mut s = SampleSet::unbounded();
/// for x in 1..=100 {
///     s.record(x as f64);
/// }
/// let cdf = s.cdf();
/// assert!((cdf.percentile(0.5) - 50.0).abs() <= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<f64>,
    capacity: usize,
    seen: u64,
}

impl SampleSet {
    /// Creates a sample set that keeps at most `capacity` samples
    /// (reservoir-sampled beyond that).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "sample capacity must be positive");
        SampleSet {
            samples: Vec::new(),
            capacity,
            seen: 0,
        }
    }

    /// Creates a sample set that keeps every sample.
    #[must_use]
    pub fn unbounded() -> Self {
        SampleSet {
            samples: Vec::new(),
            capacity: usize::MAX,
            seen: 0,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN sample");
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(value);
        } else {
            // Deterministic reservoir replacement driven by a cheap LCG of the
            // running count: keeps memory bounded without an external RNG.
            let r = lcg(self.seen) % self.seen;
            if (r as usize) < self.capacity {
                self.samples[r as usize % self.capacity] = value;
            }
        }
    }

    /// Total number of observations recorded (including ones evicted from the
    /// reservoir).
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of samples currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The retained samples, unordered.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The configured retention capacity (`usize::MAX` when unbounded).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rebuilds a sample set from checkpointed parts.  `seen` must be
    /// restored exactly — the deterministic reservoir replacement is driven
    /// by it, so future evictions depend on the full history count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or more samples are retained than the
    /// capacity allows.
    #[must_use]
    pub fn from_parts(samples: Vec<f64>, capacity: usize, seen: u64) -> Self {
        assert!(capacity > 0, "sample capacity must be positive");
        assert!(
            samples.len() <= capacity,
            "retained samples exceed capacity"
        );
        SampleSet {
            samples,
            capacity,
            seen,
        }
    }

    /// Arithmetic mean of the retained samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Builds the empirical CDF of the retained samples.
    #[must_use]
    pub fn cdf(&self) -> Cdf {
        Cdf::from_samples(self.samples.iter().copied())
    }
}

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
        >> 16
}

/// An empirical cumulative distribution function.
///
/// # Example
///
/// ```
/// use metrics::Cdf;
///
/// let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.percentile(1.0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples.  NaN samples are rejected.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    #[must_use]
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(
            sorted.iter().all(|x| !x.is_nan()),
            "CDF samples must not contain NaN"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after assertion"));
        Cdf { sorted }
    }

    /// Number of samples underlying the CDF.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF was built from no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples less than or equal to `x` (0.0 for an empty CDF).
    #[must_use]
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `p`-quantile (p in `[0, 1]`) using nearest-rank interpolation.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `p` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "percentile of an empty CDF");
        assert!(
            (0.0..=1.0).contains(&p),
            "percentile must be in [0,1], got {p}"
        );
        let idx = ((self.sorted.len() as f64 - 1.0) * p).round() as usize;
        self.sorted[idx]
    }

    /// Median shorthand.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.percentile(0.5)
    }

    /// Samples `n` evenly spaced points of the CDF as `(value, fraction)`
    /// pairs, suitable for plotting a figure series.
    #[must_use]
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let n = n.min(self.sorted.len());
        (0..n)
            .map(|i| {
                let idx = if n == 1 {
                    self.sorted.len() - 1
                } else {
                    i * (self.sorted.len() - 1) / (n - 1)
                };
                let value = self.sorted[idx];
                let frac = (idx + 1) as f64 / self.sorted.len() as f64;
                (value, frac)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_keeps_everything() {
        let mut s = SampleSet::unbounded();
        for i in 0..1_000 {
            s.record(i as f64);
        }
        assert_eq!(s.len(), 1_000);
        assert_eq!(s.seen(), 1_000);
        assert!((s.mean() - 499.5).abs() < 1e-9);
    }

    #[test]
    fn bounded_reservoir_caps_memory() {
        let mut s = SampleSet::with_capacity(100);
        for i in 0..10_000 {
            s.record(i as f64);
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.seen(), 10_000);
        // The reservoir should contain values from across the whole range,
        // not only the first 100.
        assert!(s.samples().iter().any(|x| *x > 5_000.0));
    }

    #[test]
    fn cdf_fraction_and_percentiles() {
        let cdf = Cdf::from_samples((1..=10).map(f64::from));
        assert_eq!(cdf.len(), 10);
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(5.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.percentile(0.0), 1.0);
        assert_eq!(cdf.percentile(1.0), 10.0);
        // Nearest-rank median of an even-sized sample lands on the upper of
        // the two central observations.
        assert_eq!(cdf.median(), 6.0);
    }

    #[test]
    fn cdf_points_are_monotonic() {
        let cdf = Cdf::from_samples((0..100).map(|i| (i * i) as f64));
        let pts = cdf.points(20);
        assert_eq!(pts.len(), 20);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let cdf = Cdf::from_samples(std::iter::empty());
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert!(cdf.points(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty CDF")]
    fn percentile_of_empty_panics() {
        let cdf = Cdf::from_samples(std::iter::empty());
        let _ = cdf.percentile(0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = SampleSet::with_capacity(0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn fraction_is_monotone(xs in proptest::collection::vec(-1e4f64..1e4, 1..100)) {
                let cdf = Cdf::from_samples(xs.iter().copied());
                let mut probe: Vec<f64> = xs.clone();
                probe.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mut last = 0.0;
                for x in probe {
                    let f = cdf.fraction_at_or_below(x);
                    prop_assert!(f >= last - 1e-12);
                    prop_assert!((0.0..=1.0).contains(&f));
                    last = f;
                }
            }

            #[test]
            fn percentile_is_an_observed_sample(xs in proptest::collection::vec(-1e4f64..1e4, 1..100), p in 0.0f64..=1.0) {
                let cdf = Cdf::from_samples(xs.iter().copied());
                let v = cdf.percentile(p);
                prop_assert!(xs.contains(&v));
            }
        }
    }
}
