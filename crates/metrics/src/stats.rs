//! Streaming summary statistics.

use serde::{Deserialize, Serialize};

/// Streaming mean / variance / min / max over a sequence of observations.
///
/// Uses Welford's online algorithm, so it is numerically stable and requires
/// constant memory regardless of how many samples are recorded.
///
/// # Example
///
/// ```
/// use metrics::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN; a NaN observation would silently poison every
    /// derived statistic.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN observation");
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the observations (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population variance (dividing by *n*); 0.0 when fewer than 2 samples.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (dividing by *n − 1*); 0.0 when fewer than 2 samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// The raw accumulator state `(count, mean, m2, min, max, sum)`, for
    /// checkpointing.  The empty sentinel (`min = +inf`, `max = -inf`) is
    /// part of the state and round-trips through
    /// [`OnlineStats::from_raw_parts`].
    #[must_use]
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max, self.sum)
    }

    /// Rebuilds an accumulator from the state captured by
    /// [`OnlineStats::raw_parts`].
    #[must_use]
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64, sum: f64) -> Self {
        OnlineStats {
            count,
            mean,
            m2,
            min,
            max,
            sum,
        }
    }

    /// Merges another accumulator into this one, as if all of its samples had
    /// been recorded here (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = (self.count + other.count) as f64;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total;
        self.mean = new_mean;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineStats::new();
        s.record(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn matches_naive_computation() {
        let xs = [1.0, 2.5, -3.0, 7.25, 0.0, 100.0, -42.5];
        let mut s = OnlineStats::new();
        xs.iter().for_each(|x| s.record(*x));
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-9);
        assert_eq!(s.min(), Some(-42.5));
        assert_eq!(s.max(), Some(100.0));
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (left, right) = xs.split_at(37);
        let mut a = OnlineStats::new();
        left.iter().for_each(|x| a.record(*x));
        let mut b = OnlineStats::new();
        right.iter().for_each(|x| b.record(*x));
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|x| whole.record(*x));

        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(1.0);
        a.record(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_observation_panics() {
        OnlineStats::new().record(f64::NAN);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mean_is_bounded_by_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
                let mut s = OnlineStats::new();
                xs.iter().for_each(|x| s.record(*x));
                prop_assert!(s.mean() >= s.min().unwrap() - 1e-9);
                prop_assert!(s.mean() <= s.max().unwrap() + 1e-9);
                prop_assert!(s.population_variance() >= 0.0);
            }

            #[test]
            fn merge_is_order_insensitive(
                xs in proptest::collection::vec(-1e3f64..1e3, 1..50),
                ys in proptest::collection::vec(-1e3f64..1e3, 1..50),
            ) {
                let mut a = OnlineStats::new();
                xs.iter().for_each(|x| a.record(*x));
                let mut b = OnlineStats::new();
                ys.iter().for_each(|y| b.record(*y));

                let mut ab = a;
                ab.merge(&b);
                let mut ba = b;
                ba.merge(&a);

                prop_assert_eq!(ab.count(), ba.count());
                prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
                prop_assert!((ab.sample_variance() - ba.sample_variance()).abs() < 1e-6);
            }
        }
    }
}
