//! Column-aligned text tables for figure/table output.

use std::fmt;

/// A simple text table.
///
/// The figure binaries use this to print the same rows/series the paper's
/// tables and plots report, in a form that is easy to eyeball or paste into a
/// plotting tool (the TSV form).
///
/// # Example
///
/// ```
/// use metrics::Table;
///
/// let mut t = Table::new(vec!["upload kbit/s", "sharing", "non-sharing"]);
/// t.add_row(vec!["40".into(), "61.2".into(), "142.9".into()]);
/// let text = t.to_string();
/// assert!(text.contains("upload kbit/s"));
/// assert!(text.contains("142.9"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of columns.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Convenience: appends a row of floats formatted with `precision`
    /// decimals, prefixed by a label cell.
    pub fn add_numeric_row(&mut self, label: impl Into<String>, values: &[f64], precision: usize) {
        let mut row = vec![label.into()];
        row.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.add_row(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Rows as raw cells.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as tab-separated values (header row first).
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["x", "value"]);
        t.add_row(vec!["1".into(), "10.0".into()]);
        t.add_row(vec!["200".into(), "3.5".into()]);
        let s = t.to_string();
        assert!(s.contains("x    value"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn tsv_output_has_header_and_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
    }

    #[test]
    fn numeric_row_formatting() {
        let mut t = Table::new(vec!["label", "v1", "v2"]);
        t.add_numeric_row("row", &[1.23456, 7.0], 2);
        assert_eq!(t.rows()[0], vec!["row", "1.23", "7.00"]);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_length_panics() {
        let mut t = Table::new(vec!["only"]);
        t.add_row(vec!["a".into(), "b".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }
}
