//! First-come, first-served scheduling (no incentive).

use exchange::Key;

use crate::{IncentiveMechanism, QueuedRequest};

/// Serve the longest-waiting request first, regardless of who sent it.
///
/// This is the paper's "no exchange" baseline: every request is eventually
/// granted and contributors receive no preferential treatment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fifo;

impl Fifo {
    /// Creates the mechanism.
    #[must_use]
    pub fn new() -> Self {
        Fifo
    }
}

impl<P: Key> IncentiveMechanism<P> for Fifo {
    fn score(&self, _provider: P, request: &QueuedRequest<P>) -> f64 {
        request.waiting_secs
    }

    fn record_transfer(&mut self, _uploader: P, _downloader: P, _bytes: u64) {}

    fn label(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_equals_waiting_time() {
        let fifo = Fifo::new();
        let r = QueuedRequest::new(1u32, 12.5);
        assert_eq!(fifo.score(0, &r), 12.5);
    }

    #[test]
    fn history_does_not_change_ordering() {
        let mut fifo = Fifo::new();
        fifo.record_transfer(1u32, 0u32, 1_000_000);
        let generous = QueuedRequest::new(1u32, 1.0);
        let stranger = QueuedRequest::new(2u32, 2.0);
        assert!(fifo.score(0, &stranger) > fifo.score(0, &generous));
    }
}
