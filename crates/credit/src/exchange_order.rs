//! Queue-level adapter over the paper's exchange disciplines.

use exchange::Key;

use crate::{IncentiveMechanism, QueuedRequest};

/// Applies the exchange preference to fallback queue ordering: requests
/// whose requester could reciprocate — it stores an object the provider
/// currently wants, i.e. the pair could form a ring — are served before all
/// others; within each class the longest-waiting request wins.
///
/// This adapts the exchange disciplines of the paper's Section III to the
/// [`crate::UploadScheduler`] API, so the incentive can be compared
/// head-to-head with the credit-style baselines even for transfers that are
/// not carried by an activated ring.  The caller marks reciprocation
/// candidates via [`QueuedRequest::reciprocal`].
///
/// # Example
///
/// ```
/// use credit::{ExchangeOrder, IncentiveMechanism, QueuedRequest};
///
/// let order = ExchangeOrder::new();
/// let stranger = QueuedRequest::new(1u32, 500.0);
/// let partner = QueuedRequest::new(2u32, 1.0).with_reciprocal(true);
/// assert!(order.score(0, &partner) > order.score(0, &stranger));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeOrder;

impl ExchangeOrder {
    /// Creates the exchange-priority ordering.
    #[must_use]
    pub fn new() -> Self {
        ExchangeOrder
    }
}

/// Reciprocation dominates; waiting time breaks ties within each class.
const RECIPROCAL_PRIORITY: f64 = 1e12;

impl<P: Key> IncentiveMechanism<P> for ExchangeOrder {
    fn score(&self, _provider: P, request: &QueuedRequest<P>) -> f64 {
        if request.reciprocal {
            RECIPROCAL_PRIORITY + request.waiting_secs
        } else {
            request.waiting_secs
        }
    }

    fn record_transfer(&mut self, _uploader: P, _downloader: P, _bytes: u64) {}

    fn label(&self) -> &'static str {
        "exchange-priority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal_requests_outrank_any_waiting_time() {
        let order = ExchangeOrder::new();
        let queue = [
            QueuedRequest::new(1u32, 1e9),
            QueuedRequest::new(2u32, 0.5).with_reciprocal(true),
        ];
        assert_eq!(order.pick(0, &queue), Some(1));
    }

    #[test]
    fn waiting_time_orders_within_each_class() {
        let order = ExchangeOrder::new();
        let non_reciprocal = [
            QueuedRequest::new(1u32, 5.0),
            QueuedRequest::new(2u32, 50.0),
        ];
        assert_eq!(order.pick(0, &non_reciprocal), Some(1));

        let reciprocal = [
            QueuedRequest::new(1u32, 40.0).with_reciprocal(true),
            QueuedRequest::new(2u32, 4.0).with_reciprocal(true),
        ];
        assert_eq!(order.pick(0, &reciprocal), Some(0));
    }

    #[test]
    fn degrades_to_fifo_without_reciprocation_candidates() {
        let order = ExchangeOrder::new();
        let queue = [
            QueuedRequest::new(3u32, 10.0),
            QueuedRequest::new(4u32, 30.0),
            QueuedRequest::new(5u32, 20.0),
        ];
        assert_eq!(order.pick(0, &queue), Some(1));
    }
}
