//! Baseline incentive mechanisms for comparison with exchange-based incentives.
//!
//! Section II of the paper surveys the incentive mechanisms deployed or
//! proposed at the time.  To compare the exchange mechanism against something
//! concrete (and to support the ablation benchmarks), this crate implements
//! the survey's main alternatives as pluggable *upload schedulers*: given the
//! requests waiting in a provider's incoming-request queue, each mechanism
//! scores them and the provider serves the highest-scoring request first.
//!
//! * [`Fifo`] — no incentive at all: serve the longest-waiting request
//!   (the paper's "no exchange" baseline).
//! * [`EmuleCredit`] — the eMule-style pairwise credit system: a requester's
//!   queue rank grows with its waiting time, scaled by a credit modifier
//!   derived from the data volumes previously exchanged between the two peers.
//! * [`ParticipationLevel`] — the KaZaA-style self-reported participation
//!   level; trivially subvertible because peers report their own score.
//! * [`TitForTat`] — a BitTorrent-style reciprocation heuristic: prefer
//!   requesters that recently uploaded to *you*, with a small optimistic
//!   allowance for strangers.
//! * [`ExchangeOrder`] — the exchange preference adapted to queue ordering:
//!   requesters that could reciprocate in kind are served first.
//!
//! All mechanisms implement the [`IncentiveMechanism`] scoring trait, and —
//! through the object-safe [`UploadScheduler`] trait — plug into the
//! simulator interchangeably.  [`SchedulerKind`] names each mechanism in
//! configurations and constructs the matching trait object for a run.
//!
//! # Example
//!
//! ```
//! use credit::{EmuleCredit, IncentiveMechanism, QueuedRequest};
//!
//! let mut credit: EmuleCredit<u32> = EmuleCredit::new();
//! // Peer 7 has uploaded a lot to us (peer 0) in the past; peer 8 nothing.
//! credit.record_transfer(7, 0, 50_000_000);
//!
//! let waiting = |requester| QueuedRequest::new(requester, 100.0);
//! let s7 = credit.score(0, &waiting(7));
//! let s8 = credit.score(0, &waiting(8));
//! assert!(s7 > s8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod emule;
mod exchange_order;
mod fifo;
mod participation;
mod scheduler;
mod tit_for_tat;

pub use emule::EmuleCredit;
pub use exchange_order::ExchangeOrder;
pub use fifo::Fifo;
pub use participation::ParticipationLevel;
pub use scheduler::{SchedulerKind, SchedulerState, UploadScheduler};
pub use tit_for_tat::TitForTat;

use exchange::Key;

/// A request waiting in a provider's incoming-request queue, as seen by an
/// incentive mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest<P> {
    /// The peer that issued the request.
    pub requester: P,
    /// How long the request has been waiting, in seconds.
    pub waiting_secs: f64,
    /// Whether the requester could reciprocate: it stores an object the
    /// provider currently wants (used by [`ExchangeOrder`]).
    pub reciprocal: bool,
}

impl<P> QueuedRequest<P> {
    /// Creates a queued request with no reciprocation opportunity.
    #[must_use]
    pub fn new(requester: P, waiting_secs: f64) -> Self {
        QueuedRequest {
            requester,
            waiting_secs,
            reciprocal: false,
        }
    }

    /// Sets whether the requester could reciprocate.
    #[must_use]
    pub fn with_reciprocal(mut self, reciprocal: bool) -> Self {
        self.reciprocal = reciprocal;
        self
    }
}

/// An upload-scheduling incentive mechanism.
///
/// The provider calls [`IncentiveMechanism::score`] for every queued request
/// and serves the highest score first; ties are broken by waiting time by the
/// caller.  Completed transfers are reported through
/// [`IncentiveMechanism::record_transfer`] so that history-based mechanisms
/// can update their state.
pub trait IncentiveMechanism<P: Key> {
    /// Scores `request` from the point of view of `provider`; higher scores
    /// are served first.
    fn score(&self, provider: P, request: &QueuedRequest<P>) -> f64;

    /// Records that `uploader` transferred `bytes` to `downloader`.
    fn record_transfer(&mut self, uploader: P, downloader: P, bytes: u64);

    /// A short, stable label for reports and figures.
    fn label(&self) -> &'static str;

    /// Picks the best request among `queue` according to this mechanism.
    ///
    /// Returns the index of the winning request, or `None` if the queue is
    /// empty.  Ties are broken in favour of the longer-waiting request, then
    /// queue order.
    fn pick(&self, provider: P, queue: &[QueuedRequest<P>]) -> Option<usize> {
        queue
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let sa = self.score(provider, a);
                let sb = self.score(provider, b);
                sa.partial_cmp(&sb)
                    .expect("incentive scores must not be NaN")
                    .then(
                        a.waiting_secs
                            .partial_cmp(&b.waiting_secs)
                            .expect("waiting times must not be NaN"),
                    )
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_prefers_higher_score_then_waiting_time() {
        let fifo: Fifo = Fifo::new();
        let queue = vec![
            QueuedRequest::new(1u32, 5.0),
            QueuedRequest::new(2, 50.0),
            QueuedRequest::new(3, 20.0),
        ];
        assert_eq!(fifo.pick(0, &queue), Some(1));
        assert_eq!(fifo.pick(0, &[]), None);
    }

    #[test]
    fn all_mechanisms_have_distinct_labels() {
        let labels = [
            IncentiveMechanism::<u32>::label(&Fifo::new()),
            IncentiveMechanism::<u32>::label(&EmuleCredit::<u32>::new()),
            IncentiveMechanism::<u32>::label(&ParticipationLevel::<u32>::new()),
            IncentiveMechanism::<u32>::label(&TitForTat::<u32>::new()),
            IncentiveMechanism::<u32>::label(&ExchangeOrder::new()),
        ];
        let mut unique = labels.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), labels.len());
    }
}
