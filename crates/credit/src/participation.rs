//! The KaZaA-style self-reported participation level.

use std::collections::HashMap;

use exchange::Key;

use crate::{IncentiveMechanism, QueuedRequest};

/// Self-reported participation levels, as used by KaZaA.
///
/// Each peer announces its own "participation level" (nominally a function of
/// its uptime and upload/download volumes) and providers prioritise peers
/// with higher announced levels.  The mechanism is trivially subverted — a
/// modified client can announce any value — which is exactly why the paper
/// dismisses it.  [`ParticipationLevel::report`] lets tests and simulations
/// model both honest and cheating peers.
///
/// # Example
///
/// ```
/// use credit::{IncentiveMechanism, ParticipationLevel, QueuedRequest};
///
/// let mut pl: ParticipationLevel<u32> = ParticipationLevel::new();
/// pl.report(1, 10.0);   // honest, modest contributor
/// pl.report(2, 1000.0); // cheater announcing a huge level
/// let r1 = QueuedRequest::new(1, 60.0);
/// let r2 = QueuedRequest::new(2, 1.0);
/// assert!(pl.score(0, &r2) > pl.score(0, &r1));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParticipationLevel<P: Key> {
    reported: HashMap<P, f64>,
    honest_volume: HashMap<P, u64>,
}

/// Sorted `(peer, announced_level)` rows, as exported by
/// [`ParticipationLevel::export_levels`].
pub type ReportedLevels<P> = Vec<(P, f64)>;

/// Sorted `(peer, honest_bytes)` rows, as exported by
/// [`ParticipationLevel::export_levels`].
pub type HonestVolumes<P> = Vec<(P, u64)>;

impl<P: Key> ParticipationLevel<P> {
    /// Creates the mechanism with no reports.
    #[must_use]
    pub fn new() -> Self {
        ParticipationLevel {
            reported: HashMap::new(),
            honest_volume: HashMap::new(),
        }
    }

    /// Records the level `peer` announces for itself (honest or not).
    ///
    /// Announcements are sanitised so downstream scoring never sees a
    /// non-finite value: NaN collapses to 0, negative levels clamp to 0,
    /// and infinities clamp to `f64::MAX` (a cheater announcing `inf` would
    /// otherwise poison score comparisons).
    pub fn report(&mut self, peer: P, level: f64) {
        let sanitised = if level.is_nan() {
            0.0
        } else {
            level.clamp(0.0, f64::MAX)
        };
        self.reported.insert(peer, sanitised);
    }

    /// The level `peer` currently announces (0 if it never reported).
    #[must_use]
    pub fn reported_level(&self, peer: P) -> f64 {
        self.reported.get(&peer).copied().unwrap_or(0.0)
    }

    /// The level `peer` *would* honestly report based on recorded uploads
    /// (MB uploaded), for comparison with what it announces.
    #[must_use]
    pub fn honest_level(&self, peer: P) -> f64 {
        self.honest_volume.get(&peer).copied().unwrap_or(0) as f64 / 1_048_576.0
    }

    /// How far `peer`'s announced level diverges from what its recorded
    /// uploads honestly justify.  Positive means the peer inflates its
    /// report (the Section III-B cheat); roughly zero for honest clients.
    #[must_use]
    pub fn divergence(&self, peer: P) -> f64 {
        self.reported_level(peer) - self.honest_level(peer)
    }

    /// Both tables as sorted rows (`(peer, announced_level)` and
    /// `(peer, honest_bytes)`) — a canonical export for checkpointing.
    #[must_use]
    pub fn export_levels(&self) -> (ReportedLevels<P>, HonestVolumes<P>) {
        // exchange-lint: allow(D001, reason = "collected and sorted by key before any caller sees it")
        let mut reported: Vec<(P, f64)> = self.reported.iter().map(|(p, l)| (*p, *l)).collect();
        reported.sort_unstable_by_key(|(p, _)| *p);
        // exchange-lint: allow(D001, reason = "collected and sorted by key before any caller sees it")
        let mut honest: Vec<(P, u64)> = self.honest_volume.iter().map(|(p, b)| (*p, *b)).collect();
        honest.sort_unstable_by_key(|(p, _)| *p);
        (reported, honest)
    }

    /// Replaces both tables with previously exported rows.
    pub fn import_levels(&mut self, reported: Vec<(P, f64)>, honest: Vec<(P, u64)>) {
        // exchange-lint: allow(D001, reason = "iterates the sorted Vec argument, not a map")
        self.reported = reported.into_iter().collect();
        self.honest_volume = honest.into_iter().collect();
    }
}

impl<P: Key> IncentiveMechanism<P> for ParticipationLevel<P> {
    fn score(&self, _provider: P, request: &QueuedRequest<P>) -> f64 {
        // Announced level dominates; waiting time only breaks ties.
        self.reported_level(request.requester) * 1e6 + request.waiting_secs
    }

    fn record_transfer(&mut self, uploader: P, _downloader: P, bytes: u64) {
        *self.honest_volume.entry(uploader).or_insert(0) += bytes;
    }

    fn label(&self) -> &'static str {
        "participation-level"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreported_peers_have_zero_level() {
        let pl: ParticipationLevel<u32> = ParticipationLevel::new();
        assert_eq!(pl.reported_level(5), 0.0);
        assert_eq!(pl.honest_level(5), 0.0);
    }

    #[test]
    fn cheater_outranks_honest_contributor() {
        let mut pl: ParticipationLevel<u32> = ParticipationLevel::new();
        // Peer 1 really contributes; peer 2 lies.
        pl.record_transfer(1, 0, 500 * 1_048_576);
        pl.report(1, 50.0);
        pl.report(2, 10_000.0);
        let honest = QueuedRequest::new(1u32, 500.0);
        let cheater = QueuedRequest::new(2u32, 1.0);
        assert!(pl.score(0, &cheater) > pl.score(0, &honest));
        assert!(pl.honest_level(2) < pl.honest_level(1));
    }

    #[test]
    fn negative_reports_are_clamped() {
        let mut pl: ParticipationLevel<u32> = ParticipationLevel::new();
        pl.report(1, -5.0);
        assert_eq!(pl.reported_level(1), 0.0);
    }

    #[test]
    fn nan_and_infinite_reports_are_sanitised() {
        let mut pl: ParticipationLevel<u32> = ParticipationLevel::new();
        pl.report(1, f64::NAN);
        assert_eq!(pl.reported_level(1), 0.0);
        pl.report(2, f64::INFINITY);
        assert_eq!(pl.reported_level(2), f64::MAX);
        pl.report(3, f64::NEG_INFINITY);
        assert_eq!(pl.reported_level(3), 0.0);
        // Scores stay comparable (pick() asserts on NaN scores).
        let queue = vec![QueuedRequest::new(1u32, 1.0), QueuedRequest::new(2, 1.0)];
        assert_eq!(pl.pick(0, &queue), Some(1));
    }

    #[test]
    fn divergence_exposes_inflated_reports() {
        let mut pl: ParticipationLevel<u32> = ParticipationLevel::new();
        // Peer 1 uploaded 100 MB and reports exactly that.
        pl.record_transfer(1, 0, 100 * 1_048_576);
        let honest = pl.honest_level(1);
        pl.report(1, honest);
        assert_eq!(pl.divergence(1), 0.0);
        // Peer 2 uploaded nothing and reports 500.
        pl.report(2, 500.0);
        assert_eq!(pl.divergence(2), 500.0);
        // Peer 3 under-reports (modest, or stale client).
        pl.record_transfer(3, 0, 50 * 1_048_576);
        pl.report(3, 10.0);
        assert_eq!(pl.divergence(3), -40.0);
    }

    #[test]
    fn waiting_time_breaks_ties() {
        let mut pl: ParticipationLevel<u32> = ParticipationLevel::new();
        pl.report(1, 5.0);
        pl.report(2, 5.0);
        let queue = vec![QueuedRequest::new(1u32, 10.0), QueuedRequest::new(2, 20.0)];
        assert_eq!(pl.pick(0, &queue), Some(1));
    }
}
