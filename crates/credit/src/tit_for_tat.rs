//! A BitTorrent-style reciprocation heuristic.

use std::collections::HashMap;

use exchange::Key;

use crate::{IncentiveMechanism, QueuedRequest};

/// Prefer requesters that have recently uploaded to this provider.
///
/// BitTorrent's choking algorithm reciprocates within a single file swarm;
/// here the idea is transplanted to whole-object requests: a provider scores
/// each requester by the bytes that requester has uploaded *to it*, with a
/// small "optimistic unchoke" bonus proportional to waiting time so that
/// strangers are not starved forever.
///
/// # Example
///
/// ```
/// use credit::{IncentiveMechanism, QueuedRequest, TitForTat};
///
/// let mut tft: TitForTat<u32> = TitForTat::new();
/// tft.record_transfer(3, 0, 1_000_000); // peer 3 uploaded to us (peer 0)
/// let reciprocal = QueuedRequest::new(3, 1.0);
/// let stranger = QueuedRequest::new(4, 1.0);
/// assert!(tft.score(0, &reciprocal) > tft.score(0, &stranger));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TitForTat<P: Key> {
    received_from: HashMap<(P, P), u64>,
    optimistic_weight: f64,
}

impl<P: Key> TitForTat<P> {
    /// Creates the mechanism with the default optimistic-unchoke weight.
    #[must_use]
    pub fn new() -> Self {
        TitForTat {
            received_from: HashMap::new(),
            optimistic_weight: 1.0,
        }
    }

    /// Overrides how strongly waiting time counts relative to reciprocation
    /// (bytes are scored in megabytes).
    #[must_use]
    pub fn with_optimistic_weight(mut self, weight: f64) -> Self {
        self.optimistic_weight = weight.max(0.0);
        self
    }

    /// Bytes `requester` has uploaded to `provider` so far.
    #[must_use]
    pub fn received(&self, provider: P, requester: P) -> u64 {
        self.received_from
            .get(&(provider, requester))
            .copied()
            .unwrap_or(0)
    }

    /// Every recorded pair as `(provider, requester, bytes)`, sorted by key —
    /// a canonical export for checkpointing.
    #[must_use]
    pub fn export_received(&self) -> Vec<(P, P, u64)> {
        let mut rows: Vec<(P, P, u64)> = self
            .received_from
            // exchange-lint: allow(D001, reason = "collected and sorted by key before any caller sees it")
            .iter()
            .map(|((p, r), bytes)| (*p, *r, *bytes))
            .collect();
        rows.sort_unstable_by_key(|(p, r, _)| (*p, *r));
        rows
    }

    /// Replaces the reciprocation table with previously exported rows.
    /// The optimistic-unchoke weight is configuration, not history, and is
    /// untouched.
    pub fn import_received(&mut self, rows: Vec<(P, P, u64)>) {
        self.received_from = rows.into_iter().map(|(p, r, b)| ((p, r), b)).collect();
    }
}

impl<P: Key> Default for TitForTat<P> {
    fn default() -> Self {
        TitForTat::new()
    }
}

impl<P: Key> IncentiveMechanism<P> for TitForTat<P> {
    fn score(&self, provider: P, request: &QueuedRequest<P>) -> f64 {
        let reciprocation_mb = self.received(provider, request.requester) as f64 / 1_048_576.0;
        reciprocation_mb * 1_000.0 + self.optimistic_weight * request.waiting_secs
    }

    fn record_transfer(&mut self, uploader: P, downloader: P, bytes: u64) {
        *self
            .received_from
            .entry((downloader, uploader))
            .or_insert(0) += bytes;
    }

    fn label(&self) -> &'static str {
        "tit-for-tat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocation_dominates_waiting_time() {
        let mut tft: TitForTat<u32> = TitForTat::new();
        tft.record_transfer(1, 0, 10 * 1_048_576);
        let generous = QueuedRequest::new(1u32, 0.0);
        let patient = QueuedRequest::new(2u32, 500.0);
        assert!(tft.score(0, &generous) > tft.score(0, &patient));
    }

    #[test]
    fn optimistic_unchoke_eventually_serves_strangers() {
        let mut tft: TitForTat<u32> = TitForTat::new();
        tft.record_transfer(1, 0, 1_048_576); // small contribution
        let generous = QueuedRequest::new(1u32, 0.0);
        let very_patient = QueuedRequest::new(2u32, 10_000.0);
        assert!(tft.score(0, &very_patient) > tft.score(0, &generous));
    }

    #[test]
    fn reciprocation_is_per_provider() {
        let mut tft: TitForTat<u32> = TitForTat::new();
        tft.record_transfer(1, 0, 5 * 1_048_576);
        assert_eq!(tft.received(0, 1), 5 * 1_048_576);
        assert_eq!(
            tft.received(2, 1),
            0,
            "credit with peer 0 does not transfer to peer 2"
        );
    }

    #[test]
    fn zero_optimistic_weight_ignores_waiting() {
        let tft: TitForTat<u32> = TitForTat::new().with_optimistic_weight(0.0);
        let stranger = QueuedRequest::new(9u32, 1e9);
        assert_eq!(tft.score(0, &stranger), 0.0);
    }
}
