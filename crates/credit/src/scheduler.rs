//! The unified, object-safe upload-scheduler API.

use std::fmt;

use exchange::Key;

use crate::{
    EmuleCredit, ExchangeOrder, Fifo, IncentiveMechanism, ParticipationLevel, QueuedRequest,
    TitForTat,
};

/// A pluggable upload-scheduling discipline with lifecycle hooks.
///
/// This is the one interface through which the simulator talks to every
/// incentive mechanism the paper compares (Section II): the provider notifies
/// the scheduler of queue and transfer events and asks it to pick the next
/// request to serve.  The trait is object-safe, so a simulation holds a
/// single `Box<dyn UploadScheduler<P>>` regardless of the mechanism under
/// test.
///
/// * [`UploadScheduler::on_request`] — a request entered a provider's
///   incoming-request queue.
/// * [`UploadScheduler::on_transfer_complete`] — one block of data moved;
///   history-based mechanisms (eMule credit, tit-for-tat, participation
///   level) update their state here.
/// * [`UploadScheduler::pick`] — choose which queued request the free upload
///   slot should serve.
///
/// # Example
///
/// ```
/// use credit::{QueuedRequest, SchedulerKind, UploadScheduler};
///
/// let mut scheduler = SchedulerKind::TitForTat.build::<u32>();
/// scheduler.on_transfer_complete(7, 0, 50_000_000); // peer 7 uploaded to us
/// let queue = [QueuedRequest::new(9, 100.0), QueuedRequest::new(7, 1.0)];
/// assert_eq!(scheduler.pick(0, &queue), Some(1)); // reciprocate with peer 7
/// ```
pub trait UploadScheduler<P: Key>: fmt::Debug + Send {
    /// Notifies the scheduler that `requester` queued a request at
    /// `provider`.
    fn on_request(&mut self, requester: P, provider: P) {
        let _ = (requester, provider);
    }

    /// Notifies the scheduler that `uploader` transferred `bytes` to
    /// `downloader`.
    fn on_transfer_complete(&mut self, uploader: P, downloader: P, bytes: u64) {
        let _ = (uploader, downloader, bytes);
    }

    /// Notifies the scheduler that `peer` announced `level` as its own
    /// participation level.  Only self-report-based mechanisms
    /// ([`ParticipationLevel`]) listen; the announcement is taken at face
    /// value, which is exactly the exploit of Section III-B — cheating peers
    /// inflate it.
    fn on_participation_report(&mut self, peer: P, level: f64) {
        let _ = (peer, level);
    }

    /// Picks the request `provider` should serve next from `queue`, or
    /// `None` to leave the slot idle (e.g. when the queue is empty).
    fn pick(&mut self, provider: P, queue: &[QueuedRequest<P>]) -> Option<usize>;

    /// Whether [`UploadScheduler::pick`] reads [`QueuedRequest::reciprocal`].
    /// Callers may skip the (potentially costly) computation of that flag
    /// when this returns `false`.
    fn needs_reciprocal(&self) -> bool {
        false
    }

    /// Exports the scheduler's mutable history for checkpointing.
    ///
    /// Stateless disciplines (FIFO, exchange priority) return
    /// [`SchedulerState::Stateless`]; history-based ones export their tables
    /// in a canonical sorted order so checkpoints are byte-stable.
    fn export_state(&self) -> SchedulerState<P> {
        SchedulerState::Stateless
    }

    /// Restores history previously captured by
    /// [`UploadScheduler::export_state`] into a freshly built scheduler of
    /// the same kind.  A state variant that does not match the scheduler is
    /// ignored (there is nothing to restore into).
    fn import_state(&mut self, state: SchedulerState<P>) {
        let _ = state;
    }

    /// A short, stable label for reports and figures.
    fn label(&self) -> &'static str;
}

/// The mutable history of an [`UploadScheduler`], in a serializable shape.
///
/// Produced by [`UploadScheduler::export_state`] and consumed by
/// [`UploadScheduler::import_state`]; all tables are sorted by key so two
/// checkpoints of the same state are byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerState<P> {
    /// The scheduler keeps no history (FIFO, exchange priority).
    Stateless,
    /// eMule pairwise volumes: `(provider, requester, uploaded_to_me,
    /// downloaded_from_me)` rows.
    EmuleCredit(Vec<(P, P, u64, u64)>),
    /// Tit-for-tat reciprocation volumes: `(provider, requester, bytes)`
    /// rows.
    TitForTat(Vec<(P, P, u64)>),
    /// Self-reported participation levels and the honest upload volumes they
    /// are compared against.
    ParticipationLevel {
        /// `(peer, announced_level)` rows.
        reported: Vec<(P, f64)>,
        /// `(peer, honest_upload_bytes)` rows.
        honest: Vec<(P, u64)>,
    },
}

macro_rules! impl_upload_scheduler_via_mechanism {
    ($($mechanism:ty),*) => {$(
        impl<P: Key + Send> UploadScheduler<P> for $mechanism {
            fn on_transfer_complete(&mut self, uploader: P, downloader: P, bytes: u64) {
                self.record_transfer(uploader, downloader, bytes);
            }

            fn pick(&mut self, provider: P, queue: &[QueuedRequest<P>]) -> Option<usize> {
                IncentiveMechanism::<P>::pick(self, provider, queue)
            }

            fn label(&self) -> &'static str {
                IncentiveMechanism::<P>::label(self)
            }
        }
    )*};
}

impl_upload_scheduler_via_mechanism!(Fifo);

impl<P: Key + Send> UploadScheduler<P> for EmuleCredit<P> {
    fn on_transfer_complete(&mut self, uploader: P, downloader: P, bytes: u64) {
        self.record_transfer(uploader, downloader, bytes);
    }

    fn pick(&mut self, provider: P, queue: &[QueuedRequest<P>]) -> Option<usize> {
        IncentiveMechanism::<P>::pick(self, provider, queue)
    }

    fn export_state(&self) -> SchedulerState<P> {
        SchedulerState::EmuleCredit(self.export_volumes())
    }

    fn import_state(&mut self, state: SchedulerState<P>) {
        if let SchedulerState::EmuleCredit(rows) = state {
            self.import_volumes(rows);
        }
    }

    fn label(&self) -> &'static str {
        IncentiveMechanism::<P>::label(self)
    }
}

impl<P: Key + Send> UploadScheduler<P> for TitForTat<P> {
    fn on_transfer_complete(&mut self, uploader: P, downloader: P, bytes: u64) {
        self.record_transfer(uploader, downloader, bytes);
    }

    fn pick(&mut self, provider: P, queue: &[QueuedRequest<P>]) -> Option<usize> {
        IncentiveMechanism::<P>::pick(self, provider, queue)
    }

    fn export_state(&self) -> SchedulerState<P> {
        SchedulerState::TitForTat(self.export_received())
    }

    fn import_state(&mut self, state: SchedulerState<P>) {
        if let SchedulerState::TitForTat(rows) = state {
            self.import_received(rows);
        }
    }

    fn label(&self) -> &'static str {
        IncentiveMechanism::<P>::label(self)
    }
}

impl<P: Key + Send> UploadScheduler<P> for ExchangeOrder {
    fn pick(&mut self, provider: P, queue: &[QueuedRequest<P>]) -> Option<usize> {
        IncentiveMechanism::<P>::pick(self, provider, queue)
    }

    fn needs_reciprocal(&self) -> bool {
        true
    }

    fn label(&self) -> &'static str {
        IncentiveMechanism::<P>::label(self)
    }
}

impl<P: Key + Send> UploadScheduler<P> for ParticipationLevel<P> {
    fn on_participation_report(&mut self, peer: P, level: f64) {
        self.report(peer, level);
    }

    fn on_transfer_complete(&mut self, uploader: P, downloader: P, bytes: u64) {
        self.record_transfer(uploader, downloader, bytes);
        // Peers continuously re-announce their participation level.  The
        // default wiring models honest clients: the announced level tracks
        // the volume actually uploaded.  Tests and cheating studies can
        // overwrite any peer's announcement via
        // [`ParticipationLevel::report`].
        let honest = self.honest_level(uploader);
        self.report(uploader, honest);
    }

    fn pick(&mut self, provider: P, queue: &[QueuedRequest<P>]) -> Option<usize> {
        IncentiveMechanism::<P>::pick(self, provider, queue)
    }

    fn export_state(&self) -> SchedulerState<P> {
        let (reported, honest) = self.export_levels();
        SchedulerState::ParticipationLevel { reported, honest }
    }

    fn import_state(&mut self, state: SchedulerState<P>) {
        if let SchedulerState::ParticipationLevel { reported, honest } = state {
            self.import_levels(reported, honest);
        }
    }

    fn label(&self) -> &'static str {
        IncentiveMechanism::<P>::label(self)
    }
}

/// Selects which [`UploadScheduler`] a simulation uses for requests that are
/// not already served by an exchange ring (and, when exchanges are disabled,
/// for all requests).
///
/// This enum is the constructor of the scheduler trait object: it is plain
/// data (serializable, hashable) so configurations stay comparable, and
/// [`SchedulerKind::build`] instantiates the matching scheduler state for
/// one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SchedulerKind {
    /// Longest-waiting request first (the paper's behaviour).
    Fifo,
    /// eMule-style pairwise credit (queue rank = waiting time × credit).
    EmuleCredit,
    /// BitTorrent-style reciprocation.
    TitForTat,
    /// KaZaA-style self-reported participation level.
    ParticipationLevel,
    /// Exchange-flavoured ordering: requesters that could reciprocate (they
    /// store an object the provider wants) are served first.
    ExchangePriority,
}

impl SchedulerKind {
    /// Every selectable scheduler, in presentation order.
    #[must_use]
    pub fn all() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Fifo,
            SchedulerKind::EmuleCredit,
            SchedulerKind::TitForTat,
            SchedulerKind::ParticipationLevel,
            SchedulerKind::ExchangePriority,
        ]
    }

    /// Instantiates the scheduler state for one simulation run.
    #[must_use]
    pub fn build<P: Key + Send + 'static>(&self) -> Box<dyn UploadScheduler<P>> {
        match self {
            SchedulerKind::Fifo => Box::new(Fifo::new()),
            SchedulerKind::EmuleCredit => Box::new(EmuleCredit::new()),
            SchedulerKind::TitForTat => Box::new(TitForTat::new()),
            SchedulerKind::ParticipationLevel => Box::new(ParticipationLevel::new()),
            SchedulerKind::ExchangePriority => Box::new(ExchangeOrder::new()),
        }
    }

    /// The label the built scheduler will report.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::EmuleCredit => "emule-credit",
            SchedulerKind::TitForTat => "tit-for-tat",
            SchedulerKind::ParticipationLevel => "participation-level",
            SchedulerKind::ExchangePriority => "exchange-priority",
        }
    }
}

impl Default for SchedulerKind {
    /// The paper serves non-exchange requests first-come, first-served.
    fn default() -> Self {
        SchedulerKind::Fifo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_a_scheduler_with_matching_label() {
        for kind in SchedulerKind::all() {
            let scheduler = kind.build::<u32>();
            assert_eq!(scheduler.label(), kind.label());
        }
    }

    #[test]
    fn built_schedulers_pick_from_queues() {
        let queue = [QueuedRequest::new(1u32, 50.0), QueuedRequest::new(2, 10.0)];
        for kind in SchedulerKind::all() {
            let mut scheduler = kind.build::<u32>();
            let pick = scheduler.pick(0, &queue);
            assert!(
                pick.is_some(),
                "{} must serve a non-empty queue",
                kind.label()
            );
            assert_eq!(scheduler.pick(0, &[]), None);
        }
    }

    #[test]
    fn participation_level_scheduler_self_reports_upload_volume() {
        let mut scheduler = SchedulerKind::ParticipationLevel.build::<u32>();
        // Peer 1 uploads 100 MiB; peer 2 uploads nothing.
        scheduler.on_transfer_complete(1, 9, 100 * 1_048_576);
        let contributor = QueuedRequest::new(1u32, 1.0);
        let stranger = QueuedRequest::new(2u32, 10_000.0);
        assert_eq!(
            scheduler.pick(0, &[stranger, contributor]),
            Some(1),
            "the announced participation level must dominate waiting time"
        );
    }

    #[test]
    fn only_exchange_priority_needs_the_reciprocal_flag() {
        for kind in SchedulerKind::all() {
            let scheduler = kind.build::<u32>();
            assert_eq!(
                scheduler.needs_reciprocal(),
                kind == SchedulerKind::ExchangePriority,
                "{}",
                kind.label()
            );
        }
    }

    #[test]
    fn participation_reports_flow_through_the_trait_object() {
        let mut scheduler = SchedulerKind::ParticipationLevel.build::<u32>();
        // Peer 1 genuinely uploads; peer 2 just announces a huge level.
        scheduler.on_transfer_complete(1, 9, 100 * 1_048_576);
        scheduler.on_participation_report(2, 1.0e9);
        let honest = QueuedRequest::new(1u32, 10_000.0);
        let cheater = QueuedRequest::new(2u32, 1.0);
        assert_eq!(
            scheduler.pick(0, &[honest, cheater]),
            Some(1),
            "an inflated self-report outranks genuine contribution"
        );
        // Every other scheduler ignores the announcement.
        let mut fifo = SchedulerKind::Fifo.build::<u32>();
        fifo.on_participation_report(2, 1.0e9);
        let queue = [QueuedRequest::new(1u32, 50.0), QueuedRequest::new(2, 10.0)];
        assert_eq!(fifo.pick(0, &queue), Some(0));
    }

    #[test]
    fn default_hooks_are_no_ops() {
        let mut fifo = SchedulerKind::Fifo.build::<u32>();
        fifo.on_request(1, 0);
        fifo.on_transfer_complete(1, 0, 42);
        let queue = [QueuedRequest::new(1u32, 1.0), QueuedRequest::new(2, 2.0)];
        assert_eq!(
            fifo.pick(0, &queue),
            Some(1),
            "fifo still serves longest-waiting"
        );
    }
}
