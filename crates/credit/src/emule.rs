//! The eMule-style pairwise credit system.

use std::collections::HashMap;

use exchange::Key;

use crate::{IncentiveMechanism, QueuedRequest};

/// Pairwise upload/download volumes between a provider and one requester.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PairVolumes {
    /// Bytes the requester has uploaded *to the provider*.
    uploaded_to_me: u64,
    /// Bytes the provider has uploaded *to the requester*.
    downloaded_from_me: u64,
}

/// The eMule credit system (Section II of the paper).
///
/// Each provider keeps, per remote peer, how much that peer has uploaded to it
/// and downloaded from it.  A request's *queue rank* is its waiting time
/// multiplied by a credit modifier derived from those volumes; the modifier is
/// clamped to `[1, 10]` as in eMule, so peers without credit can still be
/// served if they wait long enough — exactly the weakness the paper points
/// out.
///
/// # Example
///
/// ```
/// use credit::{EmuleCredit, IncentiveMechanism, QueuedRequest};
///
/// let mut credit: EmuleCredit<u32> = EmuleCredit::new();
/// credit.record_transfer(5, 0, 10_000_000); // peer 5 uploaded 10 MB to us (peer 0)
/// assert!(credit.modifier(0, 5) > 1.0);
/// assert_eq!(credit.modifier(0, 6), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EmuleCredit<P: Key> {
    volumes: HashMap<(P, P), PairVolumes>,
}

impl<P: Key> EmuleCredit<P> {
    /// Creates an empty credit table.
    #[must_use]
    pub fn new() -> Self {
        EmuleCredit {
            volumes: HashMap::new(),
        }
    }

    /// The credit modifier the eMule scoring function applies for requests
    /// from `requester` at `provider`, clamped to `[1, 10]`.
    ///
    /// Following eMule's documented rule, the modifier is the smaller of
    /// `2 × uploaded / downloaded` and `sqrt(uploaded_MB + 2)`, computed from
    /// the pair's history; peers that never uploaded anything get 1.
    #[must_use]
    pub fn modifier(&self, provider: P, requester: P) -> f64 {
        let Some(v) = self.volumes.get(&(provider, requester)) else {
            return 1.0;
        };
        if v.uploaded_to_me == 0 {
            return 1.0;
        }
        let uploaded_mb = v.uploaded_to_me as f64 / 1_048_576.0;
        let ratio = if v.downloaded_from_me == 0 {
            10.0
        } else {
            2.0 * v.uploaded_to_me as f64 / v.downloaded_from_me as f64
        };
        let cap = (uploaded_mb + 2.0).sqrt();
        ratio.min(cap).clamp(1.0, 10.0)
    }

    /// The recorded volume `requester` has uploaded to `provider`, in bytes.
    #[must_use]
    pub fn uploaded_to(&self, provider: P, requester: P) -> u64 {
        self.volumes
            .get(&(provider, requester))
            .map_or(0, |v| v.uploaded_to_me)
    }

    /// Every recorded pair as `(provider, requester, uploaded_to_me,
    /// downloaded_from_me)`, sorted by key — a canonical export for
    /// checkpointing.
    #[must_use]
    pub fn export_volumes(&self) -> Vec<(P, P, u64, u64)> {
        let mut rows: Vec<(P, P, u64, u64)> = self
            .volumes
            // exchange-lint: allow(D001, reason = "collected and sorted by key before any caller sees it")
            .iter()
            .map(|((p, r), v)| (*p, *r, v.uploaded_to_me, v.downloaded_from_me))
            .collect();
        rows.sort_unstable_by_key(|(p, r, _, _)| (*p, *r));
        rows
    }

    /// Replaces the credit table with previously exported rows.
    pub fn import_volumes(&mut self, rows: Vec<(P, P, u64, u64)>) {
        self.volumes = rows
            .into_iter()
            .map(|(p, r, up, down)| {
                (
                    (p, r),
                    PairVolumes {
                        uploaded_to_me: up,
                        downloaded_from_me: down,
                    },
                )
            })
            .collect();
    }
}

impl<P: Key> IncentiveMechanism<P> for EmuleCredit<P> {
    fn score(&self, provider: P, request: &QueuedRequest<P>) -> f64 {
        request.waiting_secs * self.modifier(provider, request.requester)
    }

    fn record_transfer(&mut self, uploader: P, downloader: P, bytes: u64) {
        // From the downloader's point of view, the uploader earned credit.
        self.volumes
            .entry((downloader, uploader))
            .or_default()
            .uploaded_to_me += bytes;
        // From the uploader's point of view, the downloader consumed credit.
        self.volumes
            .entry((uploader, downloader))
            .or_default()
            .downloaded_from_me += bytes;
    }

    fn label(&self) -> &'static str {
        "emule-credit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_peer_has_unit_modifier() {
        let credit: EmuleCredit<u32> = EmuleCredit::new();
        assert_eq!(credit.modifier(0, 1), 1.0);
        assert_eq!(credit.uploaded_to(0, 1), 0);
    }

    #[test]
    fn uploading_earns_credit_with_the_receiver() {
        let mut credit: EmuleCredit<u32> = EmuleCredit::new();
        credit.record_transfer(1, 0, 20 * 1_048_576);
        assert!(
            credit.modifier(0, 1) > 1.0,
            "peer 1 should have credit at peer 0"
        );
        assert_eq!(
            credit.modifier(1, 0),
            1.0,
            "peer 0 earned nothing at peer 1"
        );
        assert_eq!(credit.uploaded_to(0, 1), 20 * 1_048_576);
    }

    #[test]
    fn modifier_is_clamped_to_ten() {
        let mut credit: EmuleCredit<u32> = EmuleCredit::new();
        credit.record_transfer(1, 0, 10_000 * 1_048_576);
        assert!(credit.modifier(0, 1) <= 10.0);
        assert!(credit.modifier(0, 1) >= 1.0);
    }

    #[test]
    fn balanced_exchange_limits_modifier() {
        let mut credit: EmuleCredit<u32> = EmuleCredit::new();
        // Peer 1 uploaded 10 MB to 0 but also downloaded 10 MB from 0:
        // ratio = 2.0, below the sqrt cap.
        credit.record_transfer(1, 0, 10 * 1_048_576);
        credit.record_transfer(0, 1, 10 * 1_048_576);
        let m = credit.modifier(0, 1);
        assert!(
            (m - 2.0).abs() < 1e-9,
            "expected ratio-based modifier, got {m}"
        );
    }

    #[test]
    fn small_upload_is_capped_by_sqrt_rule() {
        let mut credit: EmuleCredit<u32> = EmuleCredit::new();
        // 1 MB uploaded, nothing downloaded: ratio says 10, cap says sqrt(3) ≈ 1.73.
        credit.record_transfer(1, 0, 1_048_576);
        let m = credit.modifier(0, 1);
        assert!((m - 3f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn score_scales_waiting_time_by_modifier() {
        let mut credit: EmuleCredit<u32> = EmuleCredit::new();
        credit.record_transfer(1, 0, 100 * 1_048_576);
        let with_credit = QueuedRequest::new(1u32, 10.0);
        let without = QueuedRequest::new(2u32, 10.0);
        assert!(credit.score(0, &with_credit) > credit.score(0, &without));
        // But a patient stranger eventually overtakes: the paper's criticism.
        let patient_stranger = QueuedRequest::new(2u32, 1_000.0);
        assert!(credit.score(0, &patient_stranger) > credit.score(0, &with_credit));
    }

    #[test]
    fn pick_prefers_contributors_at_equal_waiting_time() {
        let mut credit: EmuleCredit<u32> = EmuleCredit::new();
        credit.record_transfer(2, 0, 50 * 1_048_576);
        let queue = vec![QueuedRequest::new(1u32, 30.0), QueuedRequest::new(2, 30.0)];
        assert_eq!(credit.pick(0, &queue), Some(1));
    }
}
