//! Shared support code for the figure-regeneration binaries and benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! by running a [`sim::Scenario`] sweep.  They all accept:
//!
//! * `--scale <f>` — multiply the simulated duration (and warm-up) by `f`
//!   (default 0.25; `1.0` reproduces the full-length runs recorded in
//!   EXPERIMENTS.md, `0.05` gives a quick smoke run).
//! * `--peers <n>` — override the number of peers (default 200, Table II).
//! * `--seed <s>` — the first deterministic seed (default 1).
//! * `--seeds <n>` — how many consecutive seeds to run per grid point
//!   (default 3); points are aggregated as mean ± 95% CI over the seeds and
//!   executed in parallel by the scenario engine.
//! * `--stream <file.jsonl>` — additionally stream every completed
//!   `(point, seed)` row to `file.jsonl` as one JSON object per line, in
//!   completion order, flushed per line — a run killed partway leaves a
//!   parsable prefix that `bench_gate --stream` can consume.
//!
//! The binaries print the same rows/series the paper reports, using
//! [`metrics::Table`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use sim::{Aggregate, Scenario, SimConfig, SweepGrid};

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureOptions {
    /// Duration scale factor relative to the full-length experiment.
    pub scale: f64,
    /// Number of peers in the simulated system.
    pub peers: usize,
    /// First deterministic seed.
    pub seed: u64,
    /// Number of consecutive seeds per grid point.
    pub seeds: u64,
    /// Object size in MiB (Table II uses 20; smaller objects shrink the
    /// system's time constant so that scaled-down runs still reach steady
    /// state — see EXPERIMENTS.md).
    pub object_mb: u64,
    /// When set, stream completed sweep rows to this JSON-lines file.
    pub stream: Option<String>,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            scale: 0.25,
            peers: 200,
            seed: 1,
            seeds: 3,
            object_mb: 20,
            stream: None,
        }
    }
}

impl FigureOptions {
    /// Parses `--scale`, `--peers`, `--seed`, `--seeds` and `--object-mb`
    /// from an argument iterator (unknown arguments are ignored so that
    /// `cargo bench`-style extra arguments do not break the binaries).
    #[must_use]
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = FigureOptions::default();
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            let value = args.get(i + 1);
            match (args[i].as_str(), value) {
                ("--scale", Some(v)) => {
                    if let Ok(f) = v.parse::<f64>() {
                        if f > 0.0 {
                            options.scale = f;
                        }
                    }
                    i += 1;
                }
                ("--peers", Some(v)) => {
                    if let Ok(n) = v.parse::<usize>() {
                        if n >= 2 {
                            options.peers = n;
                        }
                    }
                    i += 1;
                }
                ("--seed", Some(v)) => {
                    if let Ok(s) = v.parse::<u64>() {
                        options.seed = s;
                    }
                    i += 1;
                }
                ("--seeds", Some(v)) => {
                    if let Ok(n) = v.parse::<u64>() {
                        if n >= 1 {
                            options.seeds = n;
                        }
                    }
                    i += 1;
                }
                ("--object-mb", Some(v)) => {
                    if let Ok(m) = v.parse::<u64>() {
                        if m > 0 {
                            options.object_mb = m;
                        }
                    }
                    i += 1;
                }
                ("--stream", Some(v)) => {
                    options.stream = Some(v.clone());
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        options
    }

    /// Parses the options from the process environment.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The base configuration every figure starts from: the paper's Table II
    /// parameters with the requested peer count and duration scale.
    #[must_use]
    pub fn base_config(&self) -> SimConfig {
        let mut config = SimConfig::paper_defaults().with_duration_scale(self.scale);
        config.num_peers = self.peers;
        config.workload.object_size_bytes = self.object_mb * 1024 * 1024;
        config
    }

    /// The seed range scenarios run under: `seed, seed+1, ..`.
    #[must_use]
    pub fn seed_range(&self) -> std::ops::Range<u64> {
        self.seed..self.seed + self.seeds
    }

    /// Runs a scenario under this figure's seeds, honouring `--stream`: with
    /// it, completed rows are streamed to the JSON-lines file as they finish
    /// (see [`Scenario::run_streamed`]); without it, this is a plain
    /// [`Scenario::run`].  The returned grid is identical either way.
    ///
    /// # Panics
    ///
    /// Panics when the stream file cannot be created or written — a figure
    /// run asked to leave a monitoring artifact must not silently drop it.
    #[must_use]
    pub fn run_grid(&self, scenario: Scenario) -> SweepGrid {
        let scenario = scenario.seeds(self.seed_range());
        match &self.stream {
            Some(path) => {
                let mut file = std::fs::File::create(path)
                    .unwrap_or_else(|e| panic!("cannot create stream file {path}: {e}"));
                scenario
                    .run_streamed(&mut file)
                    .unwrap_or_else(|e| panic!("cannot stream rows to {path}: {e}"))
            }
            None => scenario.run(),
        }
    }
}

/// A machine-speed yardstick for the bench-regression gate: iterations per
/// second of a fixed integer-arithmetic reference loop on this host.
///
/// The `scale` bench records this next to its wall-clock timings so that
/// [`bench_gate`](../bin/bench_gate.rs) can compare **calibrated event
/// rates** (`events / phase_s / calibration`) instead of absolute seconds:
/// when CI moves to a runner that is uniformly 2× slower, every phase time
/// doubles but so does the reference loop, and the gate still passes — while
/// a real per-event cost regression moves the ratio and still trips it.
///
/// The loop is xorshift64* state mixing: pure register arithmetic with no
/// memory traffic, so the measured rate tracks scalar CPU speed — the same
/// resource the single-threaded event loop is bound by — rather than cache
/// or memory-bandwidth effects.  One warm-up pass absorbs frequency
/// scaling; the best of three timed passes is kept, the maximum being the
/// estimate least contaminated by scheduler noise.
#[must_use]
pub fn calibrate_ops_per_s() -> f64 {
    use std::hint::black_box;
    use std::time::Instant;
    const OPS: u64 = 50_000_000;
    fn reference(ops: u64) -> u64 {
        let mut x = 0x9e37_79b9_7f4a_7c15_u64;
        for _ in 0..ops {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        x
    }
    black_box(reference(black_box(OPS / 10)));
    let mut best = 0.0f64;
    for _ in 0..3 {
        let started = Instant::now();
        black_box(reference(black_box(OPS)));
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            best = best.max(OPS as f64 / elapsed);
        }
    }
    best
}

/// Formats an optional aggregated mean (in minutes) for table output.
#[must_use]
pub fn fmt_minutes(value: Option<Aggregate>) -> String {
    fmt_aggregate(value, 1)
}

/// Formats an optional aggregated ratio.
#[must_use]
pub fn fmt_ratio(value: Option<Aggregate>) -> String {
    fmt_aggregate(value, 2)
}

/// Formats an aggregate as `mean±ci` (the CI half-width is omitted when a
/// single seed ran), or `n/a` when no seed reported the metric.
#[must_use]
pub fn fmt_aggregate(value: Option<Aggregate>, precision: usize) -> String {
    match value {
        Some(a) if a.n > 1 => format!("{:.precision$}±{:.precision$}", a.mean, a.ci95),
        Some(a) => format!("{:.precision$}", a.mean),
        None => "n/a".to_string(),
    }
}

/// Prints the standard header every figure binary starts with.
pub fn print_figure_header(title: &str, options: &FigureOptions, config: &SimConfig) {
    println!("{title}");
    println!(
        "{} peers, {:.1}h simulated ({:.1}h warm-up), seeds {}..{}, scale {}",
        config.num_peers,
        config.sim_duration_s / 3600.0,
        config.warmup_s / 3600.0,
        options.seed,
        options.seed + options.seeds,
        options.scale
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> FigureOptions {
        FigureOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let options = parse(&[]);
        assert_eq!(options, FigureOptions::default());
        assert_eq!(options.seed_range(), 1..4);
    }

    #[test]
    fn parses_known_flags() {
        let options = parse(&[
            "--scale",
            "0.5",
            "--peers",
            "100",
            "--seed",
            "7",
            "--seeds",
            "5",
            "--object-mb",
            "5",
        ]);
        assert_eq!(options.scale, 0.5);
        assert_eq!(options.peers, 100);
        assert_eq!(options.seed, 7);
        assert_eq!(options.seeds, 5);
        assert_eq!(options.object_mb, 5);
        assert_eq!(options.seed_range(), 7..12);
    }

    #[test]
    fn ignores_unknown_and_invalid_flags() {
        let options = parse(&[
            "--bench", "--scale", "abc", "--peers", "1", "--seeds", "0", "extra",
        ]);
        assert_eq!(options.scale, FigureOptions::default().scale);
        assert_eq!(options.peers, FigureOptions::default().peers);
        assert_eq!(options.seeds, FigureOptions::default().seeds);
    }

    #[test]
    fn base_config_applies_scale_peers_and_object_size() {
        let options = parse(&["--scale", "0.1", "--peers", "50", "--object-mb", "5"]);
        let config = options.base_config();
        assert_eq!(config.num_peers, 50);
        assert!((config.sim_duration_s - 0.1 * 48.0 * 3600.0).abs() < 1e-6);
        assert_eq!(config.workload.object_size_bytes, 5 * 1024 * 1024);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn calibration_is_positive_and_repeatable_in_order_of_magnitude() {
        let a = calibrate_ops_per_s();
        let b = calibrate_ops_per_s();
        assert!(a.is_finite() && a > 0.0, "calibration not positive: {a}");
        // Back-to-back runs on the same host agree well within 10× — the
        // gate only needs the yardstick to track machine speed coarsely.
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 10.0, "calibration unstable: {a} vs {b}");
    }

    #[test]
    fn formatting_helpers() {
        let single = Aggregate {
            mean: 12.34,
            ci95: 0.0,
            n: 1,
        };
        let multi = Aggregate {
            mean: 12.34,
            ci95: 1.27,
            n: 3,
        };
        assert_eq!(fmt_minutes(Some(single)), "12.3");
        assert_eq!(fmt_minutes(Some(multi)), "12.3±1.3");
        assert_eq!(fmt_minutes(None), "n/a");
        assert_eq!(fmt_ratio(Some(multi)), "12.34±1.27");
        assert_eq!(fmt_ratio(None), "n/a");
    }
}
