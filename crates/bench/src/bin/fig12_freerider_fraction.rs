//! Figure 12: mean download times vs. the fraction of non-sharing peers.

use bench_support::{fmt_minutes, print_figure_header, FigureOptions};
use exchange::ExchangePolicy;
use metrics::Table;
use sim::experiment::freerider_sweep;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 12 — mean download time (minutes) vs fraction of non-sharing peers",
        &options,
        &base,
    );

    let fractions = [0.1, 0.3, 0.5, 0.7, 0.9];
    let policies = ExchangePolicy::paper_set();
    let points = freerider_sweep(&base, &policies, &fractions, options.seed);

    let mut table = Table::new(vec![
        "non-sharing fraction",
        "no-exchange",
        "pairwise/sharing",
        "pairwise/non-sharing",
        "5-2-way/sharing",
        "5-2-way/non-sharing",
        "2-5-way/sharing",
        "2-5-way/non-sharing",
    ]);
    for &fraction in &fractions {
        let at = |policy: &ExchangePolicy| {
            points
                .iter()
                .find(|p| p.freerider_fraction == fraction && p.policy == *policy)
                .expect("sweep covers every (fraction, policy) pair")
        };
        let none = at(&ExchangePolicy::NoExchange);
        let pairwise = at(&ExchangePolicy::Pairwise);
        let longer = at(&ExchangePolicy::five_two_way());
        let shorter = at(&ExchangePolicy::two_five_way());
        table.add_row(vec![
            format!("{fraction:.1}"),
            fmt_minutes(none.sharing_min.or(none.non_sharing_min)),
            fmt_minutes(pairwise.sharing_min),
            fmt_minutes(pairwise.non_sharing_min),
            fmt_minutes(longer.sharing_min),
            fmt_minutes(longer.non_sharing_min),
            fmt_minutes(shorter.sharing_min),
            fmt_minutes(shorter.non_sharing_min),
        ]);
    }
    println!("{table}");
    println!("Paper shape: the gap between sharing and non-sharing users persists across the");
    println!("whole range of free-rider fractions; with few sharers, the rare sharer gets a");
    println!("large reward, and with few free-riders, the free-riders pay a large penalty.");
}
