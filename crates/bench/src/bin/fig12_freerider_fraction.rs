//! Figure 12: mean download times vs. the fraction of non-sharing peers.

use bench_support::{fmt_minutes, print_figure_header, FigureOptions};
use exchange::ExchangePolicy;
use metrics::Table;
use sim::experiment::freerider_scenario;
use sim::PeerClass;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 12 — mean download time (minutes) vs fraction of non-sharing peers",
        &options,
        &base,
    );

    let fractions = [0.1, 0.3, 0.5, 0.7, 0.9];
    let policies = ExchangePolicy::paper_set();
    let grid = options.run_grid(freerider_scenario(&base, &policies, &fractions));

    let mut table = Table::new(vec![
        "non-sharing fraction",
        "no-exchange",
        "pairwise/sharing",
        "pairwise/non-sharing",
        "5-2-way/sharing",
        "5-2-way/non-sharing",
        "2-5-way/sharing",
        "2-5-way/non-sharing",
    ]);
    for &fraction in &fractions {
        let fraction_label = format!("{fraction}");
        let mean = |policy: &ExchangePolicy, class: PeerClass| {
            grid.aggregate_where(
                &[
                    ("freerider_fraction", fraction_label.as_str()),
                    ("discipline", &policy.label()),
                ],
                |r| r.mean_download_time_min(class),
            )
        };
        let none = &ExchangePolicy::NoExchange;
        let pairwise = &ExchangePolicy::Pairwise;
        let longer = &ExchangePolicy::five_two_way();
        let shorter = &ExchangePolicy::two_five_way();
        table.add_row(vec![
            format!("{fraction:.1}"),
            fmt_minutes(
                mean(none, PeerClass::Sharing).or_else(|| mean(none, PeerClass::NonSharing)),
            ),
            fmt_minutes(mean(pairwise, PeerClass::Sharing)),
            fmt_minutes(mean(pairwise, PeerClass::NonSharing)),
            fmt_minutes(mean(longer, PeerClass::Sharing)),
            fmt_minutes(mean(longer, PeerClass::NonSharing)),
            fmt_minutes(mean(shorter, PeerClass::Sharing)),
            fmt_minutes(mean(shorter, PeerClass::NonSharing)),
        ]);
    }
    println!("{table}");
    println!("Values are mean±95% CI over {} seeds.", options.seeds);
    println!("Paper shape: the gap between sharing and non-sharing users persists across the");
    println!("whole range of free-rider fractions; with few sharers, the rare sharer gets a");
    println!("large reward, and with few free-riders, the free-riders pay a large penalty.");
}
