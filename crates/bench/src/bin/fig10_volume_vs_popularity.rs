//! Figure 10: per-peer transfer volume vs. the popularity factor f.

use bench_support::{print_figure_header, FigureOptions};
use exchange::ExchangePolicy;
use metrics::Table;
use sim::experiment::popularity_sweep;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 10 — mean volume downloaded per peer (MB) vs object popularity factor f",
        &options,
        &base,
    );

    let factors = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let policies = ExchangePolicy::paper_set();
    let points = popularity_sweep(&base, &policies, &factors, options.seed);

    let fmt = |v: Option<f64>| v.map_or("n/a".to_string(), |x| format!("{x:.0}"));
    let mut table = Table::new(vec![
        "f",
        "no-exchange",
        "pairwise/sharing",
        "pairwise/non-sharing",
        "5-2-way/sharing",
        "5-2-way/non-sharing",
        "2-5-way/sharing",
        "2-5-way/non-sharing",
    ]);
    for &f in &factors {
        let at = |policy: &ExchangePolicy| {
            points
                .iter()
                .find(|p| p.factor == f && p.policy == *policy)
                .expect("sweep covers every (factor, policy) pair")
        };
        let none = at(&ExchangePolicy::NoExchange);
        let pairwise = at(&ExchangePolicy::Pairwise);
        let longer = at(&ExchangePolicy::five_two_way());
        let shorter = at(&ExchangePolicy::two_five_way());
        table.add_row(vec![
            format!("{f:.1}"),
            fmt(none.sharing_volume_mb.or(none.non_sharing_volume_mb)),
            fmt(pairwise.sharing_volume_mb),
            fmt(pairwise.non_sharing_volume_mb),
            fmt(longer.sharing_volume_mb),
            fmt(longer.non_sharing_volume_mb),
            fmt(shorter.sharing_volume_mb),
            fmt(shorter.non_sharing_volume_mb),
        ]);
    }
    println!("{table}");
    println!("Paper shape: sharing users move substantially more data than non-sharing users");
    println!("under exchange disciplines; the two ring orderings have similar volumes.");
}
