//! Figure 10: per-peer transfer volume vs. the popularity factor f.

use bench_support::{fmt_aggregate, print_figure_header, FigureOptions};
use exchange::ExchangePolicy;
use metrics::Table;
use sim::experiment::popularity_scenario;
use sim::PeerClass;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 10 — mean volume downloaded per peer (MB) vs object popularity factor f",
        &options,
        &base,
    );

    let factors = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let policies = ExchangePolicy::paper_set();
    let grid = options.run_grid(popularity_scenario(&base, &policies, &factors));

    let mut table = Table::new(vec![
        "f",
        "no-exchange",
        "pairwise/sharing",
        "pairwise/non-sharing",
        "5-2-way/sharing",
        "5-2-way/non-sharing",
        "2-5-way/sharing",
        "2-5-way/non-sharing",
    ]);
    for &f in &factors {
        let factor_label = format!("{f}");
        let volume = |policy: &ExchangePolicy, class: PeerClass| {
            grid.aggregate_where(
                &[
                    ("popularity_factor", factor_label.as_str()),
                    ("discipline", &policy.label()),
                ],
                |r| r.mean_volume_per_peer_mb(class),
            )
        };
        let none = &ExchangePolicy::NoExchange;
        let pairwise = &ExchangePolicy::Pairwise;
        let longer = &ExchangePolicy::five_two_way();
        let shorter = &ExchangePolicy::two_five_way();
        table.add_row(vec![
            format!("{f:.1}"),
            fmt_aggregate(
                volume(none, PeerClass::Sharing).or_else(|| volume(none, PeerClass::NonSharing)),
                0,
            ),
            fmt_aggregate(volume(pairwise, PeerClass::Sharing), 0),
            fmt_aggregate(volume(pairwise, PeerClass::NonSharing), 0),
            fmt_aggregate(volume(longer, PeerClass::Sharing), 0),
            fmt_aggregate(volume(longer, PeerClass::NonSharing), 0),
            fmt_aggregate(volume(shorter, PeerClass::Sharing), 0),
            fmt_aggregate(volume(shorter, PeerClass::NonSharing), 0),
        ]);
    }
    println!("{table}");
    println!("Values are mean±95% CI over {} seeds.", options.seeds);
    println!("Paper shape: sharing users move substantially more data than non-sharing users");
    println!("under exchange disciplines; the two ring orderings have similar volumes.");
}
