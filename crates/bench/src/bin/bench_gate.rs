//! CI bench-regression gate.
//!
//! Compares a fresh `scale` bench run (the CI 1k smoke) against the
//! checked-in `BENCH_scale.json` baseline and exits non-zero when any phase
//! regressed by more than the tolerance — turning the benchmark trajectory
//! from a write-only artifact into an enforced gate.
//!
//! ```text
//! cargo run --release -p exchange-bench --bin bench_gate -- \
//!     --baseline BENCH_scale.json --current /tmp/bench_scale_smoke.json \
//!     [--tier 1k] [--mode entry-warm] [--tolerance 0.25] [--min-phase-s 0.05]
//! ```
//!
//! **What is compared.** When both files carry `calibration_ops_per_s`
//! (the host's rate on a fixed CPU-bound reference loop, recorded by the
//! scale bench next to its timings), the gate compares **calibrated event
//! rates**: each phase's `events / phase_s`, with the current run rescaled
//! by `current_calibration / baseline_calibration` into baseline-machine
//! units.  A CI runner that is uniformly 2× slower halves the event rate
//! *and* the reference-loop rate, so the calibrated ratio is unchanged and
//! the gate survives hardware drift — while a real per-event cost
//! regression moves only the numerator and still trips it.  When either
//! file predates calibration, the gate falls back to the legacy
//! absolute-seconds comparison.
//!
//! Phase values are averaged across each file's runs, so a 1-seed smoke is
//! comparable against a 2-seed baseline.  Phases below `--min-phase-s` in
//! *both* files are skipped (micro-phases are noise-dominated), and only
//! keys present in both files are compared, so adding a phase to the
//! profile never breaks the gate against an older baseline.  The
//! `BENCH_GATE_TOLERANCE` environment variable overrides `--tolerance`
//! (escape hatch for known-noisy runners without a code change).
//!
//! The workspace has no JSON dependency (serde is an offline stub), so a
//! ~90-line recursive-descent parser lives below; it accepts exactly the
//! JSON subset the scale bench emits.
//!
//! **Stream mode.**  `bench_gate --stream <rows.jsonl> [--min-rows N]`
//! consumes a JSON-lines sweep stream (the `--stream` output of the figure
//! binaries / `Scenario::run_streamed`) instead of comparing bench timings.
//! The stream may be *partial*: a run killed mid-sweep leaves complete rows
//! plus at most one truncated trailing line, which is tolerated and
//! reported.  A malformed line anywhere else is a hard error.  The gate
//! prints per-point row counts and mean completed downloads, and exits
//! non-zero when fewer than `--min-rows` (default 1) complete rows were
//! recovered — so CI can assert a killed nightly still left a usable
//! monitoring artifact.
//!
//! **Speedup mode.**  `bench_gate --require-speedup <BENCH.json>` enforces
//! the multi-core contract instead of comparing two files: every tier in
//! the file that records `speedup_sharded` must show a value **> 1.0** —
//! the persistent worker pool must actually beat the sequential engine, not
//! merely match it.  On a host whose recorded `host_parallelism` is 1 the
//! figure is meaningless (the workers time-slice one core), so the gate
//! prints a skip notice and exits 0.  The nightly multicore job runs this
//! against its fresh `BENCH_scale_multicore.json`.
//!
//! **Step summaries.**  `--summary` (valid in compare and speedup modes)
//! additionally renders the verdict table as GitHub-flavoured markdown and
//! appends it to `$GITHUB_STEP_SUMMARY` when that variable is set (falling
//! back to stdout locally), so the per-phase deltas are readable from the
//! Actions run page without expanding logs.

use std::collections::BTreeMap;
use std::process::ExitCode;

// ---- minimal JSON value ----------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing input at byte {}", parser.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The bench writer never emits escapes beyond these.
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

// ---- gate logic ------------------------------------------------------------

/// One side (baseline or current) of the comparison: per-phase mean
/// seconds, the mean event count, and the file's machine calibration.
struct Side {
    phases: BTreeMap<String, f64>,
    /// Mean `phases.events` across runs; `None` for pre-events baselines.
    events: Option<f64>,
    /// Top-level `calibration_ops_per_s`; `None` for pre-calibration files.
    calibration: Option<f64>,
}

/// Per-phase mean seconds of one (tier, mode) across its runs, `run_s`
/// included under the pseudo-phase name `run`.
fn phase_means(root: &Json, tier: &str, mode: &str) -> Result<Side, String> {
    let tiers = root
        .get("tiers")
        .and_then(Json::as_array)
        .ok_or("no 'tiers' array")?;
    let tier_obj = tiers
        .iter()
        .find(|t| t.get("tier").and_then(Json::as_str) == Some(tier))
        .ok_or_else(|| format!("tier '{tier}' not present"))?;
    let modes = tier_obj
        .get("modes")
        .and_then(Json::as_array)
        .ok_or("no 'modes' array")?;
    let mode_obj = modes
        .iter()
        .find(|m| m.get("mode").and_then(Json::as_str) == Some(mode))
        .ok_or_else(|| format!("mode '{mode}' not present in tier '{tier}'"))?;
    let runs = mode_obj
        .get("runs")
        .and_then(Json::as_array)
        .ok_or("no 'runs' array")?;
    if runs.is_empty() {
        return Err(format!("tier '{tier}' mode '{mode}' has no runs"));
    }
    let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    let mut events_sum = 0.0f64;
    let mut events_n = 0usize;
    for run in runs {
        if let Some(run_s) = run.get("run_s").and_then(Json::as_f64) {
            let entry = sums.entry("run".into()).or_default();
            entry.0 += run_s;
            entry.1 += 1;
        }
        let Some(Json::Object(phases)) = run.get("phases") else {
            continue;
        };
        if let Some(events) = phases.get("events").and_then(Json::as_f64) {
            events_sum += events;
            events_n += 1;
        }
        for (key, value) in phases {
            let Some(seconds) = value.as_f64() else {
                continue;
            };
            if let Some(name) = key.strip_suffix("_s") {
                let entry = sums.entry(name.to_string()).or_default();
                entry.0 += seconds;
                entry.1 += 1;
            }
        }
    }
    Ok(Side {
        phases: sums
            .into_iter()
            .map(|(name, (sum, n))| (name, sum / n as f64))
            .collect(),
        events: (events_n > 0).then(|| events_sum / events_n as f64),
        calibration: root
            .get("calibration_ops_per_s")
            .and_then(Json::as_f64)
            .filter(|c| *c > 0.0),
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate --baseline <BENCH_scale.json> --current <smoke.json> \
         [--tier 1k] [--mode entry-warm] [--tolerance 0.25] [--min-phase-s 0.05] [--summary]\n\
         \x20      bench_gate --stream <rows.jsonl> [--min-rows 1]\n\
         \x20      bench_gate --require-speedup <BENCH_scale_multicore.json> [--summary]"
    );
    std::process::exit(2)
}

/// Appends a markdown block to `$GITHUB_STEP_SUMMARY`; outside Actions
/// (variable unset or unwritable) it prints to stdout so `--summary` is
/// still previewable locally.
fn emit_summary(markdown: &str) {
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write as _;
        let appended = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .and_then(|mut file| writeln!(file, "{markdown}"));
        match appended {
            Ok(()) => return,
            Err(e) => eprintln!("bench_gate: cannot append to {path}: {e}"),
        }
    }
    println!("{markdown}");
}

/// Enforces `speedup_sharded > 1.0` for every tier that records it, unless
/// the file was produced on a single-core host (skip, exit 0).
fn gate_speedup(path: &str, summary: bool) -> ExitCode {
    let root = match std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))
        .and_then(|text| Parser::parse(&text).map_err(|e| format!("{path}: {e}")))
    {
        Ok(root) => root,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };
    let host_parallelism = root
        .get("host_parallelism")
        .and_then(Json::as_f64)
        .unwrap_or(1.0);
    if host_parallelism <= 1.0 {
        println!(
            "bench_gate: {path} records host_parallelism {host_parallelism:.0} — \
             sharded speedup is meaningless when the workers time-slice one \
             core; skipping the speedup gate"
        );
        return ExitCode::SUCCESS;
    }
    let Some(tiers) = root.get("tiers").and_then(Json::as_array) else {
        eprintln!("bench_gate: {path}: no 'tiers' array");
        return ExitCode::from(2);
    };
    let mut markdown = format!(
        "## Sharded speedup gate ({path}, {host_parallelism:.0} cores)\n\n\
         | tier | speedup_sharded | verdict |\n|---|---:|---|\n"
    );
    let mut checked = 0usize;
    let mut failures = 0usize;
    for tier in tiers {
        let label = tier.get("tier").and_then(Json::as_str).unwrap_or("?");
        let Some(speedup) = tier.get("speedup_sharded").and_then(Json::as_f64) else {
            continue;
        };
        checked += 1;
        let passed = speedup > 1.0;
        failures += usize::from(!passed);
        println!(
            "bench_gate: tier {label}: speedup_sharded {speedup:.3}x — {}",
            if passed { "ok" } else { "NOT > 1.0" }
        );
        use std::fmt::Write as _;
        let _ = writeln!(
            markdown,
            "| {label} | {speedup:.3}x | {} |",
            if passed { "✅ ok" } else { "❌ not > 1.0" }
        );
    }
    if checked == 0 {
        eprintln!(
            "bench_gate: {path}: no tier records speedup_sharded — \
             was the bench run with --shards > 1?"
        );
        return ExitCode::from(2);
    }
    if summary {
        emit_summary(&markdown);
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} tier(s) failed to clear 1.0x sharded \
             speedup on a {host_parallelism:.0}-core host"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: all {checked} tier(s) clear 1.0x sharded speedup");
    ExitCode::SUCCESS
}

/// Consumes a possibly-truncated JSON-lines sweep stream: counts complete
/// rows per grid point, tolerates one partial trailing line (the kill
/// case), and fails when fewer than `min_rows` complete rows survive.
fn gate_stream(path: &str, min_rows: usize) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let lines: Vec<&str> = text.lines().collect();
    // (rows, completed-downloads sum, how many rows reported the metric)
    let mut points: BTreeMap<u64, (usize, f64, usize)> = BTreeMap::new();
    let mut rows = 0usize;
    let mut truncated = false;
    for (index, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = match Parser::parse(line) {
            Ok(row) => row,
            Err(e) if index == lines.len() - 1 => {
                // A SIGKILL between write and flush leaves one partial line;
                // everything before it is still a complete record.
                eprintln!("bench_gate: tolerating truncated final line ({e})");
                truncated = true;
                continue;
            }
            Err(e) => {
                eprintln!("bench_gate: {path} line {}: {e}", index + 1);
                return ExitCode::from(2);
            }
        };
        let (Some(point), Some(_seed)) = (
            row.get("point").and_then(Json::as_f64),
            row.get("seed").and_then(Json::as_f64),
        ) else {
            eprintln!(
                "bench_gate: {path} line {}: not a sweep row (missing point/seed)",
                index + 1
            );
            return ExitCode::from(2);
        };
        rows += 1;
        let entry = points.entry(point as u64).or_insert((0, 0.0, 0));
        entry.0 += 1;
        if let Some(completed) = row
            .get("metrics")
            .and_then(|m| m.get("completed_downloads"))
            .and_then(Json::as_f64)
        {
            entry.1 += completed;
            entry.2 += 1;
        }
    }
    println!(
        "bench_gate: {path}: {rows} complete row(s) across {} point(s){}",
        points.len(),
        if truncated {
            " (stream truncated mid-line)"
        } else {
            ""
        }
    );
    for (point, (count, sum, reported)) in &points {
        let mean = if *reported > 0 {
            format!("{:.1}", sum / *reported as f64)
        } else {
            "n/a".to_string()
        };
        println!("  point {point}: {count} row(s), mean completed_downloads {mean}");
    }
    if rows < min_rows {
        eprintln!("bench_gate: only {rows} complete row(s), need at least {min_rows}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = None;
    let mut current_path = None;
    let mut tier = "1k".to_string();
    let mut mode = "entry-warm".to_string();
    let mut tolerance = 0.25f64;
    let mut min_phase_s = 0.05f64;
    let mut stream_path = None;
    let mut min_rows = 1usize;
    let mut speedup_path = None;
    let mut summary = false;
    let mut i = 0;
    while i < args.len() {
        // `--summary` is the lone boolean flag; everything else takes a value.
        if args[i] == "--summary" {
            summary = true;
            i += 1;
            continue;
        }
        match (args[i].as_str(), args.get(i + 1)) {
            ("--baseline", Some(v)) => baseline_path = Some(v.clone()),
            ("--current", Some(v)) => current_path = Some(v.clone()),
            ("--tier", Some(v)) => tier = v.clone(),
            ("--mode", Some(v)) => mode = v.clone(),
            ("--tolerance", Some(v)) => tolerance = v.parse().unwrap_or_else(|_| usage()),
            ("--min-phase-s", Some(v)) => min_phase_s = v.parse().unwrap_or_else(|_| usage()),
            ("--stream", Some(v)) => stream_path = Some(v.clone()),
            ("--min-rows", Some(v)) => min_rows = v.parse().unwrap_or_else(|_| usage()),
            ("--require-speedup", Some(v)) => speedup_path = Some(v.clone()),
            _ => usage(),
        }
        i += 2;
    }
    if let Some(path) = speedup_path {
        return gate_speedup(&path, summary);
    }
    if let Some(path) = stream_path {
        return gate_stream(&path, min_rows);
    }
    if let Ok(raw) = std::env::var("BENCH_GATE_TOLERANCE") {
        match raw.parse::<f64>() {
            Ok(value) if value >= 0.0 => {
                eprintln!("bench_gate: tolerance overridden to {value} via BENCH_GATE_TOLERANCE");
                tolerance = value;
            }
            _ => eprintln!("bench_gate: ignoring unparsable BENCH_GATE_TOLERANCE={raw}"),
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        usage()
    };

    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Parser::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };
    let (base_side, now_side) = match (
        phase_means(&baseline, &tier, &mode),
        phase_means(&current, &tier, &mode),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    // Calibrated mode needs the machine yardstick in BOTH files and event
    // counts in both; anything older falls back to absolute seconds.
    let calibrated = match (
        base_side.calibration,
        now_side.calibration,
        base_side.events,
        now_side.events,
    ) {
        (Some(bc), Some(nc), Some(be), Some(ne)) => Some((bc, nc, be, ne)),
        _ => None,
    };

    println!(
        "bench_gate: tier {tier}, mode {mode}, tolerance {:.0}%, {}",
        tolerance * 100.0,
        match calibrated {
            Some((bc, nc, ..)) => format!("calibrated events/s (machine ratio {:.2}x)", nc / bc),
            None => "absolute seconds (no calibration in one side)".to_string(),
        }
    );
    let unit = if calibrated.is_some() { "kev/s" } else { "s" };
    println!(
        "{:<20} {:>12} {:>12} {:>8}  verdict",
        "phase",
        format!("base {unit}"),
        format!("cur {unit}"),
        "ratio"
    );
    use std::fmt::Write as _;
    let mut markdown = format!(
        "## Bench gate: tier {tier}, mode {mode} ({})\n\n\
         tolerance {:.0}% against `{baseline_path}`\n\n\
         | phase | base {unit} | current {unit} | ratio | verdict |\n\
         |---|---:|---:|---:|---|\n",
        match calibrated {
            Some(_) => "calibrated event rates",
            None => "absolute seconds",
        },
        tolerance * 100.0,
    );
    let mut regressions = 0usize;
    for (name, &base) in &base_side.phases {
        let Some(&now) = now_side.phases.get(name) else {
            continue; // a phase the current profile no longer reports
        };
        if base < min_phase_s && now < min_phase_s {
            println!(
                "{name:<20} {:>12} {:>12} {:>8}  skipped (both < {min_phase_s}s)",
                "-", "-", "-"
            );
            let _ = writeln!(
                markdown,
                "| {name} | — | — | — | skipped (both < {min_phase_s}s) |"
            );
            continue;
        }
        // In both modes the floor guards tiny denominators so a 1 ms phase
        // cannot fail the gate by becoming 2 ms.
        let (base_val, now_val, ratio) = match calibrated {
            Some((base_calib, now_calib, base_events, now_events)) => {
                // Event rates, the current run rescaled into the baseline
                // machine's units; regression = the calibrated rate fell.
                let base_rate = base_events / base.max(min_phase_s) / 1000.0;
                let now_rate =
                    now_events / now.max(min_phase_s) / 1000.0 * (base_calib / now_calib);
                (
                    base_rate,
                    now_rate,
                    base_rate / now_rate.max(f64::MIN_POSITIVE),
                )
            }
            None => (base, now, now / base.max(min_phase_s)),
        };
        let regressed = ratio > 1.0 + tolerance;
        println!(
            "{name:<20} {base_val:>12.3} {now_val:>12.3} {ratio:>7.2}x  {}",
            if regressed { "REGRESSED" } else { "ok" }
        );
        let _ = writeln!(
            markdown,
            "| {name} | {base_val:.3} | {now_val:.3} | {ratio:.2}x | {} |",
            if regressed { "❌ REGRESSED" } else { "✅ ok" }
        );
        regressions += usize::from(regressed);
    }
    if regressions > 0 {
        let _ = writeln!(
            markdown,
            "\n**{regressions} phase(s) regressed more than {:.0}%.**",
            tolerance * 100.0
        );
        if summary {
            emit_summary(&markdown);
        }
        eprintln!(
            "bench_gate: {regressions} phase(s) regressed more than {:.0}% against {baseline_path}",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    let _ = writeln!(
        markdown,
        "\nNo phase regressed more than {:.0}%.",
        tolerance * 100.0
    );
    if summary {
        emit_summary(&markdown);
    }
    println!(
        "bench_gate: no phase regressed more than {:.0}%",
        tolerance * 100.0
    );
    ExitCode::SUCCESS
}
