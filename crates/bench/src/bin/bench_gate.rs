//! CI bench-regression gate.
//!
//! Compares the per-phase wall-clock timings of a fresh `scale` bench run
//! (the CI 1k smoke) against the checked-in `BENCH_scale.json` baseline and
//! exits non-zero when any phase regressed by more than the tolerance —
//! turning the benchmark trajectory from a write-only artifact into an
//! enforced gate.
//!
//! ```text
//! cargo run --release -p exchange-bench --bin bench_gate -- \
//!     --baseline BENCH_scale.json --current /tmp/bench_scale_smoke.json \
//!     [--tier 1k] [--mode entry-warm] [--tolerance 0.25] [--min-phase-s 0.05]
//! ```
//!
//! Phase values are averaged across each file's runs, so a 1-seed smoke is
//! comparable against a 2-seed baseline.  Phases below `--min-phase-s` in
//! *both* files are skipped (micro-phases are noise-dominated), and only
//! keys present in both files are compared, so adding a phase to the
//! profile never breaks the gate against an older baseline.  The
//! `BENCH_GATE_TOLERANCE` environment variable overrides `--tolerance`
//! (escape hatch for known-noisy runners without a code change).
//!
//! The workspace has no JSON dependency (serde is an offline stub), so a
//! ~90-line recursive-descent parser lives below; it accepts exactly the
//! JSON subset the scale bench emits.

use std::collections::BTreeMap;
use std::process::ExitCode;

// ---- minimal JSON value ----------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing input at byte {}", parser.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The bench writer never emits escapes beyond these.
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

// ---- gate logic ------------------------------------------------------------

/// Per-phase mean seconds of one (tier, mode) across its runs, `run_s`
/// included under the pseudo-phase name `run`.
fn phase_means(root: &Json, tier: &str, mode: &str) -> Result<BTreeMap<String, f64>, String> {
    let tiers = root
        .get("tiers")
        .and_then(Json::as_array)
        .ok_or("no 'tiers' array")?;
    let tier_obj = tiers
        .iter()
        .find(|t| t.get("tier").and_then(Json::as_str) == Some(tier))
        .ok_or_else(|| format!("tier '{tier}' not present"))?;
    let modes = tier_obj
        .get("modes")
        .and_then(Json::as_array)
        .ok_or("no 'modes' array")?;
    let mode_obj = modes
        .iter()
        .find(|m| m.get("mode").and_then(Json::as_str) == Some(mode))
        .ok_or_else(|| format!("mode '{mode}' not present in tier '{tier}'"))?;
    let runs = mode_obj
        .get("runs")
        .and_then(Json::as_array)
        .ok_or("no 'runs' array")?;
    if runs.is_empty() {
        return Err(format!("tier '{tier}' mode '{mode}' has no runs"));
    }
    let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    for run in runs {
        if let Some(run_s) = run.get("run_s").and_then(Json::as_f64) {
            let entry = sums.entry("run".into()).or_default();
            entry.0 += run_s;
            entry.1 += 1;
        }
        let Some(Json::Object(phases)) = run.get("phases") else {
            continue;
        };
        for (key, value) in phases {
            let Some(seconds) = value.as_f64() else {
                continue;
            };
            if let Some(name) = key.strip_suffix("_s") {
                let entry = sums.entry(name.to_string()).or_default();
                entry.0 += seconds;
                entry.1 += 1;
            }
        }
    }
    Ok(sums
        .into_iter()
        .map(|(name, (sum, n))| (name, sum / n as f64))
        .collect())
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate --baseline <BENCH_scale.json> --current <smoke.json> \
         [--tier 1k] [--mode entry-warm] [--tolerance 0.25] [--min-phase-s 0.05]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = None;
    let mut current_path = None;
    let mut tier = "1k".to_string();
    let mut mode = "entry-warm".to_string();
    let mut tolerance = 0.25f64;
    let mut min_phase_s = 0.05f64;
    let mut i = 0;
    while i < args.len() {
        match (args[i].as_str(), args.get(i + 1)) {
            ("--baseline", Some(v)) => baseline_path = Some(v.clone()),
            ("--current", Some(v)) => current_path = Some(v.clone()),
            ("--tier", Some(v)) => tier = v.clone(),
            ("--mode", Some(v)) => mode = v.clone(),
            ("--tolerance", Some(v)) => tolerance = v.parse().unwrap_or_else(|_| usage()),
            ("--min-phase-s", Some(v)) => min_phase_s = v.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 2;
    }
    if let Ok(raw) = std::env::var("BENCH_GATE_TOLERANCE") {
        match raw.parse::<f64>() {
            Ok(value) if value >= 0.0 => {
                eprintln!("bench_gate: tolerance overridden to {value} via BENCH_GATE_TOLERANCE");
                tolerance = value;
            }
            _ => eprintln!("bench_gate: ignoring unparsable BENCH_GATE_TOLERANCE={raw}"),
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        usage()
    };

    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Parser::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };
    let (baseline_phases, current_phases) = match (
        phase_means(&baseline, &tier, &mode),
        phase_means(&current, &tier, &mode),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "bench_gate: tier {tier}, mode {mode}, tolerance {:.0}%",
        tolerance * 100.0
    );
    println!(
        "{:<20} {:>10} {:>10} {:>8}  verdict",
        "phase", "baseline", "current", "ratio"
    );
    let mut regressions = 0usize;
    for (name, &base) in &baseline_phases {
        let Some(&now) = current_phases.get(name) else {
            continue; // a phase the current profile no longer reports
        };
        if base < min_phase_s && now < min_phase_s {
            println!(
                "{name:<20} {base:>9.3}s {now:>9.3}s {:>8}  skipped (both < {min_phase_s}s)",
                "-"
            );
            continue;
        }
        // Guard tiny baselines with the floor so a 1 ms phase cannot fail
        // the gate by becoming 2 ms.
        let ratio = now / base.max(min_phase_s);
        let regressed = ratio > 1.0 + tolerance;
        println!(
            "{name:<20} {base:>9.3}s {now:>9.3}s {ratio:>7.2}x  {}",
            if regressed { "REGRESSED" } else { "ok" }
        );
        regressions += usize::from(regressed);
    }
    if regressions > 0 {
        eprintln!(
            "bench_gate: {regressions} phase(s) regressed more than {:.0}% against {baseline_path}",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_gate: no phase regressed more than {:.0}%",
        tolerance * 100.0
    );
    ExitCode::SUCCESS
}
