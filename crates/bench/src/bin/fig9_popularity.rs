//! Figure 9: mean download time vs. the object/category popularity factor f.

use bench_support::{fmt_minutes, print_figure_header, FigureOptions};
use exchange::ExchangePolicy;
use metrics::Table;
use sim::experiment::popularity_sweep;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 9 — mean download time (minutes) vs object popularity factor f",
        &options,
        &base,
    );

    let factors = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let policies = ExchangePolicy::paper_set();
    let points = popularity_sweep(&base, &policies, &factors, options.seed);

    let mut table = Table::new(vec![
        "f",
        "no-exchange",
        "pairwise/sharing",
        "pairwise/non-sharing",
        "5-2-way/sharing",
        "5-2-way/non-sharing",
        "2-5-way/sharing",
        "2-5-way/non-sharing",
    ]);
    for &f in &factors {
        let at = |policy: &ExchangePolicy| {
            points
                .iter()
                .find(|p| p.factor == f && p.policy == *policy)
                .expect("sweep covers every (factor, policy) pair")
        };
        let none = at(&ExchangePolicy::NoExchange);
        let pairwise = at(&ExchangePolicy::Pairwise);
        let longer = at(&ExchangePolicy::five_two_way());
        let shorter = at(&ExchangePolicy::two_five_way());
        table.add_row(vec![
            format!("{f:.1}"),
            fmt_minutes(none.sharing_min.or(none.non_sharing_min)),
            fmt_minutes(pairwise.sharing_min),
            fmt_minutes(pairwise.non_sharing_min),
            fmt_minutes(longer.sharing_min),
            fmt_minutes(longer.non_sharing_min),
            fmt_minutes(shorter.sharing_min),
            fmt_minutes(shorter.non_sharing_min),
        ]);
    }
    println!("{table}");
    println!("Paper shape: the sharing/non-sharing gap widens as popularity becomes more");
    println!("skewed (f → 1), and is still visible for nearly uniform popularity.");
}
