//! Figure 9: mean download time vs. the object/category popularity factor f.

use bench_support::{fmt_minutes, print_figure_header, FigureOptions};
use exchange::ExchangePolicy;
use metrics::Table;
use sim::experiment::popularity_scenario;
use sim::PeerClass;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 9 — mean download time (minutes) vs object popularity factor f",
        &options,
        &base,
    );

    let factors = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let policies = ExchangePolicy::paper_set();
    let grid = options.run_grid(popularity_scenario(&base, &policies, &factors));

    let mut table = Table::new(vec![
        "f",
        "no-exchange",
        "pairwise/sharing",
        "pairwise/non-sharing",
        "5-2-way/sharing",
        "5-2-way/non-sharing",
        "2-5-way/sharing",
        "2-5-way/non-sharing",
    ]);
    for &f in &factors {
        let factor_label = format!("{f}");
        let mean = |policy: &ExchangePolicy, class: PeerClass| {
            grid.aggregate_where(
                &[
                    ("popularity_factor", factor_label.as_str()),
                    ("discipline", &policy.label()),
                ],
                |r| r.mean_download_time_min(class),
            )
        };
        let none = &ExchangePolicy::NoExchange;
        let pairwise = &ExchangePolicy::Pairwise;
        let longer = &ExchangePolicy::five_two_way();
        let shorter = &ExchangePolicy::two_five_way();
        table.add_row(vec![
            format!("{f:.1}"),
            fmt_minutes(
                mean(none, PeerClass::Sharing).or_else(|| mean(none, PeerClass::NonSharing)),
            ),
            fmt_minutes(mean(pairwise, PeerClass::Sharing)),
            fmt_minutes(mean(pairwise, PeerClass::NonSharing)),
            fmt_minutes(mean(longer, PeerClass::Sharing)),
            fmt_minutes(mean(longer, PeerClass::NonSharing)),
            fmt_minutes(mean(shorter, PeerClass::Sharing)),
            fmt_minutes(mean(shorter, PeerClass::NonSharing)),
        ]);
    }
    println!("{table}");
    println!("Values are mean±95% CI over {} seeds.", options.seeds);
    println!("Paper shape: the sharing/non-sharing gap widens as popularity becomes more");
    println!("skewed (f → 1), and is still visible for nearly uniform popularity.");
}
