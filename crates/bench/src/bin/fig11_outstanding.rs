//! Figure 11: ratio of non-sharing to sharing mean download times as a
//! function of the maximum number of outstanding requests per peer, for
//! different numbers of categories per peer.

use bench_support::{fmt_ratio, print_figure_header, FigureOptions};
use metrics::Table;
use sim::experiment::outstanding_sweep;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 11 — sharing vs non-sharing download-time ratio vs max outstanding requests",
        &options,
        &base,
    );

    let outstanding = [2usize, 4, 6, 8, 10];
    let categories = [2u32, 4, 8];
    let points = outstanding_sweep(&base, &outstanding, &categories, options.seed);

    let mut table = Table::new(vec![
        "max outstanding",
        "2 cat/peer",
        "4 cat/peer",
        "8 cat/peer",
    ]);
    for &m in &outstanding {
        let at = |cats: u32| {
            points
                .iter()
                .find(|p| p.max_outstanding == m && p.categories_per_peer == cats)
                .and_then(|p| p.ratio)
        };
        table.add_row(vec![
            m.to_string(),
            fmt_ratio(at(2)),
            fmt_ratio(at(4)),
            fmt_ratio(at(8)),
        ]);
    }
    println!("{table}");
    println!("Paper shape: the sharing users' advantage grows with the number of outstanding");
    println!("requests up to a point, then levels off; more categories per peer generally");
    println!("increases the chance of finding a feasible exchange.");
}
