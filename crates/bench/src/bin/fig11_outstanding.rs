//! Figure 11: ratio of non-sharing to sharing mean download times as a
//! function of the maximum number of outstanding requests per peer, for
//! different numbers of categories per peer.

use bench_support::{fmt_ratio, print_figure_header, FigureOptions};
use metrics::Table;
use sim::experiment::outstanding_scenario;
use sim::SimReport;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 11 — sharing vs non-sharing download-time ratio vs max outstanding requests",
        &options,
        &base,
    );

    let outstanding = [2usize, 4, 6, 8, 10];
    let categories = [2u32, 4, 8];
    let grid = options.run_grid(outstanding_scenario(&base, &outstanding, &categories));

    let mut table = Table::new(vec![
        "max outstanding",
        "2 cat/peer",
        "4 cat/peer",
        "8 cat/peer",
    ]);
    for &m in &outstanding {
        let pending_label = m.to_string();
        let ratio = |cats: u32| {
            grid.aggregate_where(
                &[
                    ("categories_per_peer", cats.to_string().as_str()),
                    ("max_pending", pending_label.as_str()),
                ],
                SimReport::download_time_ratio,
            )
        };
        table.add_row(vec![
            m.to_string(),
            fmt_ratio(ratio(2)),
            fmt_ratio(ratio(4)),
            fmt_ratio(ratio(8)),
        ]);
    }
    println!("{table}");
    println!("Values are mean±95% CI over {} seeds.", options.seeds);
    println!("Paper shape: the sharing users' advantage grows with the number of outstanding");
    println!("requests up to a point, then levels off; more categories per peer generally");
    println!("increases the chance of finding a feasible exchange.");
}
