//! Figure 7: CDF of the amount of data transferred per session, broken down
//! by session type (non-exchange, pairwise, 3-way, 4-way, 5-way).

use bench_support::{print_figure_header, FigureOptions};
use metrics::Table;
use sim::experiment::{figure_session_kinds, session_distributions};

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 7 — CDF of bytes transferred per session, by session type",
        &options,
        &base,
    );

    let report = session_distributions(&base, options.seed);
    let kinds = figure_session_kinds(5);
    let fractions = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0];

    let mut headers = vec![
        "session type".to_string(),
        "sessions".to_string(),
        "mean kB".to_string(),
    ];
    headers.extend(fractions.iter().map(|f| format!("p{:.0} kB", f * 100.0)));
    let mut table = Table::new(headers);

    for kind in kinds {
        let Some(cdf) = report.session_bytes_cdf(kind) else {
            continue;
        };
        let count = report.session_counts().get(&kind).copied().unwrap_or(0);
        let mean_kb = report.mean_session_bytes(kind).unwrap_or(0.0) / 1024.0;
        let mut row = vec![kind.label(), count.to_string(), format!("{mean_kb:.0}")];
        for &f in &fractions {
            row.push(format!("{:.0}", cdf.percentile(f) / 1024.0));
        }
        table.add_row(row);
    }
    println!("{table}");
    println!("Paper shape: exchange sessions carry more data than non-exchange sessions,");
    println!("and shorter rings (pairwise) carry more per session than longer rings.");
}
