//! Figure 8: CDF of transfer waiting times (request issue to transfer start),
//! broken down by session type.

use bench_support::{print_figure_header, FigureOptions};
use metrics::Table;
use sim::experiment::{figure_session_kinds, session_distributions};

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 8 — CDF of transfer waiting time (minutes), by session type",
        &options,
        &base,
    );

    let report = session_distributions(&base, options.seed);
    let kinds = figure_session_kinds(5);
    let fractions = [0.1, 0.25, 0.5, 0.75, 0.9];

    let mut headers = vec![
        "session type".to_string(),
        "sessions".to_string(),
        "mean min".to_string(),
    ];
    headers.extend(fractions.iter().map(|f| format!("p{:.0} min", f * 100.0)));
    let mut table = Table::new(headers);

    for kind in kinds {
        let Some(cdf) = report.waiting_cdf(kind) else {
            continue;
        };
        let count = cdf.len();
        let mean_min = report.mean_waiting_secs(kind).unwrap_or(0.0) / 60.0;
        let mut row = vec![kind.label(), count.to_string(), format!("{mean_min:.1}")];
        for &f in &fractions {
            row.push(format!("{:.1}", cdf.percentile(f) / 60.0));
        }
        table.add_row(row);
    }
    println!("{table}");
    println!("Paper shape: non-exchange transfers wait substantially longer than exchange");
    println!("transfers (which receive absolute priority); ring size matters little here.");
}
