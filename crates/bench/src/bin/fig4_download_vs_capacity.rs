//! Figure 4: mean download time vs. upload capacity, for sharing and
//! non-sharing users under each exchange discipline.

use bench_support::{fmt_minutes, print_figure_header, FigureOptions};
use exchange::ExchangePolicy;
use metrics::Table;
use sim::experiment::capacity_sweep;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 4 — mean download time (minutes) vs upload capacity (kbit/s)",
        &options,
        &base,
    );

    let capacities = [40.0, 60.0, 80.0, 100.0, 120.0, 140.0];
    let policies = ExchangePolicy::paper_set();
    let points = capacity_sweep(&base, &policies, &capacities, options.seed);

    let mut table = Table::new(vec![
        "upload kbit/s",
        "no-exchange",
        "pairwise/sharing",
        "pairwise/non-sharing",
        "5-2-way/sharing",
        "5-2-way/non-sharing",
        "2-5-way/sharing",
        "2-5-way/non-sharing",
    ]);
    for &capacity in &capacities {
        let at = |policy: &ExchangePolicy| {
            points
                .iter()
                .find(|p| p.upload_kbps == capacity && p.policy == *policy)
                .expect("sweep covers every (capacity, policy) pair")
        };
        let none = at(&ExchangePolicy::NoExchange);
        let pairwise = at(&ExchangePolicy::Pairwise);
        let longer = at(&ExchangePolicy::five_two_way());
        let shorter = at(&ExchangePolicy::two_five_way());
        table.add_row(vec![
            format!("{capacity:.0}"),
            fmt_minutes(none.sharing_min.or(none.non_sharing_min)),
            fmt_minutes(pairwise.sharing_min),
            fmt_minutes(pairwise.non_sharing_min),
            fmt_minutes(longer.sharing_min),
            fmt_minutes(longer.non_sharing_min),
            fmt_minutes(shorter.sharing_min),
            fmt_minutes(shorter.non_sharing_min),
        ]);
    }
    println!("{table}");
    println!("Paper shape: download times grow as capacity shrinks; the sharing/non-sharing");
    println!("gap widens with load, and exchange disciplines beat no-exchange for sharers.");
}
