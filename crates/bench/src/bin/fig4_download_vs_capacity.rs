//! Figure 4: mean download time vs. upload capacity, for sharing and
//! non-sharing users under each exchange discipline.

use bench_support::{fmt_minutes, print_figure_header, FigureOptions};
use exchange::ExchangePolicy;
use metrics::Table;
use sim::experiment::capacity_scenario;
use sim::PeerClass;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 4 — mean download time (minutes) vs upload capacity (kbit/s)",
        &options,
        &base,
    );

    let capacities = [40.0, 60.0, 80.0, 100.0, 120.0, 140.0];
    let policies = ExchangePolicy::paper_set();
    let grid = options.run_grid(capacity_scenario(&base, &policies, &capacities));

    let mut table = Table::new(vec![
        "upload kbit/s",
        "no-exchange",
        "pairwise/sharing",
        "pairwise/non-sharing",
        "5-2-way/sharing",
        "5-2-way/non-sharing",
        "2-5-way/sharing",
        "2-5-way/non-sharing",
    ]);
    for &capacity in &capacities {
        let capacity_label = format!("{capacity}");
        let mean = |policy: &ExchangePolicy, class: PeerClass| {
            grid.aggregate_where(
                &[
                    ("upload_kbps", capacity_label.as_str()),
                    ("discipline", &policy.label()),
                ],
                |r| r.mean_download_time_min(class),
            )
        };
        let none = &ExchangePolicy::NoExchange;
        let pairwise = &ExchangePolicy::Pairwise;
        let longer = &ExchangePolicy::five_two_way();
        let shorter = &ExchangePolicy::two_five_way();
        table.add_row(vec![
            format!("{capacity:.0}"),
            fmt_minutes(
                mean(none, PeerClass::Sharing).or_else(|| mean(none, PeerClass::NonSharing)),
            ),
            fmt_minutes(mean(pairwise, PeerClass::Sharing)),
            fmt_minutes(mean(pairwise, PeerClass::NonSharing)),
            fmt_minutes(mean(longer, PeerClass::Sharing)),
            fmt_minutes(mean(longer, PeerClass::NonSharing)),
            fmt_minutes(mean(shorter, PeerClass::Sharing)),
            fmt_minutes(mean(shorter, PeerClass::NonSharing)),
        ]);
    }
    println!("{table}");
    println!("Values are mean±95% CI over {} seeds.", options.seeds);
    println!("Paper shape: download times grow as capacity shrinks; the sharing/non-sharing");
    println!("gap widens with load, and exchange disciplines beat no-exchange for sharers.");
}
