//! Table II: the simulation parameters, as configured in this reproduction.

use metrics::Table;
use sim::SimConfig;

fn main() {
    let config = SimConfig::paper_defaults();
    println!("Table II — basic simulation parameters (paper value = configured value)\n");

    let mut table = Table::new(vec!["parameter", "paper", "this reproduction"]);
    let rows: Vec<(&str, String, String)> = vec![
        (
            "number of peers",
            "200".into(),
            config.num_peers.to_string(),
        ),
        (
            "download capacity",
            "800 kbit/s".into(),
            format!("{} kbit/s", config.link.download_kbps),
        ),
        (
            "upload capacity",
            "80 kbit/s".into(),
            format!("{} kbit/s", config.link.upload_kbps),
        ),
        (
            "ul/dl slot size",
            "10 kbit/s".into(),
            format!("{} kbit/s", config.link.slot_kbps),
        ),
        (
            "content categories",
            "300".into(),
            config.workload.num_categories.to_string(),
        ),
        (
            "objects per category",
            "uniform(1,300)".into(),
            format!(
                "uniform({},{})",
                config.workload.objects_per_category.0, config.workload.objects_per_category.1
            ),
        ),
        (
            "categories/peer",
            "uniform(1,8)".into(),
            format!(
                "uniform({},{})",
                config.workload.categories_per_peer.0, config.workload.categories_per_peer.1
            ),
        ),
        (
            "category popularity",
            "f=0.2".into(),
            format!("f={}", config.workload.category_popularity_factor),
        ),
        (
            "object popularity",
            "f=0.2".into(),
            format!("f={}", config.workload.object_popularity_factor),
        ),
        (
            "object size",
            "20 MB".into(),
            format!("{} MB", config.workload.object_size_bytes / (1024 * 1024)),
        ),
        (
            "storage capacity per peer",
            "uniform(5,40) objects".into(),
            format!(
                "uniform({},{}) objects",
                config.workload.storage_capacity_objects.0,
                config.workload.storage_capacity_objects.1
            ),
        ),
        (
            "queue for incoming requests",
            "1000".into(),
            config.irq_capacity.to_string(),
        ),
        (
            "max pending objects",
            "6".into(),
            config.max_pending_objects.to_string(),
        ),
        (
            "fraction of freeloaders",
            "50%".into(),
            format!(
                "{:.0}%",
                config.behaviors.share(sim::BehaviorKind::FreeRider) * 100.0
            ),
        ),
        (
            "exchange discipline",
            "2-5-way".into(),
            config.discipline.label(),
        ),
        (
            "non-exchange scheduler",
            "FCFS".into(),
            config.scheduler.label().to_string(),
        ),
    ];
    for (name, paper, ours) in rows {
        table.add_row(vec![name.to_string(), paper, ours]);
    }
    println!("{table}");
    println!("Additional engine knobs not specified by the paper (block size, lookup width,");
    println!("ring-search budget/fanout, run length, warm-up) are documented in DESIGN.md.");
}
