//! Table III (new): how much each Section III-B cheater gains under every
//! upload scheduler × protection combination, via the behavior-mix API.
//!
//! Besides the printed table, `--csv <path>` / `--json <path>` dump the full
//! sweep grid through `SweepGrid::write_csv` / `write_json` for plotting.

use bench_support::{print_figure_header, FigureOptions};
use exchange::ExchangePolicy;
use metrics::Table;
use sim::experiment::cheating_scenario;
use sim::{BehaviorKind, BehaviorMix, Protection, SchedulerKind, SweepGrid};

fn main() {
    let options = FigureOptions::from_env();
    let mut base = options.base_config();
    base.discipline = ExchangePolicy::two_five_way();
    print_figure_header(
        "Table III — usable MB/peer gained by each behavior, per scheduler × protection",
        &options,
        &base,
    );

    let adversarial = BehaviorMix::weighted([
        (BehaviorKind::Honest, 0.5),
        (BehaviorKind::FreeRider, 0.15),
        (BehaviorKind::JunkSender, 0.1),
        (BehaviorKind::ParticipationCheater, 0.1),
        (BehaviorKind::Middleman, 0.15),
    ]);
    let grid = options.run_grid(
        cheating_scenario(&base, &[adversarial], &Protection::all_basic())
            .schedulers(SchedulerKind::all()),
    );

    let mut table = Table::new(vec![
        "protection",
        "scheduler",
        "honest",
        "free-rider",
        "junk-sender",
        "particip-cheater",
        "middleman",
        "cheats caught",
    ]);
    for protection in Protection::all_basic() {
        for scheduler in SchedulerKind::all() {
            let query = [
                ("protection", protection.label()),
                ("scheduler", scheduler.label().to_string()),
            ];
            let query: Vec<(&str, &str)> = query.iter().map(|(a, v)| (*a, v.as_str())).collect();
            let usable = |kind: BehaviorKind| {
                grid.aggregate_where(&query, |r| r.mean_usable_mb_per_peer(kind))
                    .map_or("n/a".to_string(), |a| format!("{:.1}", a.mean))
            };
            let caught = grid
                .aggregate_where(&query, |r| Some(r.cheat_detections() as f64))
                .map_or("n/a".to_string(), |a| format!("{:.0}", a.mean));
            table.add_row(vec![
                protection.label(),
                scheduler.label().to_string(),
                usable(BehaviorKind::Honest),
                usable(BehaviorKind::FreeRider),
                usable(BehaviorKind::JunkSender),
                usable(BehaviorKind::ParticipationCheater),
                usable(BehaviorKind::Middleman),
                caught,
            ]);
        }
    }
    println!("{table}");
    println!(
        "Values are mean usable MB per peer over {} seeds.",
        options.seeds
    );
    println!("Paper shape (Section III-B): unprotected, the middleman and junk sender");
    println!("out-earn passive free-riders; windowed validation bounds the junk sender's");
    println!("take per detection, and mediation zeroes the middleman's usable bytes.");

    write_dumps(&grid);
}

/// Handles `--csv <path>` and `--json <path>` (ignored by `FigureOptions`).
fn write_dumps(grid: &SweepGrid) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for pair in args.windows(2) {
        let (flag, path) = (&pair[0], &pair[1]);
        let result = match flag.as_str() {
            "--csv" => std::fs::File::create(path).and_then(|mut f| grid.write_csv(&mut f)),
            "--json" => std::fs::File::create(path).and_then(|mut f| grid.write_json(&mut f)),
            _ => continue,
        };
        match result {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
