//! Table I / Figure 3: the middleman scenario that a pure ring exchange
//! cannot serve, and the mixed object-and-capacity exchange that can.

use exchange::mixed::{plan_mixed_exchange, pure_exchange_rates, PeerSpec};
use metrics::Table;

fn main() {
    println!("Table I / Figure 3 — mixed object + capacity exchange\n");

    // The exact scenario of Table I.
    let specs = vec![
        PeerSpec {
            peer: "A",
            upload_capacity: 10.0,
            has: vec![],
            wants: vec!['x'],
        },
        PeerSpec {
            peer: "B",
            upload_capacity: 5.0,
            has: vec!['x'],
            wants: vec!['y'],
        },
        PeerSpec {
            peer: "C",
            upload_capacity: 10.0,
            has: vec!['y'],
            wants: vec!['x'],
        },
        PeerSpec {
            peer: "D",
            upload_capacity: 10.0,
            has: vec!['y'],
            wants: vec!['x'],
        },
    ];

    let mut scenario = Table::new(vec!["peer", "upload", "has", "wants"]);
    for s in &specs {
        scenario.add_row(vec![
            s.peer.to_string(),
            format!("{:.0}", s.upload_capacity),
            if s.has.is_empty() {
                "-".into()
            } else {
                s.has.iter().collect()
            },
            s.wants.iter().collect(),
        ]);
    }
    println!("{scenario}");

    let pure = pure_exchange_rates(&specs);
    let plan = plan_mixed_exchange(&specs).expect("the Table I structure is present");

    let mut rates = Table::new(vec!["peer", "pure exchange rate", "mixed exchange rate"]);
    for s in &specs {
        rates.add_row(vec![
            s.peer.to_string(),
            format!("{:.0}", pure[&s.peer]),
            format!("{:.0}", plan.download_rate_of(&s.peer)),
        ]);
    }
    println!("{rates}");

    println!("Flows of the mixed plan (Figure 3):");
    for flow in plan.flows() {
        println!(
            "  {} -> {}  object {}  rate {:.0}",
            flow.from, flow.to, flow.object, flow.rate
        );
    }
    println!();
    println!("As in the paper: B now receives y at rate 10 instead of 5, A and D are served");
    println!("at rate 5 instead of not at all, and C is no worse off.");
}
