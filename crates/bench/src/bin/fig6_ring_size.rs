//! Figure 6: mean download time as a function of the maximum exchange ring
//! size N, for N-2-way (prefer longer) and 2-N-way (prefer shorter) search.

use bench_support::{fmt_minutes, print_figure_header, FigureOptions};
use metrics::Table;
use sim::experiment::ring_size_scenario;
use sim::PeerClass;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 6 — mean download time (minutes) vs maximum exchange ring size N",
        &options,
        &base,
    );

    let sizes = [2usize, 3, 4, 5, 6, 7];
    let grid = options.run_grid(ring_size_scenario(&base, &sizes));

    let mut table = Table::new(vec![
        "max ring N",
        "N-2-way/sharing",
        "N-2-way/non-sharing",
        "2-N-way/sharing",
        "2-N-way/non-sharing",
    ]);
    for &n in &sizes {
        // Ring size 2 has a single search order; the paper plots it on both
        // curves.  Larger sizes distinguish N-2-way from 2-N-way.
        let label_longer = if n == 2 {
            "pairwise".to_string()
        } else {
            format!("{n}-2-way")
        };
        let label_shorter = if n == 2 {
            "pairwise".to_string()
        } else {
            format!("2-{n}-way")
        };
        let mean = |discipline: &str, class: PeerClass| {
            grid.aggregate_where(&[("discipline", discipline)], |r| {
                r.mean_download_time_min(class)
            })
        };
        table.add_row(vec![
            n.to_string(),
            fmt_minutes(mean(&label_longer, PeerClass::Sharing)),
            fmt_minutes(mean(&label_longer, PeerClass::NonSharing)),
            fmt_minutes(mean(&label_shorter, PeerClass::Sharing)),
            fmt_minutes(mean(&label_shorter, PeerClass::NonSharing)),
        ]);
    }
    println!("{table}");
    println!("Values are mean±95% CI over {} seeds.", options.seeds);
    println!("Paper shape: moving from pairwise (N=2) to N=3 visibly improves the sharing/");
    println!("non-sharing differentiation; larger rings add little further benefit.");
}
