//! Figure 6: mean download time as a function of the maximum exchange ring
//! size N, for N-2-way (prefer longer) and 2-N-way (prefer shorter) search.

use bench_support::{fmt_minutes, print_figure_header, FigureOptions};
use metrics::Table;
use sim::experiment::ring_size_sweep;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 6 — mean download time (minutes) vs maximum exchange ring size N",
        &options,
        &base,
    );

    let sizes = [2usize, 3, 4, 5, 6, 7];
    let points = ring_size_sweep(&base, &sizes, options.seed);

    let mut table = Table::new(vec![
        "max ring N",
        "N-2-way/sharing",
        "N-2-way/non-sharing",
        "2-N-way/sharing",
        "2-N-way/non-sharing",
    ]);
    for &n in &sizes {
        let get = |longer: bool, sharing: bool| {
            points
                .iter()
                .find(|p| p.max_ring == n && p.prefer_longer == longer)
                .and_then(|p| if sharing { p.sharing_min } else { p.non_sharing_min })
        };
        table.add_row(vec![
            n.to_string(),
            fmt_minutes(get(true, true)),
            fmt_minutes(get(true, false)),
            fmt_minutes(get(false, true)),
            fmt_minutes(get(false, false)),
        ]);
    }
    println!("{table}");
    println!("Paper shape: moving from pairwise (N=2) to N=3 visibly improves the sharing/");
    println!("non-sharing differentiation; larger rings add little further benefit.");
}
