//! Figure 5: fraction of exchange transfers vs. upload capacity.

use bench_support::{fmt_aggregate, print_figure_header, FigureOptions};
use exchange::ExchangePolicy;
use metrics::Table;
use sim::experiment::capacity_scenario;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 5 — fraction of sessions that are exchange transfers vs upload capacity",
        &options,
        &base,
    );

    let capacities = [40.0, 60.0, 80.0, 100.0, 120.0, 140.0];
    let policies = [
        ExchangePolicy::Pairwise,
        ExchangePolicy::five_two_way(),
        ExchangePolicy::two_five_way(),
    ];
    let grid = options.run_grid(capacity_scenario(&base, &policies, &capacities));

    let mut table = Table::new(vec!["upload kbit/s", "pairwise", "5-2-way", "2-5-way"]);
    for &capacity in &capacities {
        let capacity_label = format!("{capacity}");
        let frac = |policy: &ExchangePolicy| {
            grid.aggregate_where(
                &[
                    ("upload_kbps", capacity_label.as_str()),
                    ("discipline", &policy.label()),
                ],
                |r| Some(r.exchange_session_fraction()),
            )
        };
        table.add_row(vec![
            format!("{capacity:.0}"),
            fmt_aggregate(frac(&ExchangePolicy::Pairwise), 2),
            fmt_aggregate(frac(&ExchangePolicy::five_two_way()), 2),
            fmt_aggregate(frac(&ExchangePolicy::two_five_way()), 2),
        ]);
    }
    println!("{table}");
    println!("Values are mean±95% CI over {} seeds.", options.seeds);
    println!("Paper shape: the exchange fraction rises as the system gets more loaded");
    println!("(smaller upload capacity), with pairwise slightly below the ring policies.");
}
