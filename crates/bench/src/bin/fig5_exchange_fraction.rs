//! Figure 5: fraction of exchange transfers vs. upload capacity.

use bench_support::{print_figure_header, FigureOptions};
use exchange::ExchangePolicy;
use metrics::Table;
use sim::experiment::capacity_sweep;

fn main() {
    let options = FigureOptions::from_env();
    let base = options.base_config();
    print_figure_header(
        "Figure 5 — fraction of sessions that are exchange transfers vs upload capacity",
        &options,
        &base,
    );

    let capacities = [40.0, 60.0, 80.0, 100.0, 120.0, 140.0];
    let policies = [
        ExchangePolicy::Pairwise,
        ExchangePolicy::five_two_way(),
        ExchangePolicy::two_five_way(),
    ];
    let points = capacity_sweep(&base, &policies, &capacities, options.seed);

    let mut table = Table::new(vec!["upload kbit/s", "pairwise", "5-2-way", "2-5-way"]);
    for &capacity in &capacities {
        let frac = |policy: &ExchangePolicy| {
            points
                .iter()
                .find(|p| p.upload_kbps == capacity && p.policy == *policy)
                .map_or(0.0, |p| p.exchange_fraction)
        };
        table.add_row(vec![
            format!("{capacity:.0}"),
            format!("{:.2}", frac(&ExchangePolicy::Pairwise)),
            format!("{:.2}", frac(&ExchangePolicy::five_two_way())),
            format!("{:.2}", frac(&ExchangePolicy::two_five_way())),
        ]);
    }
    println!("{table}");
    println!("Paper shape: the exchange fraction rises as the system gets more loaded");
    println!("(smaller upload capacity), with pairwise slightly below the ring policies.");
}
