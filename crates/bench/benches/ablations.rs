//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! preemption on/off, ring-search fanout, and the pluggable upload
//! schedulers behind the unified `UploadScheduler` API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::{SchedulerKind, SimConfig, Simulation};

fn bench_config() -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = 40;
    config.sim_duration_s = 2_000.0;
    config
}

fn bench_preemption(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_preemption");
    group.sample_size(10);
    for preemption in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("enabled", preemption),
            &preemption,
            |b, preemption| {
                b.iter(|| {
                    let mut config = bench_config();
                    config.preemption = *preemption;
                    Simulation::new(config, 7).run()
                });
            },
        );
    }
    group.finish();
}

fn bench_search_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ring_search_fanout");
    group.sample_size(10);
    for fanout in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("fanout", fanout), &fanout, |b, fanout| {
            b.iter(|| {
                let mut config = bench_config();
                config.ring_search_fanout = *fanout;
                Simulation::new(config, 9).run()
            });
        });
    }
    group.finish();
}

fn bench_upload_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_upload_scheduler");
    group.sample_size(10);
    for kind in SchedulerKind::all() {
        group.bench_with_input(
            BenchmarkId::new("scheduler", kind.label()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let mut config = bench_config();
                    config.scheduler = *kind;
                    Simulation::new(config, 11).run()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_preemption,
    bench_search_fanout,
    bench_upload_schedulers
);
criterion_main!(benches);
