//! Micro-benchmarks of the Bloom-filter request-tree summaries (Section V).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::DetRng;
use exchange::{BloomRingIndex, RequestGraph, RequestTree};

fn random_graph(peers: u32, edges: usize, seed: u64) -> RequestGraph<u32, u32> {
    let mut rng = DetRng::seed_from(seed);
    let mut graph = RequestGraph::new();
    while graph.len() < edges {
        let requester = rng.gen_range(0..peers);
        let provider = rng.gen_range(0..peers);
        if requester == provider {
            continue;
        }
        graph.add_request(requester, provider, rng.gen_range(0u32..500));
    }
    graph
}

fn bench_summary_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_summary_vs_exact_tree");
    group.sample_size(30);
    for &edges in &[1_200usize, 6_000] {
        let graph = random_graph(200, edges, 17);
        group.bench_with_input(
            BenchmarkId::new("bloom_build", edges),
            &graph,
            |b, graph| b.iter(|| BloomRingIndex::build(graph, 0, 4)),
        );
        group.bench_with_input(
            BenchmarkId::new("exact_build", edges),
            &graph,
            |b, graph| b.iter(|| RequestTree::build(graph, 0, 4)),
        );
    }
    group.finish();
}

fn bench_summary_lookup(c: &mut Criterion) {
    let graph = random_graph(200, 6_000, 19);
    let index = BloomRingIndex::build(&graph, 0, 4);
    let tree = RequestTree::build(&graph, 0, 4);
    c.bench_function("bloom_ring_size_hint_200_lookups", |b| {
        b.iter(|| (0u32..200).filter_map(|p| index.ring_size_hint(&p)).count())
    });
    c.bench_function("exact_tree_depth_200_lookups", |b| {
        b.iter(|| (0u32..200).filter_map(|p| tree.depth_of(&p)).count())
    });
}

criterion_group!(benches, bench_summary_build, bench_summary_lookup);
criterion_main!(benches);
